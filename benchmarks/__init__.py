"""Benchmark harness regenerating every artifact of the paper's evaluation."""
