"""Experiments thm4 + prop3 — the mobile-computing model.

Proposition 3: SA is not competitive when c_io = 0 — its ratio on the
repeated-foreign-read family grows linearly with the schedule length.
Theorem 4: DA stays (2 + 3 c_c / c_d)-competitive, hence at most
5-competitive since c_c <= c_d.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.bounds import DA_MOBILE_CEILING, da_competitive_factor
from repro.analysis.report import format_table
from repro.core.competitive import CompetitivenessHarness
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import mobile
from repro.workloads.adversarial import adversarial_suite, sa_killer
from repro.workloads.uniform import UniformWorkload

SCHEME = frozenset({1, 2})


def measure_prop3_growth(c_c=0.5, c_d=2.0):
    model = mobile(c_c, c_d)
    harness = CompetitivenessHarness(model)
    rows = []
    for repetitions in (4, 8, 16, 32, 64):
        report = harness.measure(
            lambda: StaticAllocation(SCHEME), [sa_killer(5, repetitions)]
        )
        rows.append((repetitions, report.max_ratio))
    return rows


@pytest.mark.benchmark(group="theorem4")
def test_proposition3_sa_not_competitive_mobile(benchmark, results_dir):
    rows = benchmark.pedantic(measure_prop3_growth, rounds=1, iterations=1)
    emit(
        "Proposition 3: SA's mobile ratio grows without bound "
        "(c_c=0.5, c_d=2.0)",
        format_table(["schedule length", "SA ratio"], rows),
        results_dir,
        "proposition3_growth.txt",
    )
    ratios = [ratio for _, ratio in rows]
    # Strictly increasing, linear in the length: ratio == length.
    assert ratios == sorted(ratios)
    assert ratios[-1] / ratios[0] == pytest.approx(
        rows[-1][0] / rows[0][0], rel=1e-6
    )


PRICE_POINTS = [(0.1, 0.5), (0.25, 0.5), (0.5, 1.0), (0.5, 2.0), (2.0, 2.0)]


def measure_theorem4():
    suite = adversarial_suite(SCHEME, [5, 6, 7], rounds=5)
    suite += UniformWorkload(range(1, 8), 20, 0.3).batch(2, seed=7)
    rows = []
    for c_c, c_d in PRICE_POINTS:
        model = mobile(c_c, c_d)
        harness = CompetitivenessHarness(model)
        report = harness.measure(
            lambda: DynamicAllocation(SCHEME, primary=2), suite
        )
        rows.append(
            (c_c, c_d, report.max_ratio, da_competitive_factor(model))
        )
    return rows


@pytest.mark.benchmark(group="theorem4")
def test_theorem4_da_mobile_bound(benchmark, results_dir):
    rows = benchmark.pedantic(measure_theorem4, rounds=1, iterations=1)
    emit(
        "Theorem 4: DA mobile worst measured ratio vs (2 + 3 c_c / c_d)",
        format_table(
            ["c_c", "c_d", "measured max ratio", "theorem bound"], rows
        ),
        results_dir,
        "theorem4_upper.txt",
    )
    for c_c, c_d, measured, bound in rows:
        assert measured <= bound + 1e-9, (c_c, c_d)
        assert measured <= DA_MOBILE_CEILING + 1e-9
