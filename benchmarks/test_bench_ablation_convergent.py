"""Experiment conv — competitive vs convergent algorithms (paper §5.1).

The paper contrasts its *competitive* DA with the authors' earlier
*convergent* algorithms: a convergent algorithm adapts to regular
read-write patterns but "may unboundedly diverge from the optimum when
the read-write pattern is irregular", while a competitive algorithm is
protected in the worst case.  We measure DA, the convergent baseline,
the ski-rental (CDDR-flavoured) baseline and the drifting-core caching
baseline on:

* a *regular* phase-structured workload (§5.1's example shape), and
* a *chaotic* adversarial suite.

Expected shape: the convergent baseline is competitive-or-better on the
regular pattern but falls far behind DA's worst case on the chaotic
suite.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.caching import WriteInvalidationCaching
from repro.core.cddr import SkiRentalReplication
from repro.core.competitive import CompetitivenessHarness
from repro.core.convergent import ConvergentAllocation
from repro.core.dynamic_allocation import DynamicAllocation
from repro.model.cost_model import stationary
from repro.workloads.adversarial import adversarial_suite, sa_killer
from repro.workloads.regular import two_phase_shift

MODEL = stationary(0.2, 1.5)
SCHEME = frozenset({1, 2})


def factories():
    return {
        "DA": lambda: DynamicAllocation(SCHEME, primary=2),
        "CONV": lambda: ConvergentAllocation(SCHEME, MODEL, window=24),
        "CDDR": lambda: SkiRentalReplication(SCHEME, rent_limit=2, primary=2),
        "CACHE": lambda: WriteInvalidationCaching(SCHEME),
    }


def regular_suite():
    workload = two_phase_shift(5, 6, others=[7, 8], phase_length=40)
    return [workload.generate(seed) for seed in range(2)]


def chaotic_suite():
    suite = adversarial_suite(SCHEME, [5, 6, 7], rounds=4)
    # The convergent baseline's nightmare: a foreign reader it never
    # replicates to because writes keep resetting the window evidence.
    suite.append(sa_killer(9, 24))
    return suite


def measure_conv():
    rows = []
    for workload_name, suite in (
        ("regular", regular_suite()),
        ("chaotic", chaotic_suite()),
    ):
        harness = CompetitivenessHarness(MODEL)
        for name, factory in factories().items():
            report = harness.measure(factory, suite)
            rows.append(
                (workload_name, name, report.mean_ratio, report.max_ratio)
            )
    return rows


@pytest.mark.benchmark(group="ablation-convergent")
def test_competitive_vs_convergent(benchmark, results_dir):
    rows = benchmark.pedantic(measure_conv, rounds=1, iterations=1)
    emit(
        "Competitive vs convergent (SC, c_c=0.2, c_d=1.5)",
        format_table(
            ["workload", "algorithm", "mean ratio", "max ratio"], rows
        ),
        results_dir,
        "ablation_convergent.txt",
    )
    by_key = {(w, a): (mean, worst) for w, a, mean, worst in rows}
    # On the chaotic suite, DA's worst case beats the convergent
    # baseline's worst case (the point of competitiveness).
    assert by_key[("chaotic", "DA")][1] < by_key[("chaotic", "CONV")][1]
    # On the regular pattern, the convergent baseline is respectable:
    # within a factor of DA's own performance band.
    assert by_key[("regular", "CONV")][0] < 2 * by_key[("regular", "DA")][0]
    # DA never violates its proven bound on either suite.
    assert by_key[("chaotic", "DA")][1] <= 2 + 2 * MODEL.c_c + 1e-9
