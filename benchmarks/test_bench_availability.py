"""Experiment availability — quantifying the t-available constraint.

Paper §1 motivates the model with *"limits on the minimum number of
copies of the object (to ensure availability)"*, and §2 prescribes
quorum consensus under failures.  This bench computes exact
availabilities for independent fail-stop nodes:

* the ROWA regime (SA, and DA's normal mode): reads get exponentially
  more available with ``t`` while writes get exponentially less — the
  trade-off behind keeping ``t`` small;
* the quorum fallback: majority quorums sacrifice some read
  availability to lift write availability far above ROWA's — why the
  paper switches under failures and only then;
* Gifford's tuning: the best intersecting (r, w) pair tracks the
  request mix.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.availability import (
    best_quorums,
    quorum_availability,
    quorum_mixed_availability,
    rowa_read_availability,
    rowa_write_availability,
)
from repro.analysis.report import format_table

P_UP = 0.9
N = 5
VOTES = [1] * N


def measure_rowa_vs_quorum():
    rows = []
    majority = N // 2 + 1
    quorum_read = quorum_availability(P_UP, VOTES, majority)
    quorum_write = quorum_availability(P_UP, VOTES, majority)
    for t in (2, 3, 4, 5):
        rows.append(
            (
                t,
                rowa_read_availability(P_UP, t),
                rowa_write_availability(P_UP, t),
                quorum_read,
                quorum_write,
            )
        )
    return rows


@pytest.mark.benchmark(group="availability")
def test_rowa_vs_quorum_availability(benchmark, results_dir):
    rows = benchmark.pedantic(measure_rowa_vs_quorum, rounds=1, iterations=1)
    emit(
        f"Availability, node up-probability {P_UP}, n={N}: ROWA (normal "
        "mode) vs majority quorum (failure mode)",
        format_table(
            ["t", "ROWA read", "ROWA write", "quorum read", "quorum write"],
            rows,
            float_format="{:.5f}",
        ),
        results_dir,
        "availability_rowa_quorum.txt",
    )
    for t, rowa_read, rowa_write, quorum_read, quorum_write in rows:
        # Reads: ROWA beats quorums (any single live copy serves).
        assert rowa_read >= quorum_read or t == 2
        # Writes: the quorum's whole point.
        assert quorum_write > rowa_write or t == 2
    # t=2 vs t=5 trade-off in ROWA:
    assert rows[0][2] > rows[-1][2]  # writes more available at small t
    assert rows[0][1] < rows[-1][1]  # reads more available at large t


def measure_quorum_tuning():
    rows = []
    for write_fraction in (0.05, 0.2, 0.5, 0.8, 0.95):
        choice = best_quorums(P_UP, VOTES, write_fraction)
        symmetric = quorum_mixed_availability(
            P_UP, VOTES, N // 2 + 1, N // 2 + 1, write_fraction
        )
        rows.append(
            (
                write_fraction,
                choice.read_quorum,
                choice.write_quorum,
                choice.mixed_availability,
                symmetric.mixed_availability,
            )
        )
    return rows


@pytest.mark.benchmark(group="availability")
def test_quorum_tuning_tracks_the_mix(benchmark, results_dir):
    rows = benchmark.pedantic(measure_quorum_tuning, rounds=1, iterations=1)
    emit(
        "Gifford tuning: best intersecting (r, w) per request mix "
        f"(p={P_UP}, {N} one-vote nodes)",
        format_table(
            ["write fraction", "best r", "best w", "best availability",
             "symmetric majority"],
            rows,
            float_format="{:.5f}",
        ),
        results_dir,
        "availability_tuning.txt",
    )
    # Read-heavy mixes choose r < w; write-heavy choose w < r.
    assert rows[0][1] < rows[0][2]
    assert rows[-1][2] < rows[-1][1]
    # Tuning never loses to the symmetric majority.
    for _, _, _, best, symmetric in rows:
        assert best >= symmetric - 1e-12
