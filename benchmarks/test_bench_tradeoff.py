"""Experiment tradeoff — choosing t: cost against availability.

The threshold ``t`` is the model's central dial: §1 introduces it "to
ensure availability", §2 proves the competitive factors do not depend
on it, and the cost formulas charge every write ``Θ(t)``.  This bench
puts the two sides on one table: exact expected per-request cost (the
Markov analysis) against exact ROWA availabilities, as ``t`` grows —
the quantitative version of "replicate as little as availability
allows".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.availability import (
    rowa_read_availability,
    rowa_write_availability,
)
from repro.analysis.expected_cost import da_expected_cost, sa_expected_cost
from repro.analysis.report import format_table
from repro.model.cost_model import stationary

MODEL = stationary(0.2, 1.5)
N = 8
P_UP = 0.95
WRITE_FRACTION = 0.2


def measure_tradeoff():
    rows = []
    for t in (2, 3, 4, 5, 6):
        rows.append(
            (
                t,
                sa_expected_cost(MODEL, N, t, WRITE_FRACTION),
                da_expected_cost(MODEL, N, t, WRITE_FRACTION),
                rowa_read_availability(P_UP, t),
                rowa_write_availability(P_UP, t),
            )
        )
    return rows


@pytest.mark.benchmark(group="tradeoff")
def test_threshold_cost_availability_tradeoff(benchmark, results_dir):
    rows = benchmark.pedantic(measure_tradeoff, rounds=1, iterations=1)
    emit(
        f"Choosing t (n={N}, write fraction {WRITE_FRACTION}, node "
        f"up-probability {P_UP}, {MODEL})",
        format_table(
            ["t", "SA E[cost]", "DA E[cost]", "read avail", "write avail"],
            rows,
            float_format="{:.4f}",
        ),
        results_dir,
        "tradeoff_t.txt",
    )
    sa_costs = [row[1] for row in rows]
    da_costs = [row[2] for row in rows]
    write_avail = [row[4] for row in rows]
    # Expected cost grows with t for both algorithms (every write pays
    # ~t I/Os and ~t data messages) ...
    assert sa_costs == sorted(sa_costs)
    assert da_costs == sorted(da_costs)
    # ... while write availability falls — the dial the paper keeps at
    # the minimum the availability target allows.
    assert write_avail == sorted(write_avail, reverse=True)
    # At every t, DA stays within its proven factor of SA's cost region
    # (c_d > 1: DA expected cost below SA's, Figure 1's average-case echo).
    for _, sa_cost, da_cost, _, _ in rows:
        assert da_cost < sa_cost
