"""Experiment expected — average-case analysis vs simulation.

Paper §2 justifies worst-case analysis with *"if algorithm A is
superior to algorithm B in the worst case, then it is usually superior
on average"*.  This bench makes the average case concrete: the exact
Markov-chain expected costs (repro.analysis.expected_cost) against
long-run simulation, the analytic SA/DA crossover against the measured
one, and the multi-object directory demonstrating that the comparison
composes across objects.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.expected_cost import (
    analytic_crossover_write_fraction,
    da_expected_cost,
    sa_expected_cost,
)
from repro.analysis.report import format_table
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.multi import ObjectDirectory, interleave
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import stationary
from repro.workloads.uniform import UniformWorkload

MODEL = stationary(0.1, 0.6)
N, T = 8, 2
SCHEME = frozenset(range(1, T + 1))
FRACTIONS = [0.05, 0.2, 0.5, 0.9]


def measure_expected_vs_simulated():
    rows = []
    for write_fraction in FRACTIONS:
        schedule = UniformWorkload(range(1, N + 1), 4000, write_fraction)
        sample = schedule.generate(3)
        sa_sim = MODEL.schedule_cost(
            StaticAllocation(SCHEME).run(sample)
        ) / len(sample)
        da_sim = MODEL.schedule_cost(
            DynamicAllocation(SCHEME, primary=T).run(sample)
        ) / len(sample)
        rows.append(
            (
                write_fraction,
                sa_expected_cost(MODEL, N, T, write_fraction),
                sa_sim,
                da_expected_cost(MODEL, N, T, write_fraction),
                da_sim,
            )
        )
    return rows


@pytest.mark.benchmark(group="expected")
def test_expected_costs_match_simulation(benchmark, results_dir):
    rows = benchmark.pedantic(
        measure_expected_vs_simulated, rounds=1, iterations=1
    )
    crossover = analytic_crossover_write_fraction(MODEL, N, T)
    body = format_table(
        ["write fraction", "SA analytic", "SA simulated",
         "DA analytic", "DA simulated"],
        rows,
    )
    body += f"\n\nanalytic SA/DA crossover: write fraction {crossover:.4f}"
    body += "\n(the rwmix bench measured the empirical crossover at ~0.084)"
    emit(
        f"Expected per-request cost, n={N}, t={T}, {MODEL}",
        body,
        results_dir,
        "expected_costs.txt",
    )
    for write_fraction, sa_analytic, sa_sim, da_analytic, da_sim in rows:
        assert sa_sim == pytest.approx(sa_analytic, rel=0.05)
        assert da_sim == pytest.approx(da_analytic, rel=0.05)
    assert crossover == pytest.approx(0.084, abs=0.02)


def measure_directory():
    # Ten objects with different mixes, routed through one directory.
    directory = ObjectDirectory(
        lambda object_id: DynamicAllocation(SCHEME, primary=T)
    )
    streams = {}
    expected_total = 0.0
    for index in range(10):
        write_fraction = 0.05 * (index + 1)
        schedule = UniformWorkload(
            range(1, N + 1), 100, write_fraction
        ).generate(index)
        streams[f"object-{index}"] = list(schedule)
        standalone = DynamicAllocation(SCHEME, primary=T)
        expected_total += MODEL.schedule_cost(standalone.run(schedule))
    directory.run(interleave(streams))
    return directory, expected_total


@pytest.mark.benchmark(group="expected")
def test_multi_object_directory_composes(benchmark, results_dir):
    directory, expected_total = benchmark.pedantic(
        measure_directory, rounds=1, iterations=1
    )
    per_object = directory.per_object_costs(MODEL)
    rows = sorted(per_object.items())
    emit(
        "Multi-object directory: 10 objects x 100 requests, per-object "
        "DA costs",
        format_table(["object", "cost"], rows)
        + f"\n\ntotal {directory.cost(MODEL):.1f} == sum of standalone "
        f"runs {expected_total:.1f}",
        results_dir,
        "expected_directory.txt",
    )
    assert directory.cost(MODEL) == pytest.approx(expected_total)
