"""Experiments thm1 + prop1 — SA's tight factor (1 + c_c + c_d).

Theorem 1: SA is (1 + c_c + c_d)-competitive in the stationary model.
Proposition 1: no better factor is possible — the family of repeated
foreign reads drives SA's measured ratio arbitrarily close to the
bound.

The benchmark prints, for a row of (c_c, c_d) points, the worst
measured SA ratio over a mixed adversarial + random suite and the
theorem bound; and, for the Proposition 1 family, the measured ratio as
the schedule grows, converging to the bound from below.

SA costs inside the harness evaluate through the vectorized schedule
kernel (``docs/kernel.md``), bit-identically to stepping.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.bounds import sa_competitive_factor
from repro.analysis.report import format_table
from repro.core.competitive import CompetitivenessHarness
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import stationary
from repro.workloads.adversarial import adversarial_suite, sa_killer
from repro.workloads.uniform import UniformWorkload

SCHEME = frozenset({1, 2})
PRICE_POINTS = [(0.0, 0.0), (0.1, 0.3), (0.25, 0.5), (0.3, 1.2), (1.0, 2.0)]


def mixed_suite():
    suite = adversarial_suite(SCHEME, [5, 6, 7], rounds=5)
    suite += UniformWorkload(range(1, 8), 20, 0.3).batch(2, seed=7)
    return suite


def measure_upper_bound_row():
    rows = []
    suite = mixed_suite()
    for c_c, c_d in PRICE_POINTS:
        model = stationary(c_c, c_d)
        harness = CompetitivenessHarness(model)
        report = harness.measure(lambda: StaticAllocation(SCHEME), suite)
        rows.append(
            (c_c, c_d, report.max_ratio, sa_competitive_factor(model))
        )
    return rows


@pytest.mark.benchmark(group="theorem1")
def test_theorem1_sa_upper_bound(benchmark, results_dir):
    rows = benchmark.pedantic(measure_upper_bound_row, rounds=1, iterations=1)
    emit(
        "Theorem 1: SA worst measured ratio vs (1 + c_c + c_d)",
        format_table(
            ["c_c", "c_d", "measured max ratio", "theorem bound"], rows
        ),
        results_dir,
        "theorem1_upper.txt",
    )
    for c_c, c_d, measured, bound in rows:
        assert measured <= bound + 1e-9, (c_c, c_d)


def measure_prop1_convergence(c_c=0.3, c_d=1.2):
    model = stationary(c_c, c_d)
    harness = CompetitivenessHarness(model)
    rows = []
    for repetitions in (2, 4, 8, 16, 32, 64, 128):
        report = harness.measure(
            lambda: StaticAllocation(SCHEME), [sa_killer(5, repetitions)]
        )
        rows.append(
            (repetitions, report.max_ratio, sa_competitive_factor(model))
        )
    return rows


@pytest.mark.benchmark(group="theorem1")
def test_proposition1_tightness(benchmark, results_dir):
    rows = benchmark.pedantic(
        measure_prop1_convergence, rounds=1, iterations=1
    )
    emit(
        "Proposition 1: repeated foreign reads drive SA to its bound "
        "(c_c=0.3, c_d=1.2)",
        format_table(["schedule length", "SA ratio", "bound"], rows),
        results_dir,
        "proposition1_convergence.txt",
    )
    ratios = [ratio for _, ratio, _ in rows]
    bound = rows[0][2]
    # Monotone convergence from below, reaching >95% of the bound.
    assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:]))
    assert all(ratio <= bound + 1e-9 for ratio in ratios)
    assert ratios[-1] >= 0.95 * bound
