"""Experiment snoopy — §5.2's architecture contrast, measured.

*"The architecture assumed in most CDVM methods is bus-based.  This
architecture supports broadcast at the same cost as a single-cast, and
on the other hand incurs contention.  In contrast, in this paper we
assumed point-to-point communication."*

Both halves of that sentence, on the simulator: as the number of
sharers grows, DA's point-to-point invalidations scale linearly while
the snoopy broadcast stays one charge — but every snoopy transmission
also serializes on the shared bus, so its *latency* inherits the
contention the paper warns about.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.distsim.bus import SharedBusNetwork
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.snoopy import SnoopyCachingProtocol
from repro.distsim.simulator import Simulator
from repro.model.request import read, write
from repro.model.schedule import Schedule

SCHEME = frozenset({1, 2})


def sharing_schedule(sharers: int) -> Schedule:
    requests = [read(4 + index) for index in range(sharers)]
    requests.append(write(3))
    return Schedule(tuple(requests)) * 3


def run(protocol_cls, sharers: int):
    nodes = set(range(1, 4 + sharers))
    bus = SharedBusNetwork(Simulator())
    bus.add_nodes(nodes)
    if protocol_cls is DynamicAllocationProtocol:
        protocol = protocol_cls(bus, SCHEME, primary=2)
    else:
        protocol = protocol_cls(bus, SCHEME)
    stats = protocol.execute(sharing_schedule(sharers))
    return stats, bus


def measure_architecture_contrast():
    rows = []
    for sharers in (2, 4, 8):
        da_stats, _ = run(DynamicAllocationProtocol, sharers)
        sn_stats, _ = run(SnoopyCachingProtocol, sharers)
        rows.append(
            (
                sharers,
                da_stats.control_messages,
                sn_stats.control_messages,
                da_stats.mean_latency,
                sn_stats.mean_latency,
            )
        )
    return rows


@pytest.mark.benchmark(group="snoopy")
def test_broadcast_vs_point_to_point(benchmark, results_dir):
    rows = benchmark.pedantic(
        measure_architecture_contrast, rounds=1, iterations=1
    )
    emit(
        "§5.2 architecture contrast: sharers read, then a write "
        "invalidates (x3 rounds, on the shared bus)",
        format_table(
            ["sharers", "DA ctrl msgs", "snoopy ctrl msgs",
             "DA mean latency", "snoopy mean latency"],
            rows,
        ),
        results_dir,
        "snoopy_contrast.txt",
    )
    da_controls = [row[1] for row in rows]
    snoopy_controls = [row[2] for row in rows]
    # DA's invalidation traffic grows with the sharer count ...
    assert da_controls == sorted(da_controls)
    assert da_controls[-1] > da_controls[0]
    # ... the snoopy broadcast's write-side cost does not: its control
    # messages grow only by the extra read misses, exactly one per
    # sharer per round — so the *gap* to DA widens with sharing.
    gaps = [da - sn for da, sn, *_ in
            [(row[1], row[2]) for row in rows]]
    assert gaps == sorted(gaps)
    assert gaps[-1] > gaps[0]
