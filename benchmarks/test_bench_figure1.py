"""Experiment fig1 — regenerate Figure 1 (stationary-computing model).

The paper's Figure 1 partitions the (c_d, c_c) plane into "SA is
superior" (c_c + c_d < 0.5), "DA is superior" (c_d > 1), "Unknown" and
"Cannot be true" (c_c > c_d).  We regenerate it twice:

* *theoretically*, straight from the proven bounds, and
* *empirically*, by measuring each algorithm's worst cost ratio against
  the exact offline optimum over an adversarial + random schedule suite
  at every grid point, declaring the smaller worst case the winner.

The reproduction claim: wherever the theoretical map is decided (SA or
DA), the empirical winner agrees.

The 81 grid points are independent, so the map is submitted through
the experiment engine: ``REPRO_BENCH_WORKERS=8`` fans the grid out
over 8 processes (identical output, wall-clock divided by the worker
count on idle cores), and ``REPRO_BENCH_CACHE=dir`` makes re-runs skip
completed points.  Within each point, SA/DA costs evaluate through the
vectorized schedule kernel (``docs/kernel.md``) — bit-identical to the
stepped path.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_engine, emit
from repro.analysis.regions import Region, empirical_map, theoretical_map
from repro.viz.ascii_plot import render_region_map
from repro.viz.csv_export import region_map_to_csv
from repro.viz.svg_export import write_svg
from repro.workloads.adversarial import adversarial_suite
from repro.workloads.uniform import UniformWorkload

SCHEME = frozenset({1, 2})
GRID_STEPS = 9


def schedule_suite():
    suite = adversarial_suite(SCHEME, [5, 6, 7], rounds=4)
    suite += UniformWorkload(range(1, 8), 20, 0.3).batch(2, seed=42)
    return suite


def build_empirical_map():
    return empirical_map(
        schedule_suite(),
        SCHEME,
        mobile_model=False,
        c_d_max=2.0,
        c_c_max=2.0,
        steps=GRID_STEPS,
        engine=bench_engine(label="figure1"),
    )


@pytest.mark.benchmark(group="figure1")
def test_figure1_region_map(benchmark, results_dir):
    theory = theoretical_map(mobile_model=False, steps=GRID_STEPS)
    measured = benchmark.pedantic(
        build_empirical_map, rounds=1, iterations=1
    )

    emit(
        "Figure 1 (theory): SC model, winner by proven bounds",
        render_region_map(theory),
        results_dir,
        "figure1_theory.txt",
    )
    emit(
        "Figure 1 (measured): SC model, winner by worst ratio vs exact OPT",
        render_region_map(measured),
        results_dir,
        "figure1_measured.txt",
    )
    (results_dir / "figure1_measured.csv").write_text(
        region_map_to_csv(measured), encoding="utf-8"
    )
    write_svg(
        theory, results_dir / "figure1_theory.svg",
        title="Figure 1 (SC model, theory)",
    )
    write_svg(
        measured, results_dir / "figure1_measured.svg",
        title="Figure 1 (SC model, measured)",
    )

    # Shape check: wherever theory decides a winner, measurement agrees.
    disagreements = []
    for point in theory.points:
        if point.region in (Region.SA_SUPERIOR, Region.DA_SUPERIOR):
            measured_point = measured.at(point.c_c, point.c_d)
            if measured_point.region is not point.region:
                disagreements.append((point, measured_point))
    assert disagreements == [], disagreements

    # The headline boundaries of the paper's figure:
    assert measured.at(0.0, 0.0).region is Region.SA_SUPERIOR
    assert measured.at(0.25, 1.25).region is Region.DA_SUPERIOR
    assert measured.at(0.0, 2.0).region is Region.DA_SUPERIOR
    assert theory.at(2.0, 0.0).region is Region.INFEASIBLE
