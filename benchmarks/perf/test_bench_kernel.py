"""Kernel performance acceptance — full-size stepped vs vectorized run.

The acceptance bar for the vectorized kernel: on the 10k-request x
32-replication batch, the kernel must evaluate SA and DA at least 5x
faster than the stepped object path while returning *exactly* equal
costs, and the rewritten offline DP must solve a 14-processor universe
within the benchmark timeout.  The machine-readable report is
persisted as ``benchmarks/results/BENCH_kernel.json`` (the CI
perf-smoke job runs the same harness via ``repro bench --smoke
--check``; this full run is minutes, not seconds).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import RESULTS_DIR
from repro.kernel.bench import format_result, run_kernel_bench, write_result

#: The acceptance bar for the full-size batch.
MIN_SPEEDUP = 5.0

#: The DP must finish the 14-processor instance within this (seconds).
DP_TIMEOUT = 60.0


@pytest.mark.benchmark(group="kernel")
def test_kernel_speedup_full(benchmark, results_dir):
    result = benchmark.pedantic(run_kernel_bench, rounds=1, iterations=1)
    print()
    print(format_result(result))
    write_result(result, results_dir / "BENCH_kernel.json")

    for name, entry in result["algorithms"].items():
        assert entry["costs_match"], f"{name}: kernel costs diverged"
        assert entry["speedup"] >= MIN_SPEEDUP, (
            f"{name}: kernel only {entry['speedup']:.1f}x faster "
            f"(bar is {MIN_SPEEDUP}x)"
        )
    assert result["dp"]["processors"] == 14
    assert result["dp"]["seconds"] < DP_TIMEOUT
    assert result["check_passed"]


if __name__ == "__main__":  # pragma: no cover - manual convenience
    report = run_kernel_bench()
    print(format_result(report))
    RESULTS_DIR.mkdir(exist_ok=True)
    write_result(report, RESULTS_DIR / "BENCH_kernel.json")
