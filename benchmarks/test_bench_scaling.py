"""Experiment scaling — substrate performance characteristics.

Not a paper artifact but a reproduction-quality statement: how far the
exact machinery reaches and what the fallbacks cost.

* the exact offline DP's runtime grows exponentially with the universe
  (the documented reason for the 12-processor guard);
* the beam + linear-bound sandwich handles 20+ processors in linear
  time and stays sound (lower <= beam upper) with a measured gap;
* the discrete-event DA protocol sustains thousands of requests per
  second of wall-clock time.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.beam_optimal import optimal_sandwich
from repro.core.offline_optimal import OfflineOptimal
from repro.distsim.runner import run_protocol
from repro.model.cost_model import stationary
from repro.workloads.uniform import UniformWorkload

MODEL = stationary(0.2, 1.5)
SCHEME = frozenset({1, 2})


def measure_dp_scaling():
    rows = []
    for n in (4, 6, 8, 10):
        schedule = UniformWorkload(range(1, n + 1), 30, 0.3).generate(1)
        start = time.perf_counter()
        cost = OfflineOptimal(MODEL).optimal_cost(schedule, SCHEME)
        elapsed = time.perf_counter() - start
        rows.append((n, cost, elapsed * 1000))
    return rows


@pytest.mark.benchmark(group="scaling")
def test_exact_dp_scaling(benchmark, results_dir):
    rows = benchmark.pedantic(measure_dp_scaling, rounds=1, iterations=1)
    emit(
        "Exact offline DP runtime vs universe size (30-request schedules)",
        format_table(["processors", "OPT cost", "runtime (ms)"], rows),
        results_dir,
        "scaling_dp.txt",
    )
    times = [elapsed for _, _, elapsed in rows]
    # The growth is super-linear (the guard exists for a reason).
    assert times[-1] > times[0]


def measure_sandwich_scaling():
    rows = []
    for n in (10, 15, 20, 25):
        schedule = UniformWorkload(range(1, n + 1), 60, 0.25).generate(2)
        start = time.perf_counter()
        sandwich = optimal_sandwich(
            schedule, SCHEME, MODEL, beam_width=32
        )
        elapsed = time.perf_counter() - start
        gap = sandwich.upper / max(sandwich.lower, 1e-12)
        rows.append((n, sandwich.lower, sandwich.upper, gap, elapsed * 1000))
    return rows


@pytest.mark.benchmark(group="scaling")
def test_sandwich_for_large_instances(benchmark, results_dir):
    rows = benchmark.pedantic(measure_sandwich_scaling, rounds=1, iterations=1)
    emit(
        "OPT sandwich (linear lower bound, beam upper bound) beyond the "
        "exact DP's reach",
        format_table(
            ["processors", "lower bound", "beam upper", "gap factor",
             "runtime (ms)"],
            rows,
        ),
        results_dir,
        "scaling_sandwich.txt",
    )
    for n, lower, upper, gap, _ in rows:
        assert lower <= upper + 1e-9
        assert gap < 3.0  # the sandwich stays informative


@pytest.mark.benchmark(group="scaling")
def test_protocol_throughput(benchmark):
    """Wall-clock requests/second through the DA protocol."""
    schedule = UniformWorkload(range(1, 11), 200, 0.3).generate(4)

    def run():
        return run_protocol("DA", schedule, SCHEME, primary=2)

    stats = benchmark(run)
    assert stats.requests_completed == 200
