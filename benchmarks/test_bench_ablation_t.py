"""Experiment tsweep — the availability threshold ablation.

Paper §2: *"Interestingly, these competitiveness factors are
independent of the integer t which limits the minimum number of copies
in the system."*  We sweep t = 2..5 and report the worst measured ratio
of SA and DA (against the exact offline optimum constrained to the same
t): the bounds hold at every t, and the measured worst cases stay flat
rather than growing with t.

The sweep runs through the generic :func:`repro.analysis.sweep.sweep`
driver on the experiment engine — one independent task per threshold,
parallelizable with ``REPRO_BENCH_WORKERS`` and resumable with
``REPRO_BENCH_CACHE``, with results identical to the serial loop it
replaced.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_engine, emit
from repro.analysis.bounds import da_competitive_factor, sa_competitive_factor
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import stationary
from repro.workloads.adversarial import adversarial_suite

MODEL = stationary(0.3, 1.2)
THRESHOLDS = [2, 3, 4, 5]


def _scheme_for(t: float) -> frozenset:
    return frozenset(range(1, int(t) + 1))


def measure_t_sweep():
    result = sweep(
        "t",
        THRESHOLDS,
        factories_for=lambda t: {
            "SA": lambda: StaticAllocation(_scheme_for(t)),
            "DA": lambda: DynamicAllocation(_scheme_for(t)),
        },
        schedules_for=lambda t: adversarial_suite(
            _scheme_for(t), [8, 9, 10], rounds=4
        ),
        model_for=lambda t: MODEL,
        threshold_for=lambda t: int(t),
        engine=bench_engine(label="ablation-t"),
    )
    return [
        (int(row.parameter), row.max_ratios["SA"], row.max_ratios["DA"])
        for row in result.rows
    ]


@pytest.mark.benchmark(group="ablation-t")
def test_competitive_factors_independent_of_t(benchmark, results_dir):
    rows = benchmark.pedantic(measure_t_sweep, rounds=1, iterations=1)
    sa_bound = sa_competitive_factor(MODEL)
    da_bound = da_competitive_factor(MODEL)
    emit(
        f"Threshold sweep (c_c=0.3, c_d=1.2): bounds SA<={sa_bound:.2f}, "
        f"DA<={da_bound:.2f} for every t",
        format_table(["t", "SA max ratio", "DA max ratio"], rows),
        results_dir,
        "ablation_t.txt",
    )
    sa_ratios = [sa for _, sa, _ in rows]
    da_ratios = [da for _, _, da in rows]
    assert all(ratio <= sa_bound + 1e-9 for ratio in sa_ratios)
    assert all(ratio <= da_bound + 1e-9 for ratio in da_ratios)
    # "Independent of t": the worst case does not grow with t — the
    # spread across thresholds stays within a narrow band.
    assert max(sa_ratios) - min(sa_ratios) < 0.5
    assert max(da_ratios) - min(da_ratios) < 0.5
