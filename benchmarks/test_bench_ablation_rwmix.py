"""Experiment rwmix — the read/write-mix crossover.

Paper §1.2: *"the larger the allocation scheme the smaller the cost of
an average read-request, and the bigger the cost of an average write
request"* — the intuition behind both algorithms.  We sweep the write
fraction of a uniform workload and measure SA's and DA's mean cost.

The measured shape is richer than a single crossover: DA wins the
read-heavy end (saving-reads amortize), SA wins a middle band (joins
are wasted work when writes soon invalidate them), and DA wins again at
the write-heavy end — a DA write keeps a replica *at the writer*
(execution set ``F ∪ {writer}``), one data message cheaper than SA's
write-all to a scheme the writer may not belong to.  The bench locates
the first crossover (DA → SA) and asserts all three regimes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.crossover import find_crossover
from repro.analysis.report import format_table
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import stationary
from repro.workloads.uniform import UniformWorkload

MODEL = stationary(0.1, 0.6)
PROCESSORS = range(1, 9)
SCHEME = frozenset({1, 2})
FRACTIONS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9]


def mean_cost(algorithm_factory, write_fraction: float, seeds=range(4)):
    total = 0.0
    count = 0
    for seed in seeds:
        schedule = UniformWorkload(PROCESSORS, 80, write_fraction).generate(
            seed
        )
        algorithm = algorithm_factory()
        total += MODEL.schedule_cost(algorithm.run(schedule))
        count += 1
    return total / count


def measure_rwmix():
    rows = []
    for fraction in FRACTIONS:
        sa = mean_cost(lambda: StaticAllocation(SCHEME), fraction)
        da = mean_cost(lambda: DynamicAllocation(SCHEME, primary=2), fraction)
        rows.append((fraction, sa, da, "DA" if da < sa else "SA"))
    return rows


@pytest.mark.benchmark(group="ablation-rwmix")
def test_read_write_mix_crossover(benchmark, results_dir):
    rows = benchmark.pedantic(measure_rwmix, rounds=1, iterations=1)
    crossover = find_crossover(
        lambda fraction: mean_cost(
            lambda: DynamicAllocation(SCHEME, primary=2), fraction
        )
        - mean_cost(lambda: StaticAllocation(SCHEME), fraction),
        0.0,
        0.3,
        tolerance=0.02,
    )
    body = format_table(
        ["write fraction", "SA mean cost", "DA mean cost", "cheaper"], rows
    )
    if crossover is not None:
        body += (
            f"\n\nfirst crossover (DA -> SA) near write fraction "
            f"{crossover.parameter:.3f}"
        )
    emit(
        "Read/write-mix sweep (SC, c_c=0.1, c_d=0.6, 8 processors)",
        body,
        results_dir,
        "ablation_rwmix.txt",
    )
    # Read-only: DA strictly cheaper (saves amortize, no writes punish).
    assert rows[0][2] < rows[0][1]
    # A middle band where SA is cheaper (joins wasted on soon-invalidated
    # copies) exists.
    assert any(winner == "SA" for _, _, _, winner in rows)
    # Write-heavy end: DA cheaper again (writer-local replica saves one
    # data message per write).
    assert rows[-1][2] < rows[-1][1]
    # The first crossover sits inside the read-heavy bracket.
    assert crossover is not None
    assert 0.0 < crossover.parameter < 0.3
