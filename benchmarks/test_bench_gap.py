"""Experiment gap — probing the paper's open problem.

Paper §6.1: *"The area marked 'Unknown' represents the c_c and c_d
values for which it is currently unknown whether the DA algorithm is
superior to the SA algorithm or vice versa.  The reason for this
uncertainty is that there is a gap between the upper and lower bound on
the competitiveness of the DA algorithm.  This gap is the subject of
future research."*

We probe the gap with the exhaustive search: for price points inside
the Unknown wedge, enumerate *every* schedule up to length 5 over a
4-processor universe and record DA's certified worst cost-ratio.  The
observed worst cases sit well above the proven 1.5 lower bound and
track ``(2 + c_c + c_d) / (1 + c_c + c_d)`` — the single-saving-read
seed ratio — supporting the conjecture that DA's true factor behaves
like ``2 + Θ(c_c)`` rather than 1.5.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.bounds import da_competitive_factor
from repro.analysis.report import format_table
from repro.analysis.worst_case import certified_worst_case
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import stationary

SCHEME = frozenset({1, 2})
#: Price points inside (or at the edge of) Figure 1's Unknown wedge.
PRICE_POINTS = [(0.0, 0.5), (0.1, 0.5), (0.25, 0.75), (0.25, 1.0)]


def probe_gap():
    rows = []
    for c_c, c_d in PRICE_POINTS:
        model = stationary(c_c, c_d)
        worst = certified_worst_case(
            lambda: DynamicAllocation(SCHEME, primary=2),
            model,
            SCHEME,
            (5, 6),
            max_length=5,
        )
        seed_ratio = (2 + c_c + c_d) / (1 + c_c + c_d)
        rows.append(
            (
                c_c,
                c_d,
                worst.ratio,
                str(worst.schedule),
                seed_ratio,
                da_competitive_factor(model),
            )
        )
    return rows


@pytest.mark.benchmark(group="gap")
def test_unknown_gap_probe(benchmark, results_dir):
    rows = benchmark.pedantic(probe_gap, rounds=1, iterations=1)
    emit(
        "The DA bound gap: certified worst ratios over ALL schedules "
        "(length <= 5, 4 processors)",
        format_table(
            ["c_c", "c_d", "worst ratio", "worst schedule",
             "saving-read seed", "Thm 2/3 bound"],
            rows,
        ),
        results_dir,
        "gap_probe.txt",
    )
    for c_c, c_d, ratio, schedule, seed_ratio, bound in rows:
        # The certified worst case is at least the saving-read seed and
        # never violates the proven upper bound.
        assert ratio >= seed_ratio - 1e-9
        assert ratio <= bound + 1e-9
        # It exceeds the paper's 1.5 lower bound everywhere in the wedge
        # — the gap closes from below.
        assert ratio > 1.5


def sa_vs_da_certified():
    model = stationary(0.1, 0.5)  # inside the Unknown wedge
    sa = certified_worst_case(
        lambda: StaticAllocation(SCHEME), model, SCHEME, (5, 6), max_length=5
    )
    da = certified_worst_case(
        lambda: DynamicAllocation(SCHEME, primary=2),
        model, SCHEME, (5, 6), max_length=5,
    )
    return sa, da


@pytest.mark.benchmark(group="gap")
def test_unknown_wedge_certified_comparison(benchmark, results_dir):
    sa, da = benchmark.pedantic(sa_vs_da_certified, rounds=1, iterations=1)
    emit(
        "Unknown wedge (c_c=0.1, c_d=0.5): certified short-schedule "
        "worst cases",
        format_table(
            ["algorithm", "worst ratio", "worst schedule"],
            [("SA", sa.ratio, str(sa.schedule)),
             ("DA", da.ratio, str(da.schedule))],
        ),
        results_dir,
        "gap_wedge_comparison.txt",
    )
    # On short horizons SA's worst case is milder than DA's here —
    # consistent with the wedge being genuinely undecided by worst-case
    # reasoning at these prices (SA's family needs length to bite).
    assert sa.ratio > 1.0
    assert da.ratio > 1.5
