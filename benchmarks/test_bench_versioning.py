"""Experiment append — the append-only model of §6.2.

*"SA means that there is a fixed set of t processors with a permanent
standing-order to receive the latest object; DA means that t-1
processors have permanent standing-orders; whenever another processor
needs the latest version it issues a temporary standing-order."*

We simulate a satellite image feed: stations generate images, earth
stations read the latest at arbitrary times, every image must be stored
at >= t stations.  The bench reports SA vs DA vs OPT cost across
read-intensity levels and asserts the §6.2 claim that the base-model
results carry over: DA wins exactly where it wins in the base model.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.offline_optimal import optimal_cost
from repro.core.static_allocation import StaticAllocation
from repro.core.versioning import (
    AppendOnlyFeed,
    generate,
    read_latest,
    run_feed,
)
from repro.model.cost_model import stationary

MODEL = stationary(0.2, 1.5)  # inside DA's superiority region (c_d > 1)
SCHEME = frozenset({1, 2})


def make_feed(reads_per_object: int, objects: int = 6, seed: int = 0):
    rng = random.Random(seed)
    stations = [3, 4, 5]
    events = []
    for _ in range(objects):
        events.append(generate(rng.choice([1, 3])))
        for _ in range(reads_per_object):
            events.append(read_latest(rng.choice(stations)))
    return AppendOnlyFeed(events)


def measure_feed_costs():
    rows = []
    for reads_per_object in (1, 2, 4, 8):
        feed = make_feed(reads_per_object)
        sa = run_feed(feed, StaticAllocation(SCHEME), MODEL)
        da = run_feed(feed, DynamicAllocation(SCHEME, primary=2), MODEL)
        opt = optimal_cost(feed.to_schedule(), SCHEME, MODEL)
        rows.append((reads_per_object, sa.cost, da.cost, opt))
    return rows


@pytest.mark.benchmark(group="versioning")
def test_append_only_standing_orders(benchmark, results_dir):
    rows = benchmark.pedantic(measure_feed_costs, rounds=1, iterations=1)
    emit(
        "Append-only satellite feed (6 objects, t=2, c_c=0.2, c_d=1.5)",
        format_table(
            ["reads/object", "SA (permanent orders)",
             "DA (temporary orders)", "OPT"],
            rows,
        ),
        results_dir,
        "versioning_feed.txt",
    )
    for reads_per_object, sa_cost, da_cost, opt in rows:
        assert opt <= min(sa_cost, da_cost) + 1e-9
        if reads_per_object >= 2:
            # Repeat readers: temporary standing orders win, as the
            # base-model analysis (c_d > 1 => DA superior) predicts.
            assert da_cost < sa_cost, reads_per_object


@pytest.mark.benchmark(group="versioning")
def test_reliability_constraint_always_met(benchmark, results_dir):
    def run_all():
        results = []
        for seed in range(5):
            feed = make_feed(3, seed=seed)
            for algorithm in (
                StaticAllocation(SCHEME),
                DynamicAllocation(SCHEME, primary=2),
            ):
                results.append(run_feed(feed, algorithm, MODEL))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        "Append-only reliability: every object stored at >= t stations",
        format_table(
            ["runs checked", "objects/run", "all reliable"],
            [(len(results), results[0].allocation.schedule().write_count,
              all(r.reliability_satisfied(2) for r in results))],
        ),
        results_dir,
        "versioning_reliability.txt",
    )
    assert all(result.reliability_satisfied(2) for result in results)
