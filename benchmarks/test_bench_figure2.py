"""Experiment fig2 — regenerate Figure 2 (mobile-computing model).

In the MC model (c_io = 0) the paper proves SA non-competitive
(Proposition 3) while DA stays (2 + 3 c_c / c_d)-competitive
(Theorem 4): Figure 2 shows DA superior on the entire feasible
half-plane.  We regenerate the map empirically and assert the dominance
is total.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.regions import Region, empirical_map, theoretical_map
from repro.viz.ascii_plot import render_region_map
from repro.viz.csv_export import region_map_to_csv
from repro.viz.svg_export import write_svg
from repro.workloads.adversarial import adversarial_suite
from repro.workloads.uniform import UniformWorkload

SCHEME = frozenset({1, 2})
GRID_STEPS = 9


def schedule_suite():
    suite = adversarial_suite(SCHEME, [5, 6, 7], rounds=4)
    suite += UniformWorkload(range(1, 8), 20, 0.3).batch(2, seed=42)
    return suite


def build_empirical_map():
    return empirical_map(
        schedule_suite(),
        SCHEME,
        mobile_model=True,
        c_d_max=2.0,
        c_c_max=2.0,
        steps=GRID_STEPS,
    )


@pytest.mark.benchmark(group="figure2")
def test_figure2_region_map(benchmark, results_dir):
    theory = theoretical_map(mobile_model=True, steps=GRID_STEPS)
    measured = benchmark.pedantic(build_empirical_map, rounds=1, iterations=1)

    emit(
        "Figure 2 (theory): MC model, winner by proven bounds",
        render_region_map(theory),
        results_dir,
        "figure2_theory.txt",
    )
    emit(
        "Figure 2 (measured): MC model, winner by worst ratio vs exact OPT",
        render_region_map(measured),
        results_dir,
        "figure2_measured.txt",
    )
    (results_dir / "figure2_measured.csv").write_text(
        region_map_to_csv(measured), encoding="utf-8"
    )
    write_svg(
        measured, results_dir / "figure2_measured.svg",
        title="Figure 2 (MC model, measured)",
    )

    # DA dominates at every feasible, non-degenerate grid point.
    for point in measured.points:
        if point.region is Region.INFEASIBLE:
            continue
        if point.c_d == 0.0:
            continue  # everything free: the comparison is vacuous
        assert point.region is Region.DA_SUPERIOR, point
        assert point.da_ratio < point.sa_ratio

    # SA is not merely worse — its worst ratio is unbounded in the
    # schedule length; at any fixed length it already dwarfs DA's.
    sample = measured.at(0.5, 1.0)
    assert sample.sa_ratio > 3.0
    assert sample.da_ratio <= 2.0 + 3.0 * 0.5 / 1.0 + 1e-9
