"""Experiment distsim — the substrate validation and failure costs.

Three artifacts:

* model agreement: the discrete-event SA/DA protocols' counted traffic
  equals the analytic §3.2 costs on a random workload (the reproduction
  claim that the simulator and the model describe the same system);
* the base-station scenario of §2, with the wireless bill;
* failure-mode cost: DA's normal-mode traffic vs the quorum fallback's
  traffic for the same requests, plus the price of a full
  crash/fallback/recovery cycle — quantifying why the paper keeps
  quorum consensus for failures only.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.distsim.failures import FailureInjector
from repro.distsim.protocols.base_station import BaseStationDeployment
from repro.distsim.protocols.missing_writes import FaultTolerantDAProtocol
from repro.distsim.protocols.quorum import QuorumConsensusProtocol
from repro.distsim.runner import build_network, run_protocol
from repro.model.cost_model import mobile, stationary
from repro.model.schedule import Schedule
from repro.workloads.mobility import MobileLocationWorkload
from repro.workloads.uniform import UniformWorkload

SCHEME = frozenset({1, 2})
MODEL = stationary(0.2, 1.5)


def measure_model_agreement():
    schedule = UniformWorkload(range(1, 7), 100, 0.3).generate(21)
    rows = []
    for name, algorithm in (
        ("SA", StaticAllocation(SCHEME)),
        ("DA", DynamicAllocation(SCHEME, primary=2)),
    ):
        stats = run_protocol(name, schedule, SCHEME, primary=2)
        simulated = stats.cost(MODEL)
        analytic = MODEL.schedule_cost(algorithm.run(schedule))
        # The counters are integers; only float summation order differs.
        rows.append((name, simulated, analytic, abs(simulated - analytic) < 1e-6))
    return rows


@pytest.mark.benchmark(group="distsim")
def test_simulator_agrees_with_model(benchmark, results_dir):
    rows = benchmark.pedantic(measure_model_agreement, rounds=1, iterations=1)
    emit(
        "Simulator vs analytic model (100-request uniform workload)",
        format_table(
            ["protocol", "simulated cost", "analytic cost", "equal"], rows
        ),
        results_dir,
        "distsim_agreement.txt",
    )
    for name, simulated, analytic, equal in rows:
        assert equal, name


def measure_base_station():
    deployment = BaseStationDeployment(base_station=0, mobile_hosts=[1, 2, 3])
    workload = MobileLocationWorkload(
        cells=[1, 2, 3], callers=[1, 2, 3], length=200, move_probability=0.2
    )
    stats = deployment.run(workload.generate(5))
    bill = deployment.bill(mobile(0.5, 2.0))
    return stats, bill


@pytest.mark.benchmark(group="distsim")
def test_base_station_deployment(benchmark, results_dir):
    stats, bill = benchmark.pedantic(
        measure_base_station, rounds=1, iterations=1
    )
    emit(
        "Base-station deployment (t=2, F={station}), 200 requests",
        format_table(
            ["metric", "value"],
            [
                ("control messages", bill.control_messages),
                ("data messages", bill.data_messages),
                ("wireless charge (c_c=0.5, c_d=2.0)", bill.total_charge),
                ("mean latency", stats.mean_latency),
                ("max latency", stats.max_latency),
            ],
        ),
        results_dir,
        "distsim_base_station.txt",
    )
    assert stats.requests_completed == 200
    assert bill.total_charge > 0


def measure_failure_costs():
    schedule = Schedule.parse("r3 w1 r4 r3 w2 r5 r4 w1 r3 r5")
    # Normal-mode DA.
    da_stats = run_protocol("DA", schedule, SCHEME, primary=2)
    # Pure quorum for the same requests.
    network = build_network(set(schedule.processors) | SCHEME)
    quorum = QuorumConsensusProtocol(network, SCHEME)
    quorum_stats = quorum.execute(schedule)
    # A full outage cycle under the fault-tolerant driver.
    ft_network = build_network(set(schedule.processors) | SCHEME)
    ft = FaultTolerantDAProtocol(ft_network, SCHEME, primary=2)
    injector = FailureInjector(ft_network, ft)
    half = len(schedule) // 2
    for request in schedule[:half]:
        ft.execute_request(request)
    injector.crash_now(1)
    for request in schedule[half:]:
        ft.execute_request(request)
    injector.recover_now(1)
    ft_stats = ft_network.stats
    return da_stats, quorum_stats, ft_stats


@pytest.mark.benchmark(group="distsim")
def test_failure_mode_costs(benchmark, results_dir):
    da_stats, quorum_stats, ft_stats = benchmark.pedantic(
        measure_failure_costs, rounds=1, iterations=1
    )
    rows = [
        (
            name,
            stats.control_messages,
            stats.data_messages,
            stats.io_reads + stats.io_writes,
            stats.cost(MODEL),
        )
        for name, stats in (
            ("DA (normal mode)", da_stats),
            ("quorum consensus", quorum_stats),
            ("DA + outage + recovery", ft_stats),
        )
    ]
    emit(
        "Failure handling: DA vs quorum fallback (10-request script)",
        format_table(["protocol", "ctrl", "data", "io", "SC cost"], rows),
        results_dir,
        "distsim_failures.txt",
    )
    # Quorum costs strictly more than normal-mode DA — the reason the
    # paper reserves it for failures.
    assert quorum_stats.cost(MODEL) > da_stats.cost(MODEL)
    # The outage cycle costs more than pure DA but completes everything.
    assert ft_stats.cost(MODEL) >= da_stats.cost(MODEL)
    assert ft_stats.requests_completed == 10


@pytest.mark.benchmark(group="distsim")
def test_simulator_throughput(benchmark):
    """A conventional microbenchmark: requests/second through the
    discrete-event DA protocol (useful for tracking substrate
    regressions; repeated rounds are meaningful here)."""
    schedule = UniformWorkload(range(1, 7), 50, 0.3).generate(3)

    def run():
        return run_protocol("DA", schedule, SCHEME, primary=2)

    stats = benchmark(run)
    assert stats.requests_completed == 50
