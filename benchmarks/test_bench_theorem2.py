"""Experiments thm2 + thm3 + prop2 — DA's competitive factor (SC model).

Theorem 2: DA is (2 + 2 c_c)-competitive for any t.
Theorem 3: when c_d > 1, DA is (2 + c_c)-competitive.
Proposition 2: DA is not α-competitive for α < 1.5 — the family of
distinct one-shot readers between core writes realizes ratios past 1.5
(approaching 2 = the c_c → 0 limit of Theorem 2's bound, which is why
the paper reports a gap between its upper and lower bounds).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.bounds import da_competitive_factor
from repro.analysis.report import format_table
from repro.core.competitive import CompetitivenessHarness
from repro.core.dynamic_allocation import DynamicAllocation
from repro.model.cost_model import stationary
from repro.workloads.adversarial import adversarial_suite, da_killer
from repro.workloads.uniform import UniformWorkload

SCHEME = frozenset({1, 2})
PRICE_POINTS = [
    (0.0, 0.0),
    (0.1, 0.3),
    (0.25, 0.5),
    (0.25, 1.0),
    (0.3, 1.2),
    (1.0, 2.0),
]


def mixed_suite():
    suite = adversarial_suite(SCHEME, [5, 6, 7], rounds=5)
    suite += UniformWorkload(range(1, 8), 20, 0.3).batch(2, seed=7)
    return suite


def measure_da_bounds():
    rows = []
    suite = mixed_suite()
    for c_c, c_d in PRICE_POINTS:
        model = stationary(c_c, c_d)
        harness = CompetitivenessHarness(model)
        report = harness.measure(
            lambda: DynamicAllocation(SCHEME, primary=2), suite
        )
        bound = da_competitive_factor(model)
        theorem = "Thm 3 (2+c_c)" if c_d > 1 else "Thm 2 (2+2c_c)"
        rows.append((c_c, c_d, report.max_ratio, bound, theorem))
    return rows


@pytest.mark.benchmark(group="theorem2")
def test_theorems_2_and_3_da_upper_bounds(benchmark, results_dir):
    rows = benchmark.pedantic(measure_da_bounds, rounds=1, iterations=1)
    emit(
        "Theorems 2-3: DA worst measured ratio vs proven bound",
        format_table(
            ["c_c", "c_d", "measured max ratio", "bound", "which"], rows
        ),
        results_dir,
        "theorem2_3_upper.txt",
    )
    for c_c, c_d, measured, bound, _ in rows:
        assert measured <= bound + 1e-9, (c_c, c_d)


def measure_prop2_family(c_c=0.01, c_d=0.02):
    model = stationary(c_c, c_d)
    harness = CompetitivenessHarness(model)
    rows = []
    for readers in (1, 2, 3, 4, 5):
        schedule = da_killer(
            list(range(5, 5 + readers)), writer=1, rounds=4
        )
        report = harness.measure(
            lambda: DynamicAllocation(SCHEME, primary=2), [schedule]
        )
        rows.append((readers, report.max_ratio, da_competitive_factor(model)))
    return rows


@pytest.mark.benchmark(group="theorem2")
def test_proposition2_lower_bound(benchmark, results_dir):
    rows = benchmark.pedantic(measure_prop2_family, rounds=1, iterations=1)
    emit(
        "Proposition 2: one-shot readers between writes push DA past 1.5 "
        "(c_c=0.01, c_d=0.02)",
        format_table(
            ["distinct readers/round", "DA ratio", "Thm 2 bound"], rows
        ),
        results_dir,
        "proposition2_family.txt",
    )
    ratios = [ratio for _, ratio, _ in rows]
    # The family crosses the paper's 1.5 lower bound ...
    assert max(ratios) > 1.5
    # ... grows with the reader count toward the upper bound ...
    assert ratios == sorted(ratios)
    # ... and never violates Theorem 2.
    assert all(ratio <= bound + 1e-9 for _, ratio, bound in rows)
