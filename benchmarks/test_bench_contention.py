"""Experiment contention — response time on a shared bus (paper §1.1).

*"In an ethernet environment, a higher communication cost implies a
higher load on the network, which, in turn, implies a higher
probability of contention on the communication bus, and a higher
response time."*  The cost model folds this into c_c/c_d; the
shared-bus simulator measures it directly: SA's refetch-every-read
traffic versus DA's save-once traffic, as the fraction of foreign
readers grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.distsim.bus import SharedBusNetwork
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.sa_protocol import StaticAllocationProtocol
from repro.distsim.simulator import Simulator
from repro.workloads.hotspot import ReaderWriterWorkload

SCHEME = frozenset({1, 2})
WRITERS = [1]
READER_POOLS = {2: [5, 6], 4: [5, 6, 7, 8], 6: [5, 6, 7, 8, 9, 10]}


def run_on_bus(build_protocol, schedule, nodes):
    bus = SharedBusNetwork(Simulator(), control_latency=1.0, data_latency=3.0)
    bus.add_nodes(nodes)
    protocol = build_protocol(bus)
    stats = protocol.execute(schedule)
    return stats, bus


def measure_contention():
    rows = []
    for reader_count, readers in sorted(READER_POOLS.items()):
        workload = ReaderWriterWorkload(
            readers, WRITERS, length=120, write_fraction=0.1
        )
        schedule = workload.generate(seed=17)
        nodes = set(readers) | set(WRITERS) | SCHEME
        sa_stats, sa_bus = run_on_bus(
            lambda bus: StaticAllocationProtocol(bus, SCHEME), schedule, nodes
        )
        da_stats, da_bus = run_on_bus(
            lambda bus: DynamicAllocationProtocol(bus, SCHEME, primary=2),
            schedule,
            nodes,
        )
        rows.append(
            (
                reader_count,
                sa_stats.mean_latency,
                da_stats.mean_latency,
                sa_bus.stats.data_messages,
                da_bus.stats.data_messages,
            )
        )
    return rows


@pytest.mark.benchmark(group="contention")
def test_bus_contention_response_time(benchmark, results_dir):
    rows = benchmark.pedantic(measure_contention, rounds=1, iterations=1)
    emit(
        "Shared-bus contention: mean response time, read-heavy workload "
        "(write fraction 0.1)",
        format_table(
            ["foreign readers", "SA mean latency", "DA mean latency",
             "SA data msgs", "DA data msgs"],
            rows,
        ),
        results_dir,
        "contention.txt",
    )
    for reader_count, sa_latency, da_latency, sa_data, da_data in rows:
        # DA's saved copies keep repeat reads off the bus entirely:
        # fewer data messages and faster requests at every pool size.
        assert da_data < sa_data
        assert da_latency < sa_latency
