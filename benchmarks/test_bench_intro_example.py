"""Experiment ex1.3 — the paper's §1.3 motivating example.

The schedule ``r1 r1 r2 w2 r2 r2 r2``: the paper argues that moving the
allocation scheme after ``w2`` (dynamic allocation) beats keeping it
fixed (static allocation).  The paper's illustration uses a single copy
({1} -> {2}); our model enforces the paper's own later assumption
``t >= 2``, so we run the same schedule with a two-copy scheme
``{1, 3}`` — the qualitative conclusion is unchanged: the requests
concentrate at processor 2 after the write, and the dynamic scheme
follows them.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.offline_optimal import optimal_cost
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import stationary
from repro.model.schedule import Schedule

SCHEDULE = Schedule.parse("r1 r1 r2 w2 r2 r2 r2")
SCHEME = frozenset({1, 3})
PRICE_POINTS = [(0.1, 0.3), (0.2, 1.5), (0.5, 2.0)]


def measure_intro_example():
    rows = []
    for c_c, c_d in PRICE_POINTS:
        model = stationary(c_c, c_d)
        sa_cost = model.schedule_cost(StaticAllocation(SCHEME).run(SCHEDULE))
        da_cost = model.schedule_cost(
            DynamicAllocation(SCHEME, primary=1).run(SCHEDULE)
        )
        opt = optimal_cost(SCHEDULE, SCHEME, model)
        rows.append((c_c, c_d, sa_cost, da_cost, opt))
    return rows


@pytest.mark.benchmark(group="intro")
def test_intro_example_dynamic_beats_static(benchmark, results_dir):
    rows = benchmark.pedantic(measure_intro_example, rounds=1, iterations=1)
    emit(
        "Paper §1.3 example 'r1 r1 r2 w2 r2 r2 r2' (t=2, scheme {1,3})",
        format_table(
            ["c_c", "c_d", "SA cost", "DA cost", "OPT cost"], rows
        ),
        results_dir,
        "intro_example.txt",
    )
    for c_c, c_d, sa_cost, da_cost, opt in rows:
        # The paper's claim: dynamic allocation costs less here.
        assert da_cost < sa_cost, (c_c, c_d)
        assert opt <= da_cost + 1e-9
