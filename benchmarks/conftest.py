"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper's evaluation
(Figures 1-2, Theorems 1-4, Propositions 1-3, plus the ablations
DESIGN.md calls out), printing the rows/series it reports and saving
machine-readable copies under ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(title: str, body: str, results_dir: Path, filename: str) -> None:
    """Print an artifact and persist it under benchmarks/results/."""
    banner = "=" * len(title)
    text = f"\n{title}\n{banner}\n{body}\n"
    print(text)
    (results_dir / filename).write_text(text.lstrip("\n"), encoding="utf-8")
