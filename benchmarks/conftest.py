"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper's evaluation
(Figures 1-2, Theorems 1-4, Propositions 1-3, plus the ablations
DESIGN.md calls out), printing the rows/series it reports and saving
machine-readable copies under ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only

Grid-shaped benchmarks (the region maps, the ablation sweeps) submit
their points through the parallel experiment engine.  Environment
knobs — measured numbers are identical at any setting, only wall-clock
changes:

``REPRO_BENCH_WORKERS``    worker processes (default 1 = serial;
                           ``auto`` = one per CPU core)
``REPRO_BENCH_CACHE``      directory for the on-disk result cache
                           (re-runs skip completed points)
``REPRO_BENCH_PROGRESS``   set non-empty for tasks-done/rate/ETA lines
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.engine import ExperimentEngine, ResultCache
from repro.engine.runner import default_worker_count

RESULTS_DIR = Path(__file__).parent / "results"


def bench_workers() -> int:
    """Worker count from ``REPRO_BENCH_WORKERS`` (default serial)."""
    raw = os.environ.get("REPRO_BENCH_WORKERS", "1")
    if raw.strip().lower() == "auto":
        return default_worker_count()
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def bench_engine(label: str = "bench") -> ExperimentEngine:
    """The engine grid benchmarks submit through (env-configured)."""
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    return ExperimentEngine(
        max_workers=bench_workers(),
        cache=ResultCache(cache_dir) if cache_dir else None,
        progress=bool(os.environ.get("REPRO_BENCH_PROGRESS")),
        progress_label=label,
    )


@pytest.fixture
def engine(request) -> ExperimentEngine:
    return bench_engine(label=request.node.name)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(title: str, body: str, results_dir: Path, filename: str) -> None:
    """Print an artifact and persist it under benchmarks/results/."""
    banner = "=" * len(title)
    text = f"\n{title}\n{banner}\n{body}\n"
    print(text)
    (results_dir / filename).write_text(text.lstrip("\n"), encoding="utf-8")
