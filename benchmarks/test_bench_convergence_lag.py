"""Experiment convlag — how fast each policy follows a pattern shift.

Paper §5.1's convergence narrative: *"a convergent algorithm will move
to the optimal allocation scheme for the global read-write pattern
during the first two hours, then it will converge to the optimal
allocation scheme for the ... next four hours"*.  We measure the lag
directly: activity shifts from processor 5 to processor 6, and we count
how many post-shift requests each policy needs before the new hot
reader holds a replica.

* DA adapts in **one** request (the first read saves);
* the convergent baseline adapts after its window refills *and* a write
  gives it a chance to move the scheme;
* SA never adapts — and the ski-rental baseline sits between DA and
  CONV, tracking its rent limit.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.core.cddr import SkiRentalReplication
from repro.core.convergent import ConvergentAllocation
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import stationary
from repro.workloads.regular import Phase, PhasedWorkload

MODEL = stationary(0.2, 1.5)
SCHEME = frozenset({1, 2})
PHASE_LENGTH = 60


def shifting_workload(seed=0):
    first = Phase({5: 5.0, 7: 0.5}, {1: 1.0}, PHASE_LENGTH)
    second = Phase({6: 5.0, 7: 0.5}, {1: 1.0}, PHASE_LENGTH)
    return PhasedWorkload([first, second]).generate(seed)


def adaptation_lag(algorithm, schedule, hot_reader=6):
    """Requests after the shift until ``hot_reader`` holds a replica
    (None if it never does)."""
    algorithm.reset()
    for position, request in enumerate(schedule):
        algorithm.online_step(request)
        if position >= PHASE_LENGTH and hot_reader in algorithm.current_scheme:
            return position - PHASE_LENGTH + 1
    return None


def measure_lags():
    schedule = shifting_workload(seed=3)
    algorithms = {
        "DA": DynamicAllocation(SCHEME, primary=2),
        "CDDR (rent 2)": SkiRentalReplication(SCHEME, rent_limit=2, primary=2),
        "CONV (window 24)": ConvergentAllocation(SCHEME, MODEL, window=24),
        "SA": StaticAllocation(SCHEME),
    }
    rows = []
    for name, algorithm in algorithms.items():
        lag = adaptation_lag(algorithm, schedule)
        cost = MODEL.schedule_cost(algorithm.run(schedule))
        rows.append((name, "never" if lag is None else lag, cost))
    return rows


@pytest.mark.benchmark(group="convergence-lag")
def test_adaptation_lag_after_phase_shift(benchmark, results_dir):
    rows = benchmark.pedantic(measure_lags, rounds=1, iterations=1)
    emit(
        "Adaptation lag: requests after the phase shift until the new "
        "hot reader holds a replica",
        format_table(["policy", "lag (requests)", "total cost"], rows),
        results_dir,
        "convergence_lag.txt",
    )
    lags = {name: lag for name, lag, _ in rows}
    assert lags["SA"] == "never"
    assert lags["DA"] != "never"
    assert lags["CDDR (rent 2)"] != "never"
    assert lags["CONV (window 24)"] != "never"
    # DA reacts on the hot reader's first post-shift read; CDDR waits
    # one extra rented read; CONV needs window evidence plus a write.
    assert lags["DA"] <= lags["CDDR (rent 2)"] <= lags["CONV (window 24)"]
