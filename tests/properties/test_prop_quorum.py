"""Property-based tests for quorum consensus.

For arbitrary schedules and arbitrary intersecting quorum
configurations, every read must observe the latest version (the driver
raises on staleness — surviving execution is the assertion), and the
latest version must reside at a full write quorum after every write.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distsim.protocols.quorum import QuorumConsensusProtocol
from repro.distsim.runner import build_network
from tests.properties.strategies import schedules

NODES = frozenset(range(1, 7))  # 6 nodes


@st.composite
def quorum_configs(draw):
    """Intersecting (r, w) pairs over six one-vote nodes."""
    read_quorum = draw(st.integers(min_value=1, max_value=6))
    write_quorum = draw(
        st.integers(min_value=max(1, 7 - read_quorum), max_value=6)
    )
    return read_quorum, write_quorum


@given(schedule=schedules(), config=quorum_configs())
@settings(max_examples=40, deadline=None)
def test_reads_always_fresh(schedule, config):
    read_quorum, write_quorum = config
    network = build_network(NODES)
    protocol = QuorumConsensusProtocol(
        network, {1, 2}, read_quorum=read_quorum, write_quorum=write_quorum
    )
    protocol.execute(schedule)  # raises on any stale read


@given(schedule=schedules(), config=quorum_configs())
@settings(max_examples=30, deadline=None)
def test_latest_version_at_a_write_quorum(schedule, config):
    read_quorum, write_quorum = config
    network = build_network(NODES)
    protocol = QuorumConsensusProtocol(
        network, {1, 2}, read_quorum=read_quorum, write_quorum=write_quorum
    )
    protocol.execute(schedule)
    latest = protocol.latest_version.number
    holders = sum(
        1
        for node_id in NODES
        if network.node(node_id).database.peek_version() is not None
        and network.node(node_id).database.peek_version().number == latest
    )
    assert holders >= min(write_quorum, len(NODES))


@given(schedule=schedules(), votes=st.lists(
    st.integers(min_value=0, max_value=3), min_size=6, max_size=6,
).filter(lambda weights: sum(weights) >= 2))
@settings(max_examples=30, deadline=None)
def test_weighted_majorities_stay_fresh(schedule, votes):
    network = build_network(NODES)
    vote_map = dict(zip(sorted(NODES), votes))
    protocol = QuorumConsensusProtocol(network, {1, 2}, votes=vote_map)
    protocol.execute(schedule)  # majority quorums over weights: no staleness
