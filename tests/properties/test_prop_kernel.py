"""Property tests: the kernel is *exactly* the stepped path, faster.

The vectorized kernel's contract is bit-identical equality — not
approximate agreement — with stepping :class:`StaticAllocation` /
:class:`DynamicAllocation` through :class:`OnlineDOM` and pricing the
resulting allocation schedule.  Every assertion below uses ``==`` on
floats on purpose: any associativity slip, any formula divergence in
a single request, fails loudly.

Covered: both cost models (SC and MC), thresholds t in {2, 3, 4},
non-contiguous initial schemes, explicit primaries, batches of mixed
lengths (batch evaluation == one-trace evaluation), and DA's final
allocation scheme.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.model.schedule import Schedule

from tests.properties.strategies import (
    mobile_models,
    schedules,
    stationary_models,
)

MODELS = st.one_of(stationary_models(), mobile_models())

#: Initial schemes of size t in {2, 3, 4} over ids 1..6 — the same id
#: range the schedule strategy issues from, so members both do and do
#: not appear in traces.  Non-contiguous subsets arise naturally.
SCHEMES = st.integers(min_value=2, max_value=4).flatmap(
    lambda t: st.sets(
        st.integers(min_value=1, max_value=6), min_size=t, max_size=t
    ).map(frozenset)
)


@st.composite
def scheme_and_primary(draw):
    scheme = draw(SCHEMES)
    primary = draw(st.sampled_from(sorted(scheme)))
    return scheme, primary


def stepped_request_costs(algorithm, schedule, model):
    allocation = algorithm.run(schedule)
    return model.request_costs(allocation), model.schedule_cost(allocation)


@settings(max_examples=150)
@given(schedule=schedules(), scheme=SCHEMES, model=MODELS)
def test_sa_costs_bit_identical(schedule, scheme, model):
    batch = kernel.compile_schedule(schedule, scheme)
    costs = kernel.sa_request_costs(batch, scheme, model)
    per_request, total = stepped_request_costs(
        StaticAllocation(scheme), schedule, model
    )
    assert costs[0].tolist() == per_request
    assert kernel.schedule_totals(costs, batch.lengths) == [total]


@settings(max_examples=150)
@given(schedule=schedules(), pair=scheme_and_primary(), model=MODELS)
def test_da_costs_bit_identical(schedule, pair, model):
    scheme, primary = pair
    batch = kernel.compile_schedule(schedule, scheme)
    costs = kernel.da_request_costs(batch, scheme, model, primary=primary)
    per_request, total = stepped_request_costs(
        DynamicAllocation(scheme, primary=primary), schedule, model
    )
    assert costs[0].tolist() == per_request
    assert kernel.schedule_totals(costs, batch.lengths) == [total]


@settings(max_examples=100)
@given(schedule=schedules(), pair=scheme_and_primary())
def test_da_final_scheme_parity(schedule, pair):
    scheme, primary = pair
    batch = kernel.compile_schedule(schedule, scheme)
    algorithm = DynamicAllocation(scheme, primary=primary)
    algorithm.run(schedule)
    assert kernel.da_final_schemes(batch, scheme, primary=primary) == [
        algorithm.current_scheme
    ]


@settings(max_examples=60)
@given(
    batch_schedules=st.lists(schedules(), min_size=1, max_size=5),
    pair=scheme_and_primary(),
    model=MODELS,
)
def test_batch_equals_per_trace(batch_schedules, pair, model):
    # One compiled batch of mixed-length traces gives exactly the
    # per-trace answers — padding never leaks into costs.
    scheme, primary = pair
    for make in (
        lambda: StaticAllocation(scheme),
        lambda: DynamicAllocation(scheme, primary=primary),
    ):
        batched = kernel.batch_costs(make(), batch_schedules, model)
        single = [
            kernel.schedule_cost(make(), schedule, model)
            for schedule in batch_schedules
        ]
        stepped = [
            model.schedule_cost(make().run(schedule))
            for schedule in batch_schedules
        ]
        assert batched == single == stepped


@settings(max_examples=60)
@given(schedule=schedules(), pair=scheme_and_primary(), model=MODELS)
def test_dispatch_cost_of_is_stepped_cost(schedule, pair, model):
    from repro.core.competitive import cost_of

    scheme, primary = pair
    for make in (
        lambda: StaticAllocation(scheme),
        lambda: DynamicAllocation(scheme, primary=primary),
    ):
        assert cost_of(make(), schedule, model) == cost_of(
            make(), schedule, model, use_kernel=False
        )


@settings(max_examples=40)
@given(model=MODELS, pair=scheme_and_primary())
def test_empty_schedule_is_free(model, pair):
    scheme, primary = pair
    empty = Schedule()
    for make in (
        lambda: StaticAllocation(scheme),
        lambda: DynamicAllocation(scheme, primary=primary),
    ):
        assert kernel.schedule_cost(make(), empty, model) == 0.0
