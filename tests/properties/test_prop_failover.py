"""Stateful property test: the fault-tolerant DA driver under random
crash/recover/request interleavings.

Hypothesis drives a random sequence of operations — reads, writes,
crashes and recoveries — against the fault-tolerant driver and checks
the global safety properties after every step:

* no request ever returns a stale version (enforced inside
  ``execute_request``; surviving it is the assertion);
* the driver is in DA mode exactly when every scheme member is live
  (eventual mode correctness);
* whenever the driver is in DA mode, every core member holds a valid
  copy of the latest version.

A liveness floor keeps the machine honest: it never crashes below a
majority, mirroring quorum consensus's availability limit.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.distsim.failures import FailureInjector
from repro.distsim.protocols.missing_writes import FaultTolerantDAProtocol
from repro.distsim.runner import build_network
from repro.model.request import read, write

NODES = (1, 2, 3, 4, 5)
MAJORITY = len(NODES) // 2 + 1
PROCESSOR = st.sampled_from(NODES)


class FailoverMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.network = build_network(set(NODES))
        self.protocol = FaultTolerantDAProtocol(
            self.network, {1, 2}, primary=2
        )
        self.injector = FailureInjector(self.network, self.protocol)
        self.down: set[int] = set()

    # -- operations ---------------------------------------------------------

    @rule(processor=PROCESSOR)
    def do_read(self, processor):
        if processor in self.down:
            return  # a crashed processor issues nothing
        self.protocol.execute_request(read(processor))

    @rule(processor=PROCESSOR)
    def do_write(self, processor):
        if processor in self.down:
            return
        self.protocol.execute_request(write(processor))

    @precondition(lambda self: len(self.down) < len(NODES) - MAJORITY)
    @rule(processor=PROCESSOR)
    def do_crash(self, processor):
        if processor in self.down:
            return
        if self._live_holders() == {processor}:
            # The majority floor alone is not the protocol's fault
            # model: an outsider write lives on F ∪ {writer} only, and
            # crashing every holder loses the object no matter how many
            # other nodes survive.  The paper's adversary is bounded to
            # t-1 copy-holder failures; mirror that bound here.
            return
        self.injector.crash_now(processor)
        self.down.add(processor)

    @rule(processor=PROCESSOR)
    def do_recover(self, processor):
        if processor not in self.down:
            return
        self.injector.recover_now(processor)
        self.down.discard(processor)

    def _live_holders(self) -> set[int]:
        latest = self.protocol.latest_version.number
        return {
            node.node_id
            for node in self.network.live_nodes()
            if node.database.peek_version() is not None
            and node.database.peek_version().number == latest
        }

    # -- safety invariants ------------------------------------------------------

    @invariant()
    def mode_matches_liveness(self):
        scheme_members = self.protocol.core | {self.protocol.primary}
        members_live = all(
            self.network.node(member).alive for member in scheme_members
        )
        if self.protocol.mode == "da":
            assert members_live
        else:
            assert not members_live

    @invariant()
    def da_mode_core_holds_latest(self):
        if self.protocol.mode != "da":
            return
        latest = self.protocol.latest_version.number
        for member in self.protocol.core:
            node = self.network.node(member)
            assert node.holds_valid_copy
            assert node.database.peek_version().number == latest

    @invariant()
    def some_live_node_holds_latest(self):
        latest = self.protocol.latest_version.number
        holders = [
            node
            for node in self.network.live_nodes()
            if node.database.peek_version() is not None
            and node.database.peek_version().number == latest
        ]
        assert holders, "the latest version must never be lost"


FailoverMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestFailover = FailoverMachine.TestCase
