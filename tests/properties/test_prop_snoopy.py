"""Property-based tests for the snoopy caching protocol."""

from __future__ import annotations

from hypothesis import given, settings

from repro.distsim.bus import SharedBusNetwork
from repro.distsim.protocols.snoopy import SnoopyCachingProtocol
from repro.distsim.simulator import Simulator
from tests.properties.strategies import schedules

NODES = frozenset(range(1, 7))
SCHEME = frozenset({1, 2})


def make_protocol():
    bus = SharedBusNetwork(Simulator())
    bus.add_nodes(NODES)
    return bus, SnoopyCachingProtocol(bus, SCHEME)


@given(schedule=schedules())
@settings(max_examples=40, deadline=None)
def test_reads_always_fresh(schedule):
    _, protocol = make_protocol()
    protocol.execute(schedule)  # raises on any stale read


@given(schedule=schedules())
@settings(max_examples=30, deadline=None)
def test_availability_and_coherence_invariants(schedule):
    bus, protocol = make_protocol()
    protocol.execute(schedule)
    latest = protocol.latest_version.number
    holders = [
        node_id
        for node_id in NODES
        if bus.node(node_id).holds_valid_copy
    ]
    # Availability: never fewer than t valid copies at quiescence.
    assert len(holders) >= len(SCHEME)
    # Coherence: every valid copy is the latest version.
    for node_id in holders:
        assert bus.node(node_id).database.peek_version().number == latest


@given(schedule=schedules())
@settings(max_examples=30, deadline=None)
def test_writes_cost_one_invalidation_broadcast(schedule):
    bus, protocol = make_protocol()
    protocol.execute(schedule)
    # Control messages: at most one per read (a miss's bus request) and
    # at most one per write (the invalidation broadcast — zero when the
    # writer held the only valid copy).  Point-to-point DA has no such
    # bound: its invalidations multiply with the sharer count.
    assert bus.stats.control_messages <= (
        schedule.read_count + schedule.write_count
    )
