"""Property-based tests for the extension modules.

* Heterogeneous model with constant prices ≡ homogeneous model, on
  arbitrary executed requests and whole allocation schedules.
* Linearization invariance (§3.1's "almost verbatim" claim) on
  arbitrary schedules for SA, DA and the offline optimum.
* The multi-object directory composes: total cost equals the sum of
  standalone single-object runs, for arbitrary per-object schedules.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.heterogeneous_optimal import HeterogeneousOfflineOptimal
from repro.core.multi import ObjectDirectory, ObjectRequest, interleave
from repro.core.offline_optimal import OfflineOptimal
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import stationary
from repro.model.heterogeneous import homogeneous
from repro.model.partial_order import PartialSchedule
from tests.properties.strategies import feasible_prices, schedules

SCHEME = frozenset({1, 2})


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=40, deadline=None)
def test_heterogeneous_equals_homogeneous_for_constant_prices(
    schedule, prices
):
    c_c, c_d = prices
    hetero = homogeneous(1.0, c_c, c_d)
    homo = stationary(c_c, c_d)
    for algorithm in (
        StaticAllocation(SCHEME),
        DynamicAllocation(SCHEME, primary=2),
    ):
        allocation = algorithm.run(schedule)
        assert hetero.schedule_cost(allocation) == pytest.approx(
            homo.schedule_cost(allocation)
        )


@given(schedule=schedules(max_length=8), prices=feasible_prices())
@settings(max_examples=25, deadline=None)
def test_heterogeneous_optimum_equals_homogeneous_for_constant_prices(
    schedule, prices
):
    c_c, c_d = prices
    hetero_cost = HeterogeneousOfflineOptimal(
        homogeneous(1.0, c_c, c_d)
    ).optimal_cost(schedule, SCHEME)
    homo_cost = OfflineOptimal(stationary(c_c, c_d)).optimal_cost(
        schedule, SCHEME
    )
    assert hetero_cost == pytest.approx(homo_cost)


@given(schedule=schedules(), prices=feasible_prices(), seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_linearization_invariance_for_online_algorithms(
    schedule, prices, seed
):
    """§3.1: reordering concurrent reads never changes SA's or DA's cost."""
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    partial = PartialSchedule.from_schedule(schedule)
    linearization = partial.sample_linearization(seed)
    for make in (
        lambda: StaticAllocation(SCHEME),
        lambda: DynamicAllocation(SCHEME, primary=2),
    ):
        canonical_cost = model.schedule_cost(
            make().run(partial.canonical_linearization())
        )
        sampled_cost = model.schedule_cost(make().run(linearization))
        assert sampled_cost == pytest.approx(canonical_cost)


@given(schedule=schedules(max_length=8), prices=feasible_prices(), seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_linearization_invariance_for_the_optimum(schedule, prices, seed):
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    solver = OfflineOptimal(model)
    partial = PartialSchedule.from_schedule(schedule)
    canonical = solver.optimal_cost(
        partial.canonical_linearization(), SCHEME
    )
    sampled = solver.optimal_cost(partial.sample_linearization(seed), SCHEME)
    assert sampled == pytest.approx(canonical)


@given(
    first=schedules(max_length=8),
    second=schedules(max_length=8),
    prices=feasible_prices(),
)
@settings(max_examples=30, deadline=None)
def test_directory_composes_arbitrary_streams(first, second, prices):
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    directory = ObjectDirectory(
        lambda object_id: DynamicAllocation(SCHEME, primary=2)
    )
    directory.run(interleave({"a": list(first), "b": list(second)}))
    expected = sum(
        model.schedule_cost(
            DynamicAllocation(SCHEME, primary=2).run(schedule)
        )
        for schedule in (first, second)
    )
    assert directory.cost(model) == pytest.approx(expected)
