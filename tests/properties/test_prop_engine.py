"""Property: the parallel engine is invisible in the results.

For random cost models, workloads, worker counts and chunk sizes, a
sweep submitted through a multi-process :class:`ExperimentEngine` must
be *exactly* equal — row for row, float for float — to the serial
``sweep()`` it replaces.  Same for the region grid and for cached
re-runs.  Example counts stay small because every parallel example
pays a real process-pool startup.
"""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.regions import empirical_map
from repro.analysis.sweep import cost_sweep, sweep
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.engine import ExperimentEngine, ResultCache, derive_seed
from repro.workloads.adversarial import adversarial_suite
from repro.workloads.uniform import UniformWorkload
from tests.properties.strategies import stationary_models

SCHEME = frozenset({1, 2})

WORKERS = st.sampled_from([2, 3])
CHUNKS = st.sampled_from([1, 2, 5])


def _sweep_arguments(model, root_seed):
    """A small but non-trivial write-fraction sweep specification."""

    def schedules_for(value):
        generator = UniformWorkload(range(1, 5), 8, value)
        return generator.batch_independent(
            2, root_seed=derive_seed(root_seed, int(value * 100))
        )

    return dict(
        parameter_name="write_fraction",
        parameter_values=[0.0, 0.3, 0.6],
        factories_for=lambda value: {
            "SA": lambda: StaticAllocation(SCHEME),
            "DA": lambda: DynamicAllocation(SCHEME),
        },
        schedules_for=schedules_for,
        model_for=lambda value: model,
    )


@given(
    model=stationary_models(),
    root_seed=st.integers(min_value=0, max_value=2**31),
    workers=WORKERS,
    chunksize=CHUNKS,
)
@settings(max_examples=5, deadline=None)
def test_parallel_sweep_equals_serial(model, root_seed, workers, chunksize):
    arguments = _sweep_arguments(model, root_seed)
    serial = sweep(**arguments)
    parallel = sweep(
        **arguments,
        engine=ExperimentEngine(max_workers=workers, chunksize=chunksize),
    )
    assert parallel == serial  # dataclass equality: exact floats


@given(
    model=stationary_models(),
    root_seed=st.integers(min_value=0, max_value=2**31),
    workers=WORKERS,
    chunksize=CHUNKS,
)
@settings(max_examples=3, deadline=None)
def test_parallel_cost_sweep_equals_serial(
    model, root_seed, workers, chunksize
):
    arguments = _sweep_arguments(model, root_seed)
    serial = cost_sweep(**arguments)
    parallel = cost_sweep(
        **arguments,
        engine=ExperimentEngine(max_workers=workers, chunksize=chunksize),
    )
    assert parallel == serial


@given(
    model=stationary_models(),
    root_seed=st.integers(min_value=0, max_value=2**31),
    workers=WORKERS,
    chunksize=CHUNKS,
)
@settings(max_examples=3, deadline=None)
def test_cached_rerun_equals_fresh(model, root_seed, workers, chunksize):
    arguments = _sweep_arguments(model, root_seed)
    fresh = sweep(**arguments)
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        first = sweep(
            **arguments,
            engine=ExperimentEngine(
                max_workers=workers, chunksize=chunksize, cache=cache
            ),
        )
        replay_engine = ExperimentEngine(cache=cache)
        replay = sweep(**arguments, engine=replay_engine)
        assert first == fresh
        assert replay == fresh
        assert replay_engine.last_stats.cache_hits == 3
        assert replay_engine.last_stats.executed == 0


@given(workers=WORKERS, chunksize=CHUNKS)
@settings(max_examples=3, deadline=None)
def test_parallel_region_map_equals_serial(workers, chunksize):
    suite = adversarial_suite(SCHEME, [4, 5], rounds=2)
    serial = empirical_map(
        suite, SCHEME, c_d_max=1.0, c_c_max=1.0, steps=3
    )
    parallel = empirical_map(
        suite,
        SCHEME,
        c_d_max=1.0,
        c_c_max=1.0,
        steps=3,
        engine=ExperimentEngine(max_workers=workers, chunksize=chunksize),
    )
    assert parallel == serial
