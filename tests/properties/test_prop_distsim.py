"""Property-based tests: the simulator agrees with the model everywhere.

For arbitrary schedules, the discrete-event SA and DA protocols must
produce per-request (I/O, control, data) counts identical to the
analytic model's breakdowns — and per-node I/O counters must sum to the
global statistics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.sa_protocol import StaticAllocationProtocol
from repro.distsim.runner import build_network, compare_with_model, mismatches
from repro.model.cost_model import mobile, stationary
from tests.properties.strategies import schedules

SCHEME = frozenset({1, 2})
ALL_NODES = frozenset(range(1, 7))


@given(schedule=schedules())
@settings(max_examples=40, deadline=None)
def test_sa_protocol_matches_model_per_request(schedule):
    network = build_network(ALL_NODES)
    protocol = StaticAllocationProtocol(network, SCHEME)
    comparisons = compare_with_model(
        protocol, StaticAllocation(SCHEME), schedule
    )
    assert mismatches(comparisons) == []


@given(schedule=schedules())
@settings(max_examples=40, deadline=None)
def test_da_protocol_matches_model_per_request(schedule):
    network = build_network(ALL_NODES)
    protocol = DynamicAllocationProtocol(network, SCHEME, primary=2)
    comparisons = compare_with_model(
        protocol, DynamicAllocation(SCHEME, primary=2), schedule
    )
    assert mismatches(comparisons) == []


@given(schedule=schedules())
@settings(max_examples=30, deadline=None)
def test_per_node_io_sums_to_global_stats(schedule):
    network = build_network(ALL_NODES)
    protocol = DynamicAllocationProtocol(network, SCHEME, primary=2)
    protocol.execute(schedule)
    node_reads = sum(
        network.node(node_id).database.io_reads for node_id in ALL_NODES
    )
    node_writes = sum(
        network.node(node_id).database.io_writes for node_id in ALL_NODES
    )
    assert node_reads == network.stats.io_reads
    assert node_writes == network.stats.io_writes


@given(schedule=schedules())
@settings(max_examples=30, deadline=None)
def test_da_protocol_scheme_tracks_model_scheme(schedule):
    network = build_network(ALL_NODES)
    protocol = DynamicAllocationProtocol(network, SCHEME, primary=2)
    algorithm = DynamicAllocation(SCHEME, primary=2)
    algorithm.reset()
    for request in schedule:
        protocol.execute_request(request)
        algorithm.online_step(request)
        assert protocol.current_scheme() == algorithm.current_scheme
        # The nodes holding valid copies are exactly the scheme.
        holders = {
            node_id
            for node_id in ALL_NODES
            if network.node(node_id).holds_valid_copy
        }
        assert holders == algorithm.current_scheme


@pytest.mark.parametrize("t", [2, 3, 4])
@given(schedule=schedules())
@settings(max_examples=25, deadline=None)
def test_da_final_scheme_matches_model_for_every_t(t, schedule):
    """The protocol's final allocation scheme equals the stepped core
    algorithm's for any window size t, and the agreement prices out
    identically under both the stationary (SC) and mobile (MC) models."""
    scheme = frozenset(range(1, t + 1))
    network = build_network(ALL_NODES)
    protocol = DynamicAllocationProtocol(network, scheme, primary=t)
    algorithm = DynamicAllocation(scheme, primary=t)
    protocol.execute(schedule)
    result = algorithm.run(schedule)

    assert protocol.current_scheme() == algorithm.current_scheme

    live = network.stats.breakdown()
    stepped = result.total_breakdown()
    for model in (stationary(0.25, 1.0), mobile(0.5, 2.0)):
        assert model.price(live) == pytest.approx(model.price(stepped))
