"""Property-based tests: the offline optimum and the theorem bounds.

The heart of the reproduction: for *arbitrary* small schedules and
*arbitrary* feasible prices, the measured cost ratios of SA and DA
against the exact DP optimum must respect every bound the paper proves.
A single counterexample here would falsify the reproduction (or the
paper).
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.analysis.bounds import da_competitive_factor, sa_competitive_factor
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.offline_bounds import optimal_cost_lower_bound
from repro.core.offline_optimal import OfflineOptimal
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import mobile, stationary
from tests.properties.strategies import feasible_prices, schedules

SCHEME = frozenset({1, 2})
TOLERANCE = 1e-9


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=60, deadline=None)
def test_opt_is_a_true_lower_bound(schedule, prices):
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    solver = OfflineOptimal(model)
    opt = solver.optimal_cost(schedule, SCHEME)
    for algorithm in (
        StaticAllocation(SCHEME),
        DynamicAllocation(SCHEME, primary=2),
    ):
        allocation = algorithm.run(schedule)
        assert model.schedule_cost(allocation) >= opt - TOLERANCE


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=60, deadline=None)
def test_opt_witness_is_valid_and_priced_correctly(schedule, prices):
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    result = OfflineOptimal(model).solve(schedule, SCHEME)
    result.allocation.check_legal()
    result.allocation.check_t_available(2)
    assert result.allocation.corresponds_to(schedule)
    assert abs(model.schedule_cost(result.allocation) - result.cost) < 1e-6


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=60, deadline=None)
def test_linear_lower_bound_never_exceeds_opt(schedule, prices):
    c_c, c_d = prices
    for model in (stationary(c_c, c_d), mobile(c_c, c_d)):
        bound = optimal_cost_lower_bound(schedule, SCHEME, model)
        opt = OfflineOptimal(model).optimal_cost(schedule, SCHEME)
        assert bound <= opt + TOLERANCE


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=60, deadline=None)
def test_theorem_1_sa_bound_on_random_instances(schedule, prices):
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    opt = OfflineOptimal(model).optimal_cost(schedule, SCHEME)
    sa_cost = model.schedule_cost(StaticAllocation(SCHEME).run(schedule))
    assert sa_cost <= sa_competitive_factor(model) * opt + TOLERANCE


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=60, deadline=None)
def test_theorems_2_3_da_bound_on_random_instances(schedule, prices):
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    opt = OfflineOptimal(model).optimal_cost(schedule, SCHEME)
    da_cost = model.schedule_cost(
        DynamicAllocation(SCHEME, primary=2).run(schedule)
    )
    assert da_cost <= da_competitive_factor(model) * opt + TOLERANCE


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=60, deadline=None)
def test_theorem_4_da_bound_in_mobile_model(schedule, prices):
    c_c, c_d = prices
    model = mobile(c_c, c_d)
    opt = OfflineOptimal(model).optimal_cost(schedule, SCHEME)
    da_cost = model.schedule_cost(
        DynamicAllocation(SCHEME, primary=2).run(schedule)
    )
    assert da_cost <= da_competitive_factor(model) * opt + TOLERANCE
