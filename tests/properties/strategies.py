"""Hypothesis strategies shared by the property tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.model.cost_model import mobile, stationary
from repro.model.request import read, write
from repro.model.schedule import Schedule

#: Processors 1..6 — small enough for the exact DP, large enough for
#: joins, evictions and multi-reader segments.
PROCESSORS = st.integers(min_value=1, max_value=6)


@st.composite
def requests(draw):
    processor = draw(PROCESSORS)
    if draw(st.booleans()):
        return read(processor)
    return write(processor)


@st.composite
def schedules(draw, max_length: int = 12):
    items = draw(st.lists(requests(), min_size=1, max_size=max_length))
    return Schedule(tuple(items))


#: Feasible (c_c <= c_d) price pairs on a coarse lattice: exact floats
#: keep cost comparisons free of spurious rounding noise.
PRICE = st.integers(min_value=0, max_value=8).map(lambda n: n / 4.0)


@st.composite
def feasible_prices(draw):
    c_c = draw(PRICE)
    c_d = draw(PRICE.filter(lambda value: value >= c_c))
    return c_c, c_d


@st.composite
def stationary_models(draw):
    c_c, c_d = draw(feasible_prices())
    return stationary(c_c, c_d)


@st.composite
def mobile_models(draw):
    c_c, c_d = draw(feasible_prices())
    return mobile(c_c, c_d)
