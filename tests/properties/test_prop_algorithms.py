"""Property-based tests: algorithm invariants on arbitrary schedules.

Hypothesis generates arbitrary small schedules over six processors and
checks, for every algorithm:

* the produced allocation schedule is legal and ``t``-available and
  corresponds to the input (the definition of a DOM algorithm, §3.4);
* determinism: re-running yields the identical allocation schedule.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.caching import WriteInvalidationCaching
from repro.core.cddr import SkiRentalReplication
from repro.core.convergent import ConvergentAllocation
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import stationary
from tests.properties.strategies import schedules

SCHEME = frozenset({1, 2})


def all_algorithms():
    model = stationary(0.2, 1.5)
    return [
        StaticAllocation(SCHEME),
        DynamicAllocation(SCHEME, primary=2),
        SkiRentalReplication(SCHEME, rent_limit=2, primary=2),
        WriteInvalidationCaching(SCHEME),
        ConvergentAllocation(SCHEME, model, window=8),
    ]


@given(schedule=schedules())
@settings(max_examples=60, deadline=None)
def test_every_algorithm_produces_valid_output(schedule):
    for algorithm in all_algorithms():
        allocation = algorithm.run(schedule)
        allocation.check_legal()
        allocation.check_t_available(2)
        assert allocation.corresponds_to(schedule)


@given(schedule=schedules())
@settings(max_examples=40, deadline=None)
def test_algorithms_are_deterministic(schedule):
    for algorithm in all_algorithms():
        first = algorithm.run(schedule)
        second = algorithm.run(schedule)
        assert first.steps == second.steps


@given(schedule=schedules())
@settings(max_examples=40, deadline=None)
def test_sa_scheme_is_constant(schedule):
    algorithm = StaticAllocation(SCHEME)
    allocation = algorithm.run(schedule)
    for scheme, _ in allocation.schemes():
        assert scheme == SCHEME


@given(schedule=schedules())
@settings(max_examples=40, deadline=None)
def test_da_core_is_always_replicated(schedule):
    algorithm = DynamicAllocation(SCHEME, primary=2)
    allocation = algorithm.run(schedule)
    for scheme, _ in allocation.schemes():
        assert algorithm.core <= scheme
    assert algorithm.core <= allocation.final_scheme


@given(schedule=schedules())
@settings(max_examples=40, deadline=None)
def test_da_join_lists_record_exactly_the_saving_readers(schedule):
    """The model-level join-list invariant: at every point, the union
    of the join-lists is exactly the set of saving-readers since the
    last write (the processors a future write must invalidate beyond
    the execution-set turnover)."""
    algorithm = DynamicAllocation(SCHEME, primary=2)
    algorithm.reset()
    readers_since_write: set[int] = set()
    for request in schedule:
        executed = algorithm.online_step(request)
        if executed.is_write:
            readers_since_write = set()
        elif executed.is_saving_read:
            readers_since_write.add(executed.processor)
        recorded = set()
        for member in algorithm.core:
            recorded |= set(algorithm.join_list(member))
        assert recorded == readers_since_write
        # Recorded readers really are scheme members (they saved).
        assert recorded <= algorithm.current_scheme
