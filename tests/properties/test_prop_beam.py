"""Property-based tests for the beam OPT bound and the OPT sandwich."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.beam_optimal import BeamOptimal, optimal_sandwich
from repro.core.offline_optimal import OfflineOptimal
from repro.model.cost_model import stationary
from tests.properties.strategies import feasible_prices, schedules

SCHEME = frozenset({1, 2})
TOLERANCE = 1e-9


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=40, deadline=None)
def test_beam_upper_bounds_exact_opt(schedule, prices):
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    exact = OfflineOptimal(model).optimal_cost(schedule, SCHEME)
    beam = BeamOptimal(model).solve(schedule, SCHEME)
    assert beam.cost >= exact - TOLERANCE


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=40, deadline=None)
def test_sandwich_brackets_exact_opt(schedule, prices):
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    sandwich = optimal_sandwich(schedule, SCHEME, model)
    exact = OfflineOptimal(model).optimal_cost(schedule, SCHEME)
    assert sandwich.lower - TOLERANCE <= exact <= sandwich.upper + TOLERANCE


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=30, deadline=None)
def test_beam_witness_is_always_valid(schedule, prices):
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    result = BeamOptimal(model).solve(schedule, SCHEME)
    result.allocation.check_legal()
    result.allocation.check_t_available(2)
    assert result.allocation.corresponds_to(schedule)
    assert abs(model.schedule_cost(result.allocation) - result.cost) < 1e-6


@given(schedule=schedules(), prices=feasible_prices())
@settings(max_examples=30, deadline=None)
def test_every_beam_width_is_sound(schedule, prices):
    """Any beam width yields a legal strategy costing >= exact OPT.

    (Beam widths are deliberately not compared with each other:
    beam-search pruning is not monotone in the width in general.)
    """
    c_c, c_d = prices
    model = stationary(c_c, c_d)
    exact = OfflineOptimal(model).optimal_cost(schedule, SCHEME)
    for width in (1, 4, 128):
        cost = BeamOptimal(model, beam_width=width).solve(schedule, SCHEME).cost
        assert cost >= exact - TOLERANCE
