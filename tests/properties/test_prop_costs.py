"""Property-based tests: cost-model invariants.

Randomized checks of the §3.2/§3.3 formulas' structural properties —
non-negativity, the saving-read surcharge, the SC/MC relationship, and
the scaling invariance that justifies the paper's ``c_io = 1``
normalization.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import CostModel, mobile, stationary
from repro.model.costs import next_scheme, request_breakdown
from repro.model.request import ExecutedRequest, read, write
from tests.properties.strategies import (
    PROCESSORS,
    feasible_prices,
    schedules,
)
from hypothesis import strategies as st


@st.composite
def executed_requests(draw):
    processor = draw(PROCESSORS)
    execution_set = draw(
        st.frozensets(PROCESSORS, min_size=1, max_size=4)
    )
    if draw(st.booleans()):
        saving = draw(st.booleans())
        return ExecutedRequest(read(processor), execution_set, saving=saving)
    return ExecutedRequest(write(processor), execution_set)


@st.composite
def scheme_sets(draw):
    return draw(st.frozensets(PROCESSORS, min_size=1, max_size=6))


@given(executed=executed_requests(), scheme=scheme_sets())
@settings(max_examples=120, deadline=None)
def test_breakdown_counts_are_non_negative(executed, scheme):
    breakdown = request_breakdown(executed, scheme)
    assert breakdown.io_ops >= 0
    assert breakdown.control_messages >= 0
    assert breakdown.data_messages >= 0


@given(executed=executed_requests(), scheme=scheme_sets(), prices=feasible_prices())
@settings(max_examples=120, deadline=None)
def test_cost_is_non_negative_under_any_feasible_prices(
    executed, scheme, prices
):
    c_c, c_d = prices
    for model in (stationary(c_c, c_d), mobile(c_c, c_d)):
        assert model.request_cost(executed, scheme) >= 0.0


@given(executed=executed_requests(), scheme=scheme_sets())
@settings(max_examples=80, deadline=None)
def test_mobile_cost_is_stationary_cost_minus_io(executed, scheme):
    """MC is SC with the I/O term removed (§3.3)."""
    c_c, c_d = 0.25, 1.25
    sc = stationary(c_c, c_d)
    mc = mobile(c_c, c_d)
    breakdown = request_breakdown(executed, scheme)
    assert mc.price(breakdown) == sc.price(breakdown) - breakdown.io_ops


@given(schedule=schedules(), prices=feasible_prices(), scale=st.sampled_from([0.5, 2.0, 4.0]))
@settings(max_examples=50, deadline=None)
def test_cost_scales_linearly_with_unit_prices(schedule, prices, scale):
    """Scaling every price by the same factor scales every schedule
    cost by that factor — why normalizing c_io to 1 loses nothing."""
    c_c, c_d = prices
    base = CostModel(1.0, c_c, c_d)
    scaled = CostModel(scale, c_c * scale, c_d * scale)
    allocation = StaticAllocation({1, 2}).run(schedule)
    assert scaled.schedule_cost(allocation) == base.schedule_cost(
        allocation
    ) * scale


@given(executed=executed_requests(), scheme=scheme_sets())
@settings(max_examples=80, deadline=None)
def test_write_cost_never_below_execution_set_size_times_io(executed, scheme):
    """Every write outputs at |X| processors: io_ops == |X|."""
    if executed.is_write:
        breakdown = request_breakdown(executed, scheme)
        assert breakdown.io_ops == len(executed.execution_set)


@given(executed=executed_requests(), scheme=scheme_sets())
@settings(max_examples=80, deadline=None)
def test_scheme_evolution_is_lawful(executed, scheme):
    after = next_scheme(executed, scheme)
    if executed.is_write:
        assert after == executed.execution_set
    elif executed.saving:
        assert after == scheme | {executed.processor}
    else:
        assert after == scheme
