"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.model import Schedule, mobile, stationary


@pytest.fixture
def sc_model():
    """A representative stationary cost model (c_io=1)."""
    return stationary(c_c=0.2, c_d=1.5)


@pytest.fixture
def cheap_sc_model():
    """A stationary model in SA's superiority region (c_c + c_d < 0.5)."""
    return stationary(c_c=0.1, c_d=0.2)


@pytest.fixture
def mc_model():
    """A representative mobile cost model (c_io=0)."""
    return mobile(c_c=0.5, c_d=2.0)


@pytest.fixture
def paper_schedule():
    """psi_0 = w2 r4 w3 r1 r2, the running example of paper §3.1."""
    return Schedule.parse("w2 r4 w3 r1 r2")


@pytest.fixture
def intro_schedule():
    """r1 r1 r2 w2 r2 r2 r2, the motivating example of paper §1.3."""
    return Schedule.parse("r1 r1 r2 w2 r2 r2 r2")


@pytest.fixture
def small_scheme():
    """A t=2 initial allocation scheme."""
    return frozenset({1, 2})
