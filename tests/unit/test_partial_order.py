"""Unit tests for partially ordered schedules (repro.model.partial_order).

Verifies the paper's §3.1 claim that the analysis "applies almost
verbatim even if reads between two consecutive writes are partially
ordered": SA's, DA's and OPT's costs are invariant under the choice of
linearization.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.offline_optimal import optimal_cost
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import stationary
from repro.model.partial_order import (
    PartialSchedule,
    ReadGroup,
    cost_is_linearization_invariant,
)
from repro.model.request import read, write
from repro.model.schedule import Schedule

MODEL = stationary(0.2, 1.5)
SCHEME = frozenset({1, 2})


class TestConstruction:
    def test_group_rejects_writes(self):
        with pytest.raises(ConfigurationError):
            ReadGroup((write(1),))

    def test_groups_writes_arity(self):
        with pytest.raises(ConfigurationError):
            PartialSchedule((ReadGroup(),), (write(1),))

    def test_from_schedule_segments_correctly(self):
        partial = PartialSchedule.from_schedule(
            Schedule.parse("r1 r2 w3 r4 w5")
        )
        assert len(partial.writes) == 2
        assert [len(group) for group in partial.groups] == [2, 1, 0]
        assert partial.request_count == 5

    def test_by_processor_preserves_program_order(self):
        group = ReadGroup((read(1), read(2), read(1)))
        sequences = group.by_processor()
        assert sequences[1] == [read(1), read(1)]
        assert sequences[2] == [read(2)]


class TestLinearizations:
    def test_canonical_roundtrip(self):
        schedule = Schedule.parse("r1 r2 w3 r4")
        partial = PartialSchedule.from_schedule(schedule)
        assert partial.canonical_linearization() == schedule

    def test_all_linearizations_enumerated(self):
        # Group {r1, r2} has two interleavings; the trailing group one.
        partial = PartialSchedule.from_schedule(Schedule.parse("r1 r2 w3 r4"))
        linearizations = list(partial.linearizations())
        assert len(linearizations) == 2
        assert Schedule.parse("r1 r2 w3 r4") in linearizations
        assert Schedule.parse("r2 r1 w3 r4") in linearizations

    def test_same_processor_reads_stay_ordered(self):
        partial = PartialSchedule.from_schedule(Schedule.parse("r1 r1 r2"))
        for linearization in partial.linearizations():
            positions = [
                index
                for index, request in enumerate(linearization)
                if request.processor == 1
            ]
            assert positions == sorted(positions)

    def test_limit_respected(self):
        schedule = Schedule.parse("r1 r2 r3 r4 r5")
        partial = PartialSchedule.from_schedule(schedule)
        assert len(list(partial.linearizations(limit=7))) == 7

    def test_sample_is_a_valid_linearization(self):
        schedule = Schedule.parse("r1 r2 r3 w4 r1 r5")
        partial = PartialSchedule.from_schedule(schedule)
        sample = partial.sample_linearization(seed=3)
        assert sorted(map(str, sample)) == sorted(map(str, schedule))
        # The write barrier separates the groups in every sample.
        write_index = [r.is_write for r in sample].index(True)
        assert {str(r) for r in sample[:write_index]} == {"r1", "r2", "r3"}


class TestInvarianceClaim:
    @pytest.mark.parametrize(
        "text",
        [
            "r5 r6 r5 w1 r6 r5",
            "r3 r4 w2 r3 r4 w4 r3",
            "r5 r5 r6 r6 r7",
        ],
    )
    def test_sa_and_da_costs_invariant(self, text):
        partial = PartialSchedule.from_schedule(Schedule.parse(text))
        assert cost_is_linearization_invariant(
            lambda: StaticAllocation(SCHEME), partial, MODEL
        )
        assert cost_is_linearization_invariant(
            lambda: DynamicAllocation(SCHEME, primary=2), partial, MODEL
        )

    def test_opt_cost_invariant_across_all_linearizations(self):
        partial = PartialSchedule.from_schedule(
            Schedule.parse("r5 r6 w1 r5 r6")
        )
        costs = {
            round(optimal_cost(linearization, SCHEME, MODEL), 9)
            for linearization in partial.linearizations()
        }
        assert len(costs) == 1
