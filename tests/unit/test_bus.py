"""Unit tests for the shared-bus contention network (repro.distsim.bus)."""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.distsim.bus import SharedBusNetwork
from repro.distsim.messages import DataTransfer, ReadRequest
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.sa_protocol import StaticAllocationProtocol
from repro.distsim.simulator import Simulator
from repro.exceptions import ProtocolError
from repro.model.cost_model import stationary
from repro.model.schedule import Schedule
from repro.storage.versions import ObjectVersion
from repro.workloads.uniform import UniformWorkload


class Recorder:
    def __init__(self):
        self.deliveries = []

    def on_message(self, node, message):
        self.deliveries.append((node.network.simulator.now, message))


def make_bus():
    bus = SharedBusNetwork(Simulator(), control_latency=1.0, data_latency=3.0)
    recorder = Recorder()
    for node in bus.add_nodes([1, 2, 3]):
        node.attach_handler(recorder)
    return bus, recorder


class TestSerialization:
    def test_single_message_has_no_queue_delay(self):
        bus, recorder = make_bus()
        bus.send(ReadRequest(1, 2))
        bus.simulator.run()
        assert bus.queue_delays == [0.0]
        assert recorder.deliveries[0][0] == 1.0

    def test_concurrent_messages_queue(self):
        bus, recorder = make_bus()
        bus.send(DataTransfer(1, 2, version=ObjectVersion(0, 1)))
        bus.send(DataTransfer(1, 3, version=ObjectVersion(0, 1)))
        bus.simulator.run()
        # Second transfer waits for the first: delivered at 3.0 and 6.0.
        times = [time for time, _ in recorder.deliveries]
        assert times == [3.0, 6.0]
        assert bus.queue_delays == [0.0, 3.0]

    def test_bus_frees_up_between_bursts(self):
        bus, recorder = make_bus()
        bus.send(ReadRequest(1, 2))
        bus.simulator.run()
        bus.send(ReadRequest(2, 3))
        bus.simulator.run()
        assert bus.queue_delays == [0.0, 0.0]

    def test_validation_still_applies(self):
        bus, _ = make_bus()
        with pytest.raises(ProtocolError):
            bus.send(ReadRequest(1, 1))

    def test_charging_unchanged(self):
        bus, _ = make_bus()
        bus.send(ReadRequest(1, 2))
        bus.send(DataTransfer(1, 3, version=ObjectVersion(0, 1)))
        bus.simulator.run()
        assert bus.stats.control_messages == 1
        assert bus.stats.data_messages == 1


class TestMetrics:
    def test_utilization(self):
        bus, _ = make_bus()
        bus.send(ReadRequest(1, 2))
        bus.send(ReadRequest(1, 3))
        bus.simulator.run()  # two control messages back-to-back: busy 2/2
        assert bus.utilization() == pytest.approx(1.0)

    def test_idle_bus_metrics(self):
        bus, _ = make_bus()
        assert bus.mean_queue_delay is None
        assert bus.max_queue_delay is None
        assert bus.utilization() == 0.0


class TestProtocolsOnTheBus:
    def test_da_costs_match_point_to_point(self):
        # Contention shifts time, never cost.
        model = stationary(0.2, 1.5)
        schedule = UniformWorkload(range(1, 6), 40, 0.3).generate(9)
        bus = SharedBusNetwork(Simulator())
        bus.add_nodes(range(1, 6))
        protocol = DynamicAllocationProtocol(bus, {1, 2}, primary=2)
        stats = protocol.execute(schedule)
        algorithm = DynamicAllocation({1, 2}, primary=2)
        assert stats.cost(model) == pytest.approx(
            model.schedule_cost(algorithm.run(schedule))
        )

    def test_chattier_protocol_sees_more_contention(self):
        # SA refetches on every foreign read; in steady state it pushes
        # more data messages through the bus than DA, so its requests
        # take longer on average.
        schedule = Schedule.parse("r5 r5 r5 r5 r5 r5 r5 r5")
        latencies = {}
        for name, build in (
            ("SA", lambda net: StaticAllocationProtocol(net, {1, 2})),
            ("DA", lambda net: DynamicAllocationProtocol(net, {1, 2}, primary=2)),
        ):
            bus = SharedBusNetwork(Simulator())
            bus.add_nodes([1, 2, 5])
            stats = build(bus).execute(schedule)
            latencies[name] = stats.mean_latency
        assert latencies["DA"] < latencies["SA"]
