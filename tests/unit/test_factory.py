"""Unit tests for the algorithm registry (repro.core.factory)."""

from __future__ import annotations

import pytest

from repro.core.caching import WriteInvalidationCaching
from repro.core.cddr import SkiRentalReplication
from repro.core.convergent import ConvergentAllocation
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.factory import ALGORITHM_NAMES, algorithm_factory, make_algorithm
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError


class TestMakeAlgorithm:
    def test_builds_each_registered_name(self, sc_model):
        expected = {
            "SA": StaticAllocation,
            "DA": DynamicAllocation,
            "CDDR": SkiRentalReplication,
            "CACHE": WriteInvalidationCaching,
            "CONV": ConvergentAllocation,
        }
        assert set(ALGORITHM_NAMES) == set(expected)
        for name, cls in expected.items():
            algorithm = make_algorithm(name, {1, 2}, cost_model=sc_model)
            assert isinstance(algorithm, cls)

    def test_name_is_case_insensitive(self):
        assert isinstance(make_algorithm("da", {1, 2}), DynamicAllocation)
        assert isinstance(make_algorithm(" Sa ", {1, 2}), StaticAllocation)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("PAXOS", {1, 2})

    def test_convergent_requires_cost_model(self):
        with pytest.raises(ConfigurationError):
            make_algorithm("CONV", {1, 2})

    def test_options_forwarded(self):
        da = make_algorithm("DA", {1, 2, 3}, primary=1)
        assert da.primary == 1
        cddr = make_algorithm("CDDR", {1, 2}, rent_limit=4)
        assert cddr.rent_limit == 4


class TestFactory:
    def test_factory_builds_fresh_instances(self):
        build = algorithm_factory("DA", {1, 2})
        first, second = build(), build()
        assert first is not second
        assert first.initial_scheme == second.initial_scheme
