"""Unit: fault plans, per-node metrics and their aggregation."""

from __future__ import annotations

import pytest

from repro.cluster.metrics import (
    NodeMetrics,
    aggregate,
    latency_histogram,
    percentile,
)
from repro.cluster.transport import FaultPlan
from repro.distsim.messages import DataTransfer, Invalidate, ReadRequest
from repro.exceptions import ClusterError
from repro.storage.versions import ObjectVersion


class TestFaultPlan:
    def test_defaults_do_nothing(self):
        plan = FaultPlan()
        assert plan.delay_for(1, 2) == 0.0
        assert not plan.should_drop(1, 2)

    def test_link_delay_overrides_default(self):
        plan = FaultPlan(default_delay=0.5, link_delays={(1, 2): 0.1})
        assert plan.delay_for(1, 2) == 0.1
        assert plan.delay_for(2, 1) == 0.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ClusterError):
            FaultPlan(default_delay=-1.0)
        with pytest.raises(ClusterError):
            FaultPlan(link_delays={(1, 2): -0.1})

    def test_drop_next_consumes_budget(self):
        plan = FaultPlan(drop_next={(1, 2): 2})
        assert plan.should_drop(1, 2)
        assert plan.should_drop(1, 2)
        assert not plan.should_drop(1, 2)  # budget spent
        assert not plan.should_drop(2, 1)  # other direction untouched

    def test_blocked_link_is_directional(self):
        plan = FaultPlan(blocked_links=frozenset({(1, 2)}))
        assert plan.should_drop(1, 2)
        assert not plan.should_drop(2, 1)

    def test_partition_drops_across_groups_only(self):
        plan = FaultPlan(
            partitions=(frozenset({1, 2}), frozenset({3}))
        )
        assert not plan.crosses_partition(1, 2)
        assert plan.crosses_partition(1, 3)
        assert plan.should_drop(2, 3)
        assert not plan.should_drop(2, 1)

    def test_unlisted_nodes_are_islands(self):
        plan = FaultPlan(partitions=(frozenset({1, 2}),))
        assert plan.crosses_partition(1, 4)
        assert plan.crosses_partition(4, 5)  # two islands differ too

    def test_probabilistic_drop_is_seed_deterministic(self):
        def draw(seed):
            plan = FaultPlan(drop_probability=0.5, seed=seed)
            return tuple(plan.should_drop(1, 2) for _ in range(32))

        decisions = [draw(7), draw(7)]
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_probability_bounds_enforced(self):
        with pytest.raises(ClusterError):
            FaultPlan(drop_probability=1.5)

    def test_wire_round_trip(self):
        plan = FaultPlan(
            default_delay=0.01,
            link_delays={(1, 2): 0.2},
            blocked_links=frozenset({(2, 3)}),
            drop_next={(3, 1): 4},
            drop_probability=0.25,
            seed=9,
            partitions=(frozenset({1}), frozenset({2, 3})),
        )
        clone = FaultPlan.from_wire(plan.to_wire())
        assert clone.default_delay == plan.default_delay
        assert clone.link_delays == plan.link_delays
        assert clone.blocked_links == plan.blocked_links
        assert clone.drop_next == plan.drop_next
        assert clone.drop_probability == plan.drop_probability
        assert clone.seed == plan.seed
        assert clone.partitions == plan.partitions

    def test_wire_form_is_json_clean(self):
        import json

        plan = FaultPlan(
            link_delays={(1, 2): 0.2}, partitions=(frozenset({1, 2}),)
        )
        json.dumps(plan.to_wire())

    def test_partially_consumed_budget_survives_wire_round_trip(self):
        # A retrying sender re-installs plans mid-run: the decremented
        # drop_next budgets must serialize as-is, not reset.
        plan = FaultPlan(drop_next={(1, 2): 3, (2, 1): 1})
        assert plan.should_drop(1, 2)
        assert plan.should_drop(2, 1)
        clone = FaultPlan.from_wire(plan.to_wire())
        assert clone.drop_next == {(1, 2): 2, (2, 1): 0}

    def test_budget_exhaustion_after_round_trip(self):
        plan = FaultPlan(drop_next={(1, 2): 2})
        assert plan.should_drop(1, 2)
        clone = FaultPlan.from_wire(plan.to_wire())
        assert clone.should_drop(1, 2)  # one unit of budget left
        assert not clone.should_drop(1, 2)  # now spent
        assert not clone.should_drop(1, 2)  # and stays spent


class TestNodeMetrics:
    def test_charges_by_message_class(self):
        metrics = NodeMetrics(node_id=1)
        metrics.charge_message(ReadRequest(1, 2, request_id=1))
        metrics.charge_message(Invalidate(1, 3, request_id=1))
        metrics.charge_message(
            DataTransfer(1, 2, version=ObjectVersion(1, 1), request_id=2)
        )
        assert metrics.control_sent == 2
        assert metrics.data_sent == 1

    def test_wire_round_trip(self):
        metrics = NodeMetrics(
            node_id=4,
            control_sent=3,
            data_sent=2,
            io_reads=5,
            io_writes=6,
            dropped_messages=1,
            requests_completed=7,
            request_errors=1,
            latencies=[0.5, 0.25],
        )
        assert NodeMetrics.from_wire(metrics.to_wire()) == metrics

    def test_aggregate_sums_counters_in_node_order(self):
        one = NodeMetrics(1, control_sent=1, data_sent=2, io_reads=3,
                          io_writes=4, requests_completed=5,
                          latencies=[0.1])
        two = NodeMetrics(2, control_sent=10, data_sent=20, io_reads=30,
                          io_writes=40, dropped_messages=2,
                          requests_completed=50, latencies=[0.2, 0.3])
        stats = aggregate([two, one])  # order-insensitive input
        assert stats.control_messages == 11
        assert stats.data_messages == 22
        assert stats.io_reads == 33
        assert stats.io_writes == 44
        assert stats.dropped_messages == 2
        assert stats.requests_completed == 55
        assert stats.latencies == [0.1, 0.2, 0.3]  # node-id order

    def test_aggregate_breakdown_bridges_to_model_types(self):
        stats = aggregate([NodeMetrics(1, control_sent=2, data_sent=1,
                                       io_reads=3, io_writes=1)])
        breakdown = stats.breakdown()
        assert breakdown.io_ops == 4
        assert breakdown.control_messages == 2
        assert breakdown.data_messages == 1


class TestLatencyStatistics:
    def test_empty_series_yields_no_buckets(self):
        assert latency_histogram([]) == []

    def test_constant_series_collapses_to_one_bucket(self):
        assert latency_histogram([0.5, 0.5, 0.5]) == [(0.5, 3)]

    def test_counts_partition_the_series(self):
        values = [i / 10 for i in range(20)]
        histogram = latency_histogram(values, buckets=4)
        assert len(histogram) == 4
        assert sum(count for _, count in histogram) == len(values)
        uppers = [upper for upper, _ in histogram]
        assert uppers == sorted(uppers)

    def test_bucket_count_validated(self):
        with pytest.raises(ValueError):
            latency_histogram([1.0], buckets=0)

    def test_percentiles(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.5) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0

    def test_percentile_validates(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
