"""Unit tests for the bitmask helpers in repro.types.

The kernel and the offline DP share one bit convention — bit ``i`` of
a mask stands for ``universe[i]``, the ``i``-th smallest processor id
— so the round-trip helpers are load-bearing for cross-module mask
comparability.
"""

from __future__ import annotations

import pytest

from repro.types import (
    mask_of,
    processor_universe,
    set_of_mask,
)


class TestProcessorUniverse:
    def test_sorted_dedup_union(self):
        assert processor_universe([2, 9], [1, 2]) == (1, 2, 9)

    def test_empty(self):
        assert processor_universe() == ()
        assert processor_universe([], []) == ()

    def test_single_collection(self):
        assert processor_universe({5, 3, 3}) == (3, 5)


class TestMaskRoundTrip:
    def test_round_trip_contiguous(self):
        universe = (1, 2, 3, 4)
        for mask in range(1 << len(universe)):
            assert mask_of(set_of_mask(mask, universe), universe) == mask

    def test_round_trip_non_contiguous(self):
        # Processor ids need not be dense: {2, 5, 7, 9} maps to bits
        # 0..3 in sorted order.
        universe = (2, 5, 7, 9)
        assert mask_of([2], universe) == 0b0001
        assert mask_of([9], universe) == 0b1000
        assert mask_of([5, 7], universe) == 0b0110
        for mask in range(1 << len(universe)):
            members = set_of_mask(mask, universe)
            assert mask_of(members, universe) == mask

    def test_empty_set(self):
        universe = (1, 2, 9)
        assert mask_of([], universe) == 0
        assert set_of_mask(0, universe) == frozenset()

    def test_empty_universe(self):
        assert mask_of([], ()) == 0
        assert set_of_mask(0, ()) == frozenset()

    def test_bit_order_is_sorted_rank(self):
        # Bit i == i-th *smallest* id, regardless of input order.
        universe = processor_universe([9, 2, 7, 5])
        assert universe == (2, 5, 7, 9)
        assert mask_of([universe[0]], universe) == 1
        assert mask_of(reversed(universe), universe) == 0b1111


class TestMaskErrors:
    def test_foreign_processor_rejected(self):
        with pytest.raises(ValueError):
            mask_of([4], (1, 2, 9))

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            set_of_mask(-1, (1, 2))

    def test_overflow_bits_rejected(self):
        with pytest.raises(ValueError):
            set_of_mask(1 << 2, (1, 2))
        with pytest.raises(ValueError):
            set_of_mask(1, ())
