"""Unit tests for repro.model.schedule."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.model.request import RequestKind, read, write
from repro.model.schedule import Schedule, concat


class TestParsing:
    def test_parse_paper_example(self, paper_schedule):
        assert len(paper_schedule) == 5
        assert paper_schedule[0] == write(2)
        assert paper_schedule[1] == read(4)
        assert paper_schedule[4] == read(2)

    def test_parse_empty(self):
        assert len(Schedule.parse("")) == 0

    def test_str_roundtrip(self, paper_schedule):
        assert Schedule.parse(str(paper_schedule)) == paper_schedule

    def test_rejects_non_request_items(self):
        with pytest.raises(ConfigurationError):
            Schedule(("r1",))


class TestSequenceProtocol:
    def test_iteration(self, paper_schedule):
        kinds = [request.kind for request in paper_schedule]
        assert kinds == [
            RequestKind.WRITE,
            RequestKind.READ,
            RequestKind.WRITE,
            RequestKind.READ,
            RequestKind.READ,
        ]

    def test_slicing_returns_schedule(self, paper_schedule):
        prefix = paper_schedule[:2]
        assert isinstance(prefix, Schedule)
        assert str(prefix) == "w2 r4"

    def test_concatenation(self):
        left = Schedule.parse("r1")
        right = Schedule.parse("w2")
        assert str(left + right) == "r1 w2"

    def test_repetition(self):
        base = Schedule.parse("r1 w2")
        assert str(base * 3) == "r1 w2 r1 w2 r1 w2"
        assert str(0 * base) == ""

    def test_negative_repetition_rejected(self):
        with pytest.raises(ConfigurationError):
            Schedule.parse("r1") * -1

    def test_concat_helper(self):
        parts = [Schedule.parse("r1"), Schedule.parse("w2 r3")]
        assert str(concat(parts)) == "r1 w2 r3"


class TestStatistics:
    def test_processors(self, paper_schedule):
        assert paper_schedule.processors == frozenset({1, 2, 3, 4})

    def test_read_write_counts(self, paper_schedule):
        assert paper_schedule.read_count == 3
        assert paper_schedule.write_count == 2

    def test_write_fraction(self, paper_schedule):
        assert paper_schedule.write_fraction == pytest.approx(0.4)

    def test_write_fraction_of_empty_schedule(self):
        assert Schedule().write_fraction == 0.0

    def test_per_processor_counts(self, paper_schedule):
        assert paper_schedule.reads_by(2) == 1
        assert paper_schedule.writes_by(2) == 1
        assert paper_schedule.reads_by(4) == 1
        assert paper_schedule.writes_by(4) == 0

    def test_request_counts_mapping(self, paper_schedule):
        counts = paper_schedule.request_counts()
        assert counts[2] == {"reads": 1, "writes": 1}
        assert counts[3] == {"reads": 0, "writes": 1}


class TestTransformations:
    def test_prefix(self, paper_schedule):
        assert str(paper_schedule.prefix(3)) == "w2 r4 w3"

    def test_runs_encoding(self):
        schedule = Schedule.parse("r1 r1 r1 w2 r1")
        runs = schedule.runs()
        assert runs == [
            (RequestKind.READ, 1, 3),
            (RequestKind.WRITE, 2, 1),
            (RequestKind.READ, 1, 1),
        ]

    def test_runs_of_empty_schedule(self):
        assert Schedule().runs() == []
