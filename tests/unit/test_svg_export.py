"""Unit tests for the SVG renderer (repro.viz.svg_export)."""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree

import pytest

from repro.analysis.regions import Region, theoretical_map
from repro.viz.svg_export import REGION_COLORS, region_map_to_svg, write_svg


class TestRendering:
    def test_output_is_well_formed_xml(self):
        svg = region_map_to_svg(theoretical_map(steps=5), title="Figure 1")
        root = ElementTree.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_cell_per_grid_point(self):
        region_map = theoretical_map(steps=5)
        svg = region_map_to_svg(region_map)
        root = ElementTree.fromstring(svg)
        namespace = "{http://www.w3.org/2000/svg}"
        rects = root.findall(f".//{namespace}rect")
        # background + 25 cells + 4 legend swatches.
        assert len(rects) == 1 + 25 + 4

    def test_regions_get_their_colors(self):
        svg = region_map_to_svg(theoretical_map(steps=9))
        assert REGION_COLORS[Region.SA_SUPERIOR] in svg
        assert REGION_COLORS[Region.DA_SUPERIOR] in svg
        assert 'url(#hatch)' in svg  # the infeasible triangle

    def test_title_and_axis_labels(self):
        svg = region_map_to_svg(theoretical_map(steps=3), title="My Map")
        assert "My Map" in svg
        assert "c_d (data-message cost)" in svg
        assert "c_c (control-message cost)" in svg

    def test_tooltips_carry_coordinates(self):
        svg = region_map_to_svg(theoretical_map(steps=3))
        assert "c_c=0.0, c_d=2.0" in svg

    def test_write_svg(self, tmp_path):
        path = tmp_path / "figure1.svg"
        write_svg(theoretical_map(steps=4), path, title="Figure 1")
        content = path.read_text()
        assert content.startswith("<svg")
        ElementTree.fromstring(content)

    def test_mobile_map_renders(self):
        svg = region_map_to_svg(theoretical_map(mobile_model=True, steps=4))
        # DA cells exist; the SA color appears only in the legend swatch.
        assert svg.count(REGION_COLORS[Region.DA_SUPERIOR]) > 1
        assert svg.count(REGION_COLORS[Region.SA_SUPERIOR]) == 1
