"""Unit: chaos plan generation — determinism and safety constraints."""

from __future__ import annotations

import json

import pytest

from repro.chaos.plan import SCHEMA_VERSION, ChaosPlan, FaultEvent, generate_plan
from repro.exceptions import ClusterError

PROCESSORS = (1, 2, 3, 4, 5, 6, 7, 8)
SCHEME = (1, 2, 3)
PRIMARY = 3


def make_plan(seed: int = 0, **overrides) -> ChaosPlan:
    params = dict(
        protocol="DA",
        processors=PROCESSORS,
        scheme=SCHEME,
        primary=PRIMARY,
        requests=200,
        write_fraction=0.3,
        seed=seed,
        attempts=4,
    )
    params.update(overrides)
    return generate_plan(**params)


def crash_intervals(plan: ChaosPlan):
    """Pair every crash with its matching recovery: (start, end, node)."""
    opens = {}
    intervals = []
    for event in plan.events:
        if event.kind == "crash":
            assert event.node not in opens, "crash while already down"
            opens[event.node] = event.at
        elif event.kind == "recover":
            assert event.node in opens, "recovery without crash"
            intervals.append((opens.pop(event.node), event.at, event.node))
    assert not opens, "unpaired crash left at end of schedule"
    return intervals


def partition_windows(plan: ChaosPlan):
    start = None
    windows = []
    for event in plan.events:
        if event.kind == "partition":
            assert start is None, "overlapping partition windows"
            start = event.at
        elif event.kind == "heal":
            assert start is not None
            windows.append((start, event.at))
            start = None
    assert start is None, "partition never healed"
    return windows


class TestDeterminism:
    def test_same_seed_same_plan(self):
        assert make_plan(seed=7) == make_plan(seed=7)

    def test_different_seeds_differ(self):
        seeds = [make_plan(seed=s).events for s in range(6)]
        assert len(set(seeds)) > 1

    def test_events_sorted_by_request_index(self):
        ats = [event.at for event in make_plan(seed=3).events]
        assert ats == sorted(ats)


class TestConstraints:
    @pytest.mark.parametrize("seed", range(12))
    def test_every_crash_is_paired(self, seed):
        crash_intervals(make_plan(seed=seed))

    @pytest.mark.parametrize("seed", range(12))
    def test_crash_concurrency_below_t(self, seed):
        plan = make_plan(seed=seed)
        t = len(plan.scheme)
        intervals = crash_intervals(plan)
        for at in range(plan.requests):
            down = [n for s, e, n in intervals if s <= at <= e]
            assert len(down) <= t - 1
            # A core member and a scheme member always survive.
            core = set(plan.scheme) - {plan.primary}
            assert core - set(down)
            assert set(plan.scheme) - set(down)

    @pytest.mark.parametrize("seed", range(12))
    def test_crashes_avoid_partition_windows(self, seed):
        plan = make_plan(seed=seed)
        windows = partition_windows(plan)
        for start, end, _ in crash_intervals(plan):
            for w_start, w_end in windows:
                assert end < w_start or start > w_end

    @pytest.mark.parametrize("seed", range(12))
    def test_partition_majority_keeps_scheme_and_primary(self, seed):
        plan = make_plan(seed=seed)
        for event in plan.events:
            if event.kind != "partition":
                continue
            majority = set(event.groups[0])
            assert set(plan.scheme) <= majority
            assert plan.primary in majority
            # Groups partition a subset of the processors disjointly.
            minority = set(event.groups[1])
            assert not majority & minority

    @pytest.mark.parametrize("seed", range(12))
    def test_drop_budgets_leave_one_attempt(self, seed):
        attempts = 4
        plan = make_plan(seed=seed, attempts=attempts)
        for event in plan.events:
            if event.kind != "drops":
                continue
            for sender, receiver, budget in event.budgets:
                assert sender != receiver
                assert 1 <= budget <= attempts - 1


class TestEdgeCases:
    """Boundary shapes the generator must keep safe (satellite 3)."""

    def test_short_run_skips_partitions_entirely(self):
        # span = requests // (2*partitions+1) < 6 → no window is carved
        # rather than a zero/negative-duration one.
        plan = make_plan(seed=5, requests=20, partitions=3)
        assert all(
            event.kind not in ("partition", "heal") for event in plan.events
        )

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("partitions", [1, 2, 4])
    def test_partition_windows_never_zero_duration(self, seed, partitions):
        plan = make_plan(seed=seed, partitions=partitions)
        for start, end in partition_windows(plan):
            assert start < end <= plan.requests - 2

    @pytest.mark.parametrize("seed", range(12))
    def test_minimum_length_run_is_still_safe(self, seed):
        plan = make_plan(seed=seed, requests=20)
        crash_intervals(plan)  # every crash still pairs with a recovery
        for start, end in partition_windows(plan):
            assert start < end

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("requests", [20, 21, 25])
    def test_recoveries_clamp_inside_the_trace(self, seed, requests):
        # Crash intervals drawn near the end must clamp to requests-2:
        # the recover event still fires before the workload runs out,
        # so no node is left down at the final sweep.
        plan = make_plan(seed=seed, requests=requests)
        for start, end, _ in crash_intervals(plan):
            assert 2 <= start <= end <= requests - 2
        for event in plan.events:
            assert 0 <= event.at <= requests - 1

    @pytest.mark.parametrize("seed", range(8))
    def test_adjacent_events_order_damage_before_recovery(self, seed):
        plan = make_plan(seed=seed, torn_writes=3)
        for event in plan.events:
            if event.kind not in ("torn", "corrupt"):
                continue
            same_index = plan.events_at(event.at)
            recover = [
                other
                for other in same_index
                if other.kind == "recover" and other.node == event.node
            ]
            assert recover, "damage must pair with the victim's recovery"
            assert same_index.index(event) < same_index.index(recover[0])


class TestDamageEvents:
    @pytest.mark.parametrize("seed", range(8))
    def test_plain_plan_is_a_strict_prefix(self, seed):
        """torn_writes draws come after every other draw: disabling
        them must not move a single existing event."""
        plain = make_plan(seed=seed)
        damaged = make_plan(seed=seed, torn_writes=2)
        undamaged = [
            event
            for event in damaged.events
            if event.kind not in ("torn", "corrupt")
        ]
        assert list(plain.events) == undamaged

    def test_zero_torn_writes_means_no_damage(self):
        plan = make_plan(seed=2, torn_writes=0)
        assert all(
            event.kind not in ("torn", "corrupt") for event in plan.events
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_damage_lands_on_crashed_nodes(self, seed):
        plan = make_plan(seed=seed, torn_writes=4)
        intervals = crash_intervals(plan)
        damage = [
            event
            for event in plan.events
            if event.kind in ("torn", "corrupt")
        ]
        assert damage, "enough crash intervals exist to damage"
        for event in damage:
            assert any(
                node == event.node and end == event.at
                for _, end, node in intervals
            ), "damage must hit a crashed node at its recovery index"

    @pytest.mark.parametrize("seed", range(8))
    def test_damage_amounts_are_bounded(self, seed):
        for event in make_plan(seed=seed, torn_writes=4).events:
            if event.kind == "torn":
                assert 1 <= event.amount <= 32
            elif event.kind == "corrupt":
                assert 1 <= event.amount <= 8

    def test_torn_writes_cap_at_crash_count(self):
        plan = make_plan(seed=1, crashes=2, torn_writes=50)
        damage = [
            event
            for event in plan.events
            if event.kind in ("torn", "corrupt")
        ]
        assert len(damage) <= len(crash_intervals(plan))


class TestSchema:
    def test_wire_round_trip_through_json(self):
        plan = make_plan(seed=4, torn_writes=2)
        wire = json.loads(json.dumps(plan.to_wire()))
        assert ChaosPlan.from_wire(wire) == plan
        assert wire["schema_version"] == SCHEMA_VERSION

    def test_versionless_plan_deserializes_as_v1(self):
        wire = make_plan(seed=4).to_wire()
        del wire["schema_version"]
        rebuilt = ChaosPlan.from_wire(wire)
        assert rebuilt.schema_version == 1
        assert rebuilt.events == make_plan(seed=4).events

    def test_future_schema_rejected(self):
        wire = make_plan(seed=4).to_wire()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ClusterError):
            ChaosPlan.from_wire(wire)

    def test_event_amount_survives_the_wire(self):
        event = FaultEvent(at=9, kind="torn", node=3, amount=17)
        assert FaultEvent.from_wire(event.to_wire()) == event


class TestValidation:
    def test_too_few_requests_rejected(self):
        with pytest.raises(ClusterError):
            make_plan(requests=10)

    def test_primary_must_be_in_scheme(self):
        with pytest.raises(ClusterError):
            make_plan(primary=8)


class TestRendering:
    def test_describe_covers_every_event(self):
        plan = make_plan(seed=1)
        text = plan.describe()
        assert f"seed {plan.seed}" in text
        for event in plan.events:
            assert event.describe() in text

    def test_events_at_filters_by_index(self):
        plan = make_plan(seed=1)
        event = plan.events[0]
        assert event in plan.events_at(event.at)
        assert plan.events_at(-1) == []

    def test_fault_event_describe_forms(self):
        assert "crash node 2" in FaultEvent(at=5, kind="crash", node=2).describe()
        assert "heal" in FaultEvent(at=9, kind="heal").describe()
        drops = FaultEvent(at=3, kind="drops", budgets=((1, 2, 3),))
        assert "1->2x3" in drops.describe()
        torn = FaultEvent(at=7, kind="torn", node=4, amount=12)
        assert "12 byte(s)" in torn.describe()
        corrupt = FaultEvent(at=8, kind="corrupt", node=4, amount=2)
        assert "-2" in corrupt.describe()

    def test_describe_carries_the_schema_version(self):
        assert f"schema v{SCHEMA_VERSION}" in make_plan(seed=1).describe()
