"""Unit: chaos plan generation — determinism and safety constraints."""

from __future__ import annotations

import pytest

from repro.chaos.plan import ChaosPlan, FaultEvent, generate_plan
from repro.exceptions import ClusterError

PROCESSORS = (1, 2, 3, 4, 5, 6, 7, 8)
SCHEME = (1, 2, 3)
PRIMARY = 3


def make_plan(seed: int = 0, **overrides) -> ChaosPlan:
    params = dict(
        protocol="DA",
        processors=PROCESSORS,
        scheme=SCHEME,
        primary=PRIMARY,
        requests=200,
        write_fraction=0.3,
        seed=seed,
        attempts=4,
    )
    params.update(overrides)
    return generate_plan(**params)


def crash_intervals(plan: ChaosPlan):
    """Pair every crash with its matching recovery: (start, end, node)."""
    opens = {}
    intervals = []
    for event in plan.events:
        if event.kind == "crash":
            assert event.node not in opens, "crash while already down"
            opens[event.node] = event.at
        elif event.kind == "recover":
            assert event.node in opens, "recovery without crash"
            intervals.append((opens.pop(event.node), event.at, event.node))
    assert not opens, "unpaired crash left at end of schedule"
    return intervals


def partition_windows(plan: ChaosPlan):
    start = None
    windows = []
    for event in plan.events:
        if event.kind == "partition":
            assert start is None, "overlapping partition windows"
            start = event.at
        elif event.kind == "heal":
            assert start is not None
            windows.append((start, event.at))
            start = None
    assert start is None, "partition never healed"
    return windows


class TestDeterminism:
    def test_same_seed_same_plan(self):
        assert make_plan(seed=7) == make_plan(seed=7)

    def test_different_seeds_differ(self):
        seeds = [make_plan(seed=s).events for s in range(6)]
        assert len(set(seeds)) > 1

    def test_events_sorted_by_request_index(self):
        ats = [event.at for event in make_plan(seed=3).events]
        assert ats == sorted(ats)


class TestConstraints:
    @pytest.mark.parametrize("seed", range(12))
    def test_every_crash_is_paired(self, seed):
        crash_intervals(make_plan(seed=seed))

    @pytest.mark.parametrize("seed", range(12))
    def test_crash_concurrency_below_t(self, seed):
        plan = make_plan(seed=seed)
        t = len(plan.scheme)
        intervals = crash_intervals(plan)
        for at in range(plan.requests):
            down = [n for s, e, n in intervals if s <= at <= e]
            assert len(down) <= t - 1
            # A core member and a scheme member always survive.
            core = set(plan.scheme) - {plan.primary}
            assert core - set(down)
            assert set(plan.scheme) - set(down)

    @pytest.mark.parametrize("seed", range(12))
    def test_crashes_avoid_partition_windows(self, seed):
        plan = make_plan(seed=seed)
        windows = partition_windows(plan)
        for start, end, _ in crash_intervals(plan):
            for w_start, w_end in windows:
                assert end < w_start or start > w_end

    @pytest.mark.parametrize("seed", range(12))
    def test_partition_majority_keeps_scheme_and_primary(self, seed):
        plan = make_plan(seed=seed)
        for event in plan.events:
            if event.kind != "partition":
                continue
            majority = set(event.groups[0])
            assert set(plan.scheme) <= majority
            assert plan.primary in majority
            # Groups partition a subset of the processors disjointly.
            minority = set(event.groups[1])
            assert not majority & minority

    @pytest.mark.parametrize("seed", range(12))
    def test_drop_budgets_leave_one_attempt(self, seed):
        attempts = 4
        plan = make_plan(seed=seed, attempts=attempts)
        for event in plan.events:
            if event.kind != "drops":
                continue
            for sender, receiver, budget in event.budgets:
                assert sender != receiver
                assert 1 <= budget <= attempts - 1


class TestValidation:
    def test_too_few_requests_rejected(self):
        with pytest.raises(ClusterError):
            make_plan(requests=10)

    def test_primary_must_be_in_scheme(self):
        with pytest.raises(ClusterError):
            make_plan(primary=8)


class TestRendering:
    def test_describe_covers_every_event(self):
        plan = make_plan(seed=1)
        text = plan.describe()
        assert f"seed {plan.seed}" in text
        for event in plan.events:
            assert event.describe() in text

    def test_events_at_filters_by_index(self):
        plan = make_plan(seed=1)
        event = plan.events[0]
        assert event in plan.events_at(event.at)
        assert plan.events_at(-1) == []

    def test_fault_event_describe_forms(self):
        assert "crash node 2" in FaultEvent(at=5, kind="crash", node=2).describe()
        assert "heal" in FaultEvent(at=9, kind="heal").describe()
        drops = FaultEvent(at=3, kind="drops", budgets=((1, 2, 3),))
        assert "1->2x3" in drops.describe()
