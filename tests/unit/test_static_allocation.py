"""Unit tests for the SA algorithm (repro.core.static_allocation)."""

from __future__ import annotations

import pytest

from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.schedule import Schedule


class TestConstruction:
    def test_threshold_defaults_to_scheme_size(self):
        sa = StaticAllocation({1, 2, 3})
        assert sa.threshold == 3

    def test_rejects_thin_scheme(self):
        with pytest.raises(ConfigurationError):
            StaticAllocation({1})

    def test_rejects_threshold_below_two(self):
        with pytest.raises(ConfigurationError):
            StaticAllocation({1, 2}, threshold=1)

    def test_scheme_alias(self):
        sa = StaticAllocation({1, 2})
        assert sa.scheme == frozenset({1, 2})


class TestBehaviour:
    def test_member_reads_are_local(self):
        sa = StaticAllocation({1, 2})
        allocation = sa.run(Schedule.parse("r1 r2"))
        assert allocation[0].execution_set == frozenset({1})
        assert allocation[1].execution_set == frozenset({2})

    def test_foreign_reads_go_to_a_member(self):
        sa = StaticAllocation({1, 2})
        allocation = sa.run(Schedule.parse("r5"))
        (step,) = allocation
        assert step.execution_set <= sa.scheme
        assert len(step.execution_set) == 1

    def test_reads_never_save(self):
        sa = StaticAllocation({1, 2})
        allocation = sa.run(Schedule.parse("r5 r5 r5"))
        assert all(not step.saving for step in allocation)

    def test_writes_go_to_whole_scheme(self):
        sa = StaticAllocation({1, 2})
        allocation = sa.run(Schedule.parse("w5 w1"))
        assert allocation[0].execution_set == frozenset({1, 2})
        assert allocation[1].execution_set == frozenset({1, 2})

    def test_scheme_never_changes(self):
        sa = StaticAllocation({1, 2})
        allocation = sa.run(Schedule.parse("r5 w3 r4 w2 r1"))
        for scheme, _ in allocation.schemes():
            assert scheme == frozenset({1, 2})
        assert allocation.final_scheme == frozenset({1, 2})

    def test_output_is_legal_and_available(self):
        sa = StaticAllocation({1, 2, 3})
        allocation = sa.run(Schedule.parse("r9 w8 r7 w6 r5"))
        allocation.check_legal()
        allocation.check_t_available(3)

    def test_run_resets_state(self):
        sa = StaticAllocation({1, 2})
        first = sa.run(Schedule.parse("w5"))
        second = sa.run(Schedule.parse("w5"))
        assert first.steps == second.steps


class TestCosts:
    def test_foreign_read_cost(self, sc_model):
        # 1 + c_c + c_d for every foreign read: the cost Proposition 1
        # exploits.
        sa = StaticAllocation({1, 2})
        allocation = sa.run(Schedule.parse("r5"))
        assert sc_model.schedule_cost(allocation) == pytest.approx(
            1 + sc_model.c_c + sc_model.c_d
        )

    def test_member_write_cost(self, sc_model):
        # Writer in Q: (|Q|-1) data messages + |Q| I/Os, no invalidations.
        sa = StaticAllocation({1, 2})
        allocation = sa.run(Schedule.parse("w1"))
        assert sc_model.schedule_cost(allocation) == pytest.approx(
            2 + sc_model.c_d
        )

    def test_foreign_write_cost(self, sc_model):
        # Writer outside Q: |Q| data messages + |Q| I/Os.
        sa = StaticAllocation({1, 2})
        allocation = sa.run(Schedule.parse("w5"))
        assert sc_model.schedule_cost(allocation) == pytest.approx(
            2 + 2 * sc_model.c_d
        )

    def test_read_one_write_all_tradeoff(self, sc_model):
        # More replicas: cheaper member reads, dearer writes.
        small = StaticAllocation({1, 2})
        large = StaticAllocation({1, 2, 3, 4})
        write_heavy = Schedule.parse("w5 w5 w5")
        assert sc_model.schedule_cost(
            small.run(write_heavy)
        ) < sc_model.schedule_cost(large.run(write_heavy))
        member_reads = Schedule.parse("r3 r4")
        assert sc_model.schedule_cost(
            large.run(member_reads)
        ) < sc_model.schedule_cost(small.run(member_reads))
