"""Unit tests for trace (de)serialization (repro.workloads.trace)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.model.schedule import Schedule
from repro.workloads import trace


class TestRoundtrip:
    def test_dumps_loads(self, paper_schedule):
        assert trace.loads(trace.dumps(paper_schedule)) == paper_schedule

    def test_line_wrapping(self):
        schedule = Schedule.parse(" ".join(["r1"] * 45))
        text = trace.dumps(schedule, per_line=20)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert len(lines[0].split()) == 20
        assert len(lines[2].split()) == 5

    def test_empty_schedule(self):
        assert trace.dumps(Schedule()) == ""
        assert trace.loads("") == Schedule()

    def test_rejects_bad_per_line(self, paper_schedule):
        with pytest.raises(ConfigurationError):
            trace.dumps(paper_schedule, per_line=0)


class TestParsing:
    def test_comments_ignored(self):
        text = "# a satellite trace\nr1 w2  # inline comment\nr3\n"
        assert trace.loads(text) == Schedule.parse("r1 w2 r3")

    def test_blank_lines_ignored(self):
        assert trace.loads("\n\nr1\n\nw2\n") == Schedule.parse("r1 w2")

    def test_bad_token_raises(self):
        with pytest.raises(ConfigurationError):
            trace.loads("r1 banana")


class TestFiles:
    def test_save_and_load(self, tmp_path, paper_schedule):
        path = tmp_path / "trace.txt"
        trace.save(paper_schedule, path)
        assert trace.load(path) == paper_schedule

    def test_file_is_human_readable(self, tmp_path, paper_schedule):
        path = tmp_path / "trace.txt"
        trace.save(paper_schedule, path)
        assert path.read_text() == "w2 r4 w3 r1 r2\n"
