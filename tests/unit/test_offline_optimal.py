"""Unit tests for the offline-optimal DP (repro.core.offline_optimal)."""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.offline_optimal import (
    OfflineOptimal,
    optimal_allocation,
    optimal_cost,
)
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import mobile, stationary
from repro.model.schedule import Schedule


class TestBasics:
    def test_empty_schedule_costs_nothing(self, sc_model):
        assert optimal_cost(Schedule(), {1, 2}, sc_model) == 0.0

    def test_single_local_read(self, sc_model):
        assert optimal_cost(
            Schedule.parse("r1"), {1, 2}, sc_model
        ) == pytest.approx(1.0)

    def test_single_foreign_read(self, sc_model):
        # Cheapest: one on-demand non-saving read.
        assert optimal_cost(
            Schedule.parse("r5"), {1, 2}, sc_model
        ) == pytest.approx(1 + sc_model.c_c + sc_model.c_d)

    def test_repeated_foreign_reads_warrant_saving(self, sc_model):
        # k reads: save once (c_c + c_d + 2) then read locally (k-1).
        k = 6
        schedule = Schedule.parse("r5") * k
        expected = (sc_model.c_c + sc_model.c_d + 2.0) + (k - 1) * 1.0
        assert optimal_cost(schedule, {1, 2}, sc_model) == pytest.approx(expected)

    def test_single_write_costs_t_ios_plus_data(self, sc_model):
        # Best write: X = {writer, one other}, 2 I/Os + 1 data message.
        assert optimal_cost(
            Schedule.parse("w1"), {1, 2}, sc_model
        ) == pytest.approx(2.0 + sc_model.c_d)

    def test_rejects_thin_initial_scheme(self, sc_model):
        solver = OfflineOptimal(sc_model)
        with pytest.raises(ConfigurationError):
            solver.solve(Schedule.parse("r1"), {1})

    def test_rejects_threshold_below_two(self, sc_model):
        with pytest.raises(ConfigurationError):
            OfflineOptimal(sc_model, threshold=1)

    def test_universe_guard(self, sc_model):
        solver = OfflineOptimal(sc_model, max_processors=3)
        schedule = Schedule.parse("r1 r2 r3 r4 r5")
        with pytest.raises(ConfigurationError):
            solver.solve(schedule, {1, 2})


class TestWitness:
    def test_witness_is_legal_available_and_priced_right(self, sc_model):
        schedule = Schedule.parse("r3 w2 r3 r4 w4 r1 r1")
        solver = OfflineOptimal(sc_model)
        result = solver.solve(schedule, {1, 2})
        result.allocation.check_legal()
        result.allocation.check_t_available(2)
        assert result.allocation.corresponds_to(schedule)
        assert sc_model.schedule_cost(result.allocation) == pytest.approx(
            result.cost
        )

    def test_optimal_allocation_helper(self, sc_model):
        schedule = Schedule.parse("r3 w2 r3")
        allocation = optimal_allocation(schedule, {1, 2}, sc_model)
        assert allocation.corresponds_to(schedule)


class TestOptimality:
    @pytest.mark.parametrize(
        "text",
        [
            "r1 r1 r2 w2 r2 r2 r2",
            "r5 w1 r5 w1 r5",
            "w3 w3 w3",
            "r4 r5 r6 w1 r4 r5 r6",
        ],
    )
    def test_never_worse_than_sa_or_da(self, sc_model, text):
        schedule = Schedule.parse(text)
        scheme = {1, 2}
        opt = optimal_cost(schedule, scheme, sc_model)
        sa_cost = sc_model.schedule_cost(StaticAllocation(scheme).run(schedule))
        da_cost = sc_model.schedule_cost(
            DynamicAllocation(scheme, primary=2).run(schedule)
        )
        assert opt <= sa_cost + 1e-9
        assert opt <= da_cost + 1e-9

    def test_prefers_moving_scheme_to_writer(self, sc_model):
        # w5 then many r5: the optimum moves the scheme to include 5.
        schedule = Schedule.parse("w5 r5 r5 r5 r5")
        allocation = optimal_allocation(schedule, {1, 2}, sc_model)
        assert 5 in allocation.scheme_at(1)

    def test_mobile_all_local_reads_cost_zero(self):
        model = mobile(0.5, 2.0)
        assert optimal_cost(Schedule.parse("r1 r2 r1"), {1, 2}, model) == 0.0

    def test_threshold_three_forces_larger_writes(self):
        model = stationary(0.1, 0.5)
        schedule = Schedule.parse("w1")
        cost_t2 = optimal_cost(schedule, {1, 2}, model, threshold=2)
        cost_t3 = optimal_cost(schedule, {1, 2, 3}, model, threshold=3)
        assert cost_t3 == pytest.approx(3.0 + 2 * 0.5)
        assert cost_t2 < cost_t3

    def test_monotone_in_schedule_prefix(self, sc_model):
        # Cost of OPT on a prefix never exceeds cost on the full
        # schedule (costs are non-negative per request).
        schedule = Schedule.parse("r3 w2 r3 r4 w4 r1")
        full = optimal_cost(schedule, {1, 2}, sc_model)
        prefix = optimal_cost(schedule.prefix(3), {1, 2}, sc_model)
        assert prefix <= full + 1e-9


class TestDeterminism:
    def test_same_input_same_witness(self, sc_model):
        schedule = Schedule.parse("r3 w2 r3 r4")
        first = optimal_allocation(schedule, {1, 2}, sc_model)
        second = optimal_allocation(schedule, {1, 2}, sc_model)
        assert first.steps == second.steps

    def test_cost_tie_breaks_to_smallest_mask(self, sc_model):
        # "w3" from {1, 2}: targets {1, 3} and {2, 3} tie exactly
        # (2 I/Os + 1 data + 1 invalidation either way).  The witness
        # must deterministically pick the numerically smallest bitmask
        # — {1, 3} — rather than whatever a dict iterates first.
        result = OfflineOptimal(sc_model).solve(Schedule.parse("w3"), {1, 2})
        assert result.cost == pytest.approx(
            2.0 + sc_model.c_d + sc_model.c_c
        )
        assert result.allocation.steps[0].execution_set == frozenset({1, 3})

    def test_all_ties_still_deterministic(self):
        # c_c = c_d = 0 in the mobile model prices *everything* at
        # zero: every legal allocation schedule ties.  The witness must
        # still be a pure function of the input (smallest-mask rule at
        # every argmin), not an iteration-order accident.
        model = mobile(0.0, 0.0)
        schedule = Schedule.parse("w3 r1 w2 r4 r4 w1")
        witnesses = [
            optimal_allocation(schedule, {1, 2}, model).steps
            for _ in range(3)
        ]
        assert witnesses[0] == witnesses[1] == witnesses[2]
        # Writes resolve to the smallest valid bitmask target: {1, 2}.
        first_write = witnesses[0][0]
        assert first_write.execution_set == frozenset({1, 2})


class TestPrune:
    @pytest.mark.parametrize(
        "text",
        [
            "r1 r1 r2 w2 r2",
            "r5 w1 r5 w1 r5",
            "w3 w4 r3 r4 w3",
            "r4 r5 r6 w1 r4 r5 r6",
        ],
    )
    def test_prune_changes_nothing(self, sc_model, text):
        schedule = Schedule.parse(text)
        pruned = OfflineOptimal(sc_model, prune=True).solve(schedule, {1, 2})
        exhaustive = OfflineOptimal(sc_model, prune=False).solve(
            schedule, {1, 2}
        )
        assert pruned.cost == pytest.approx(exhaustive.cost, abs=1e-12)
        assert pruned.allocation.steps == exhaustive.allocation.steps


class TestCapacity:
    def test_default_limit_is_fourteen(self, sc_model):
        assert OfflineOptimal(sc_model).max_processors == 14

    def test_fourteen_processor_universe_solves(self, sc_model):
        # One read per processor then a write: a full 14-bit DP pass.
        text = " ".join(f"r{p}" for p in range(1, 15)) + " w1 r14"
        schedule = Schedule.parse(text)
        solver = OfflineOptimal(sc_model)
        result = solver.solve(schedule, {1, 2})
        result.allocation.check_legal()
        result.allocation.check_t_available(2)
        assert sc_model.schedule_cost(result.allocation) == pytest.approx(
            result.cost
        )
