"""Unit tests for the theorem-bound functions (repro.analysis.bounds)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bounds import (
    DA_LOWER_BOUND,
    DA_MOBILE_CEILING,
    check_bounds_consistency,
    da_competitive_factor,
    da_lower_bound,
    da_superior,
    feasible,
    sa_competitive_factor,
    sa_is_competitive,
    sa_lower_bound,
    sa_superior,
)
from repro.model.cost_model import CostModel, mobile, stationary


class TestSABounds:
    def test_theorem_1_factor(self):
        # SA is (1 + c_c + c_d)-competitive.
        assert sa_competitive_factor(stationary(0.3, 1.2)) == pytest.approx(2.5)

    def test_proposition_1_tightness(self):
        model = stationary(0.3, 1.2)
        assert sa_lower_bound(model) == sa_competitive_factor(model)

    def test_proposition_3_mobile_unbounded(self):
        assert math.isinf(sa_competitive_factor(mobile(0.3, 1.2)))
        assert not sa_is_competitive(mobile(0.3, 1.2))
        assert sa_is_competitive(stationary(0.3, 1.2))

    def test_unnormalized_models_are_normalized_first(self):
        model = CostModel(2.0, 0.6, 2.4)
        assert sa_competitive_factor(model) == pytest.approx(1 + 0.3 + 1.2)


class TestDABounds:
    def test_theorem_2_factor(self):
        # c_d <= 1: the general 2 + 2 c_c bound applies.
        assert da_competitive_factor(stationary(0.3, 0.8)) == pytest.approx(2.6)

    def test_theorem_3_improvement_when_cd_above_one(self):
        assert da_competitive_factor(stationary(0.3, 1.2)) == pytest.approx(2.3)

    def test_theorem_3_boundary_is_strict(self):
        # At c_d = 1 exactly, only Theorem 2 applies.
        assert da_competitive_factor(stationary(0.3, 1.0)) == pytest.approx(2.6)

    def test_theorem_4_mobile_factor(self):
        assert da_competitive_factor(mobile(0.5, 2.0)) == pytest.approx(2.75)

    def test_theorem_4_ceiling_of_five(self):
        # c_c <= c_d makes 2 + 3 c_c / c_d <= 5.
        assert da_competitive_factor(mobile(2.0, 2.0)) == pytest.approx(5.0)
        assert DA_MOBILE_CEILING == 5.0

    def test_free_mobile_model_is_trivially_competitive(self):
        assert da_competitive_factor(mobile(0.0, 0.0)) == 1.0

    def test_proposition_2_lower_bound(self):
        assert da_lower_bound(stationary(0.3, 1.2)) == DA_LOWER_BOUND
        assert da_lower_bound(mobile(0.3, 1.2)) == DA_LOWER_BOUND


class TestSuperiorityRegions:
    def test_da_superior_when_cd_above_one(self):
        assert da_superior(stationary(0.3, 1.2))
        assert not da_superior(stationary(0.3, 1.0))

    def test_sa_superior_when_costs_tiny(self):
        assert sa_superior(stationary(0.1, 0.2))
        assert not sa_superior(stationary(0.2, 0.3))

    def test_mobile_da_always_superior(self):
        assert da_superior(mobile(0.3, 1.2))
        assert not sa_superior(mobile(0.3, 1.2))

    def test_superiority_is_consistent(self):
        # The regions never overlap.
        for c_c, c_d in [(0.0, 0.1), (0.1, 0.4), (0.3, 1.5), (1.0, 2.0)]:
            model = stationary(c_c, c_d)
            assert not (sa_superior(model) and da_superior(model))


class TestFeasibility:
    def test_diagonal_feasible(self):
        assert feasible(1.0, 1.0)

    def test_above_diagonal_infeasible(self):
        assert not feasible(1.5, 1.0)

    def test_negative_infeasible(self):
        assert not feasible(-0.1, 1.0)


class TestConsistency:
    @pytest.mark.parametrize(
        "model",
        [
            stationary(0.0, 0.0),
            stationary(0.3, 1.2),
            stationary(1.0, 1.0),
            mobile(0.5, 2.0),
            mobile(0.0, 0.0),
        ],
    )
    def test_lower_bounds_below_upper_bounds(self, model):
        check_bounds_consistency(model)
