"""Unit tests for the §3.2/§3.3 cost formulas (repro.model.costs).

Every numeric expectation below is computed by hand from the paper's
formulas, with (c_io, c_c, c_d) kept symbolic through the breakdown
counts and priced explicitly in the assertions.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.model.accounting import CostBreakdown
from repro.model.costs import (
    next_scheme,
    read_breakdown,
    request_breakdown,
    write_breakdown,
)
from repro.model.request import ExecutedRequest, read, write

SCHEME = frozenset({1, 2, 3})


class TestReadCosts:
    def test_local_singleton_read(self):
        # i in X, |X| = 1: cost = c_io exactly.
        executed = ExecutedRequest(read(1), {1})
        assert read_breakdown(executed, SCHEME) == CostBreakdown(
            io_ops=1, control_messages=0, data_messages=0
        )

    def test_remote_singleton_read(self):
        # i not in X, |X| = 1: cost = c_c + c_io + c_d (paper §1.2).
        executed = ExecutedRequest(read(5), {1})
        assert read_breakdown(executed, SCHEME) == CostBreakdown(
            io_ops=1, control_messages=1, data_messages=1
        )

    def test_multi_copy_read_with_reader_inside(self):
        # i in X, |X| = 3: (|X|-1) c_c + |X| c_io + (|X|-1) c_d.
        executed = ExecutedRequest(read(1), {1, 2, 3})
        assert read_breakdown(executed, SCHEME) == CostBreakdown(
            io_ops=3, control_messages=2, data_messages=2
        )

    def test_multi_copy_read_with_reader_outside(self):
        # i not in X, |X| = 2: |X| (c_c + c_io + c_d).
        executed = ExecutedRequest(read(5), {1, 2})
        assert read_breakdown(executed, SCHEME) == CostBreakdown(
            io_ops=2, control_messages=2, data_messages=2
        )

    def test_saving_read_adds_one_io(self):
        plain = ExecutedRequest(read(5), {1})
        saving = ExecutedRequest(read(5), {1}, saving=True)
        assert read_breakdown(saving, SCHEME) == read_breakdown(
            plain, SCHEME
        ) + CostBreakdown(io_ops=1)

    def test_read_breakdown_rejects_writes(self):
        with pytest.raises(ConfigurationError):
            read_breakdown(ExecutedRequest(write(1), {1}), SCHEME)


class TestWriteCosts:
    def test_writer_inside_execution_set(self):
        # i in X: |Y \ X| c_c + (|X|-1) c_d + |X| c_io.
        executed = ExecutedRequest(write(1), {1, 2})
        # Y = {1,2,3}, X = {1,2}: Y\X = {3}.
        assert write_breakdown(executed, SCHEME) == CostBreakdown(
            io_ops=2, control_messages=1, data_messages=1
        )

    def test_writer_outside_execution_set(self):
        # i not in X: |Y \ X \ {i}| c_c + |X| c_d + |X| c_io.
        executed = ExecutedRequest(write(3), {1, 2})
        # Y = {1,2,3}, X = {1,2}: Y\X\{3} = {} — the writer needs no
        # invalidation, it knows its copy is obsolete.
        assert write_breakdown(executed, SCHEME) == CostBreakdown(
            io_ops=2, control_messages=0, data_messages=2
        )

    def test_write_with_no_stale_copies(self):
        executed = ExecutedRequest(write(1), {1, 2, 3})
        assert write_breakdown(executed, SCHEME) == CostBreakdown(
            io_ops=3, control_messages=0, data_messages=2
        )

    def test_write_from_outsider_invalidates_all_old_copies(self):
        executed = ExecutedRequest(write(9), {9, 5})
        # Y\X = {1,2,3}, writer in X: 3 invalidations.
        assert write_breakdown(executed, SCHEME) == CostBreakdown(
            io_ops=2, control_messages=3, data_messages=1
        )

    def test_write_breakdown_rejects_reads(self):
        with pytest.raises(ConfigurationError):
            write_breakdown(ExecutedRequest(read(1), {1}), SCHEME)


class TestRequestBreakdownDispatch:
    def test_dispatches_reads(self):
        executed = ExecutedRequest(read(1), {1})
        assert request_breakdown(executed, SCHEME).io_ops == 1

    def test_dispatches_writes(self):
        executed = ExecutedRequest(write(1), {1, 2})
        assert request_breakdown(executed, SCHEME).data_messages == 1


class TestSchemeEvolution:
    def test_write_replaces_scheme(self):
        executed = ExecutedRequest(write(9), {9, 5})
        assert next_scheme(executed, SCHEME) == frozenset({5, 9})

    def test_saving_read_joins_scheme(self):
        executed = ExecutedRequest(read(9), {1}, saving=True)
        assert next_scheme(executed, SCHEME) == frozenset({1, 2, 3, 9})

    def test_plain_read_keeps_scheme(self):
        executed = ExecutedRequest(read(9), {1})
        assert next_scheme(executed, SCHEME) == SCHEME
