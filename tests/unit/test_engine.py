"""Unit tests for the experiment engine (repro.engine).

Covers deterministic seed derivation (including cross-process and
cross-interpreter stability), the runner's ordering/chunking/serial
fallback contracts, the progress reporter, and error propagation.
The cache layer has its own module (``test_engine_cache.py``); the
serial/parallel bit-equivalence property lives in
``tests/properties/test_prop_engine.py``.
"""

from __future__ import annotations

import io
import os
import subprocess
import sys

import pytest

from repro.engine import (
    ExperimentEngine,
    NullReporter,
    ProgressReporter,
    ResultCache,
    Task,
    derive_seed,
    rng_from,
    spawn_rng,
    stable_key,
)
from repro.engine.keys import canonicalize
from repro.engine.runner import default_worker_count
from repro.engine.seeding import seed_material
from repro.exceptions import ConfigurationError

SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _run_python(code: str, hash_seed: str) -> str:
    """Run a snippet in a fresh interpreter; return its stdout."""
    environment = dict(os.environ)
    environment["PYTHONHASHSEED"] = hash_seed
    environment["PYTHONPATH"] = SRC_DIR + os.pathsep + environment.get(
        "PYTHONPATH", ""
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=environment,
        check=True,
    )
    return result.stdout


class TestSeeding:
    def test_deterministic(self):
        assert derive_seed(42, 7) == derive_seed(42, 7)

    def test_index_and_root_and_stream_all_matter(self):
        baseline = derive_seed(1, 2, "a")
        assert derive_seed(1, 3, "a") != baseline
        assert derive_seed(2, 2, "a") != baseline
        assert derive_seed(1, 2, "b") != baseline

    def test_no_consecutive_overlap(self):
        # The footgun being fixed: roots 42 and 43 must not share
        # derived streams.
        streams_42 = {derive_seed(42, index) for index in range(10)}
        streams_43 = {derive_seed(43, index) for index in range(10)}
        assert streams_42.isdisjoint(streams_43)

    def test_spawn_rng_reproducible(self):
        assert (
            spawn_rng(5, 1).random() == spawn_rng(5, 1).random()
        )

    def test_rng_from_passthrough_and_int(self):
        rng = rng_from(3)
        assert rng_from(rng) is rng
        assert rng_from(3).random() == rng_from(3).random()

    def test_seed_material_int_passthrough(self):
        assert seed_material(9) == 9

    def test_seed_material_draws_from_rng(self):
        a = seed_material(rng_from(1))
        b = seed_material(rng_from(1))
        assert a == b  # same stream position -> same material

    def test_stable_across_interpreters_and_hash_seeds(self):
        code = (
            "from repro.engine import derive_seed;"
            "print(derive_seed(123, 45, 'bench'))"
        )
        first = _run_python(code, hash_seed="1")
        second = _run_python(code, hash_seed="2")
        assert first == second == f"{derive_seed(123, 45, 'bench')}\n"


class TestStableKey:
    def test_dict_order_independent(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})

    def test_set_order_independent(self):
        assert stable_key(frozenset({3, 1, 2})) == stable_key(
            frozenset({2, 3, 1})
        )

    def test_value_perturbation_changes_key(self):
        assert stable_key({"c_d": 1.5}) != stable_key({"c_d": 1.5000001})

    def test_float_int_distinct(self):
        assert stable_key(1) != stable_key(1.0)

    def test_dataclass_and_object_support(self):
        from repro.model.cost_model import stationary

        assert stable_key(stationary(0.2, 1.5)) == stable_key(
            stationary(0.2, 1.5)
        )
        assert stable_key(stationary(0.2, 1.5)) != stable_key(
            stationary(0.2, 1.6)
        )

    def test_rejects_unstable_values(self):
        with pytest.raises(ConfigurationError):
            stable_key(lambda: None)

    def test_canonical_handles_nesting(self):
        payload = {"outer": [{"inner": frozenset({1, 2})}, (1.5, None)]}
        assert canonicalize(payload) == canonicalize(payload)

    def test_stable_across_interpreters_and_hash_seeds(self):
        code = (
            "from repro.engine import stable_key;"
            "from repro.model.cost_model import stationary;"
            "print(stable_key({'model': stationary(0.2, 1.5),"
            " 'algorithms': {'SA', 'DA'}, 'seed': 7}))"
        )
        first = _run_python(code, hash_seed="1")
        second = _run_python(code, hash_seed="2")
        assert first == second


def double(value):
    return value * 2


def fail(value):
    raise ValueError(f"boom {value}")


class TestEngineRunner:
    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            ExperimentEngine(max_workers=0)
        with pytest.raises(ConfigurationError):
            ExperimentEngine(chunksize=0)

    def test_serial_preserves_order(self):
        engine = ExperimentEngine()
        assert engine.map(double, [(i,) for i in range(6)]) == [
            0, 2, 4, 6, 8, 10,
        ]

    @pytest.mark.parametrize("workers", [2, 3])
    @pytest.mark.parametrize("chunksize", [1, 2, 4])
    def test_parallel_preserves_order(self, workers, chunksize):
        engine = ExperimentEngine(max_workers=workers, chunksize=chunksize)
        assert engine.map(double, [(i,) for i in range(9)]) == [
            2 * i for i in range(9)
        ]

    def test_stats_recorded(self):
        engine = ExperimentEngine()
        engine.map(double, [(1,), (2,)])
        stats = engine.last_stats
        assert stats.tasks_total == 2
        assert stats.executed == 2
        assert stats.cache_hits == 0
        assert stats.elapsed_seconds >= 0
        assert stats.rate > 0

    def test_serial_error_propagates(self):
        engine = ExperimentEngine()
        with pytest.raises(ValueError, match="boom"):
            engine.map(fail, [(1,)])

    def test_parallel_error_propagates(self):
        engine = ExperimentEngine(max_workers=2)
        with pytest.raises(ValueError, match="boom"):
            engine.map(fail, [(1,), (2,), (3,)])

    def test_single_pending_task_runs_in_process(self):
        # One miss never pays pool startup: identity check via a
        # side-effecting closure (unpicklable on purpose).
        state = []
        engine = ExperimentEngine(max_workers=4)
        results = engine.run([Task(state.append, (7,))])
        assert results == [None] and state == [7]

    def test_map_key_length_mismatch(self):
        engine = ExperimentEngine()
        with pytest.raises(ConfigurationError):
            engine.map(double, [(1,)], keys=["a", "b"])

    def test_cached_results_identical_to_fresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        keys = [stable_key(("double", i)) for i in range(4)]
        fresh = engine.map(double, [(i,) for i in range(4)], keys=keys)
        again = engine.map(double, [(i,) for i in range(4)], keys=keys)
        assert fresh == again
        assert engine.last_stats.cache_hits == 4
        assert engine.last_stats.executed == 0

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestProgressReporter:
    def test_reports_rate_and_final_line(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            3, label="demo", stream=stream, min_interval=0.0
        )
        reporter.start()
        reporter.update()
        reporter.update(cached=True)
        reporter.update()
        reporter.finish()
        output = stream.getvalue()
        assert "demo: 3/3 tasks (1 cached)" in output
        assert "elapsed" in output
        # finish() after a final update() must not duplicate the line.
        assert output.count("elapsed") == 1

    def test_eta_none_before_progress(self):
        reporter = ProgressReporter(5, stream=io.StringIO())
        assert reporter.eta_seconds is None
        assert reporter.rate == 0.0

    def test_null_reporter_interface(self):
        reporter = NullReporter()
        reporter.start()
        reporter.update()
        reporter.finish()


def generate_trace(kind: str, seed: int) -> str:
    """Render a workload deterministically (module-level: picklable)."""
    from repro.workloads import trace
    from repro.workloads.markov import MarkovWorkload
    from repro.workloads.uniform import UniformWorkload

    if kind == "markov":
        generator = MarkovWorkload(range(1, 6), 40, 0.3)
    else:
        generator = UniformWorkload(range(1, 6), 40, 0.3)
    return trace.dumps(generator.generate(seed))


class TestCrossProcessDeterminism:
    """Two generators with the same seed must produce identical traces
    in separate processes (the engine's correctness hinges on it)."""

    @pytest.mark.parametrize("kind", ["uniform", "markov"])
    def test_same_seed_same_trace_across_processes(self, kind):
        seed = derive_seed(2024, 5, kind)
        code = (
            "from repro.workloads import trace;"
            "from repro.workloads.markov import MarkovWorkload;"
            "from repro.workloads.uniform import UniformWorkload;"
            f"generator = (MarkovWorkload(range(1, 6), 40, 0.3) if {kind!r} == 'markov'"
            " else UniformWorkload(range(1, 6), 40, 0.3));"
            f"print(trace.dumps(generator.generate({seed})), end='')"
        )
        # Different PYTHONHASHSEED values force different interpreter
        # hash randomization — the traces must not care.
        first = _run_python(code, hash_seed="0")
        second = _run_python(code, hash_seed="424242")
        assert first == second == generate_trace(kind, seed)

    def test_engine_workers_see_identical_streams(self):
        engine = ExperimentEngine(max_workers=2)
        serial = ExperimentEngine()
        arguments = [("uniform", derive_seed(7, i)) for i in range(4)]
        assert engine.map(generate_trace, arguments) == serial.map(
            generate_trace, arguments
        )
