"""Coverage for small utilities the main suites exercise only obliquely."""

from __future__ import annotations

import random

import pytest

from repro.analysis.regions import theoretical_map
from repro.analysis.report import format_table
from repro.analysis.sweep import SweepRow
from repro.exceptions import ConfigurationError
from repro.viz.csv_export import sweep_to_csv, write_csv
from repro.viz.csv_export import region_map_to_csv
from repro.workloads.generator import (
    random_request,
    validate_write_fraction,
    weighted_choice,
)


class TestGeneratorHelpers:
    def test_weighted_choice_without_weights_is_uniformish(self):
        rng = random.Random(0)
        picks = [weighted_choice(rng, [1, 2, 3]) for _ in range(300)]
        assert set(picks) == {1, 2, 3}

    def test_weighted_choice_respects_weights(self):
        rng = random.Random(0)
        picks = [
            weighted_choice(rng, [1, 2], weights=[99.0, 1.0])
            for _ in range(200)
        ]
        assert picks.count(1) > picks.count(2) * 5

    def test_random_request_extremes(self):
        rng = random.Random(0)
        assert all(
            random_request(rng, 1, 1.0).is_write for _ in range(20)
        )
        assert all(
            random_request(rng, 1, 0.0).is_read for _ in range(20)
        )

    def test_validate_write_fraction(self):
        assert validate_write_fraction(0.5) == 0.5
        with pytest.raises(ConfigurationError):
            validate_write_fraction(-0.1)


class TestCsvWriting:
    def test_write_csv_roundtrip(self, tmp_path):
        text = region_map_to_csv(theoretical_map(steps=3))
        path = tmp_path / "map.csv"
        write_csv(text, path)
        assert path.read_text() == text

    def test_sweep_csv_column_order(self):
        from repro.analysis.sweep import SweepResult

        rows = (
            SweepRow(0.1, {"DA": 1.2, "SA": 1.5}, {"DA": 1.1, "SA": 1.3},
                     {"DA": 10.0, "SA": 12.0}),
        )
        text = sweep_to_csv(SweepResult("w", rows))
        header, data = text.strip().splitlines()
        assert header == "w,DA_max_ratio,SA_max_ratio,DA_mean_cost,SA_mean_cost"
        assert data == "0.1,1.2,1.5,10.0,12.0"


class TestTableFormatting:
    def test_custom_float_format(self):
        text = format_table(["x"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in text and "1.234" not in text

    def test_integers_render_without_decimals(self):
        text = format_table(["n"], [[42]])
        assert "42" in text and "42.0" not in text

    def test_none_cells_render_as_str(self):
        text = format_table(["v"], [[None]])
        assert "None" in text
