"""Unit tests for hardware calibration (repro.analysis.calibration)."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import (
    DeploymentAdvice,
    MobileTariff,
    StationaryHardware,
    advise_mobile,
    advise_stationary,
    calibrate_mobile,
    calibrate_stationary,
)
from repro.analysis.regions import Region
from repro.exceptions import ConfigurationError


class TestStationaryCalibration:
    def test_defaults_produce_a_feasible_point(self):
        model = calibrate_stationary(StationaryHardware())
        assert model.c_io == 1.0
        assert 0 < model.c_c <= model.c_d

    def test_arithmetic(self):
        hardware = StationaryHardware(
            control_bytes=100.0,
            object_bytes=10_000.0,
            bandwidth_bytes_per_ms=1000.0,
            one_way_latency_ms=1.0,
            io_service_ms=2.0,
        )
        model = calibrate_stationary(hardware)
        assert model.c_c == pytest.approx((1.0 + 0.1) / 2.0)
        assert model.c_d == pytest.approx((1.0 + 10.0) / 2.0)

    def test_big_objects_slow_disks_favour_da(self):
        # Large object, slow network relative to disk: c_d >> 1.
        hardware = StationaryHardware(
            object_bytes=1_000_000.0,
            bandwidth_bytes_per_ms=1000.0,
            io_service_ms=5.0,
        )
        advice = advise_stationary(hardware)
        assert advice.region is Region.DA_SUPERIOR
        assert "dynamic allocation" in advice.recommendation

    def test_fast_network_small_objects_favour_sa(self):
        # Gigabit LAN, tiny object, slow disk: communication ~ free.
        hardware = StationaryHardware(
            control_bytes=64.0,
            object_bytes=256.0,
            bandwidth_bytes_per_ms=125_000.0,
            one_way_latency_ms=0.05,
            io_service_ms=10.0,
        )
        advice = advise_stationary(hardware)
        assert advice.region is Region.SA_SUPERIOR
        assert "static allocation" in advice.recommendation

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StationaryHardware(io_service_ms=0.0)
        with pytest.raises(ConfigurationError):
            StationaryHardware(control_bytes=1000.0, object_bytes=10.0)


class TestMobileCalibration:
    def test_charges(self):
        tariff = MobileTariff(
            per_message_fee=0.1,
            per_kilobyte_fee=0.02,
            control_bytes=512.0,
            object_bytes=2048.0,
        )
        model = calibrate_mobile(tariff)
        assert model.is_mobile
        assert model.c_c == pytest.approx(0.1 + 0.01)
        assert model.c_d == pytest.approx(0.1 + 0.04)

    def test_mobile_always_recommends_da(self):
        advice = advise_mobile(MobileTariff())
        assert advice.region is Region.DA_SUPERIOR

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MobileTariff(per_message_fee=-0.1)
        with pytest.raises(ConfigurationError):
            MobileTariff(per_message_fee=0.0, per_kilobyte_fee=0.0)
        with pytest.raises(ConfigurationError):
            MobileTariff(control_bytes=4096.0, object_bytes=64.0)

    def test_flat_fee_only_is_fine(self):
        model = calibrate_mobile(
            MobileTariff(per_message_fee=0.2, per_kilobyte_fee=0.0)
        )
        assert model.c_c == model.c_d == pytest.approx(0.2)


class TestAdvice:
    def test_contested_regime_says_measure(self):
        # Pick hardware landing in the Unknown wedge: c_d ~ 0.6, c_c small.
        hardware = StationaryHardware(
            control_bytes=64.0,
            object_bytes=5_000.0,
            bandwidth_bytes_per_ms=1000.0,
            one_way_latency_ms=0.2,
            io_service_ms=9.0,
        )
        advice = advise_stationary(hardware)
        assert advice.region is Region.UNKNOWN
        assert "measure" in advice.recommendation
