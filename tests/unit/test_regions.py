"""Unit tests for the region maps (repro.analysis.regions) — Figures 1-2."""

from __future__ import annotations

import pytest

from repro.analysis.regions import (
    Region,
    classify_mobile,
    classify_stationary,
    empirical_winner,
    grid,
    theoretical_map,
)
from repro.exceptions import ConfigurationError
from repro.workloads.adversarial import adversarial_suite


class TestStationaryClassification:
    def test_cannot_be_true_above_diagonal(self):
        assert classify_stationary(1.5, 1.0) is Region.INFEASIBLE

    def test_sa_corner(self):
        # c_c + c_d < 0.5.
        assert classify_stationary(0.1, 0.2) is Region.SA_SUPERIOR

    def test_da_region_right_of_cd_one(self):
        assert classify_stationary(0.3, 1.2) is Region.DA_SUPERIOR

    def test_unknown_wedge(self):
        assert classify_stationary(0.3, 0.8) is Region.UNKNOWN

    def test_boundary_cd_exactly_one_is_unknown(self):
        assert classify_stationary(0.3, 1.0) is Region.UNKNOWN

    def test_boundary_sum_exactly_half_is_unknown(self):
        assert classify_stationary(0.2, 0.3) is Region.UNKNOWN


class TestMobileClassification:
    def test_da_everywhere_feasible(self):
        for c_c, c_d in [(0.0, 0.5), (0.5, 0.5), (1.0, 2.0)]:
            assert classify_mobile(c_c, c_d) is Region.DA_SUPERIOR

    def test_infeasible_above_diagonal(self):
        assert classify_mobile(1.5, 1.0) is Region.INFEASIBLE

    def test_origin_vacuous(self):
        assert classify_mobile(0.0, 0.0) is Region.UNKNOWN


class TestGrid:
    def test_grid_endpoints(self):
        c_d_values, c_c_values = grid(2.0, 1.0, steps=5)
        assert c_d_values[0] == 0.0 and c_d_values[-1] == 2.0
        assert c_c_values[0] == 0.0 and c_c_values[-1] == 1.0

    def test_grid_needs_two_steps(self):
        with pytest.raises(ConfigurationError):
            grid(steps=1)


class TestTheoreticalMap:
    def test_stationary_map_has_all_four_regions(self):
        region_map = theoretical_map(mobile_model=False, steps=9)
        regions = {point.region for point in region_map.points}
        assert regions == {
            Region.SA_SUPERIOR,
            Region.DA_SUPERIOR,
            Region.UNKNOWN,
            Region.INFEASIBLE,
        }

    def test_mobile_map_has_no_sa_region(self):
        region_map = theoretical_map(mobile_model=True, steps=9)
        regions = {point.region for point in region_map.points}
        assert Region.SA_SUPERIOR not in regions
        assert Region.DA_SUPERIOR in regions

    def test_rows_ordered_like_the_figure(self):
        region_map = theoretical_map(steps=4)
        rows = region_map.rows()
        c_c_of_rows = [row[0].c_c for row in rows]
        assert c_c_of_rows == sorted(c_c_of_rows, reverse=True)
        for row in rows:
            c_ds = [point.c_d for point in row]
            assert c_ds == sorted(c_ds)

    def test_at_lookup(self):
        region_map = theoretical_map(steps=5)
        point = region_map.at(0.0, 2.0)
        assert point.region is Region.DA_SUPERIOR
        with pytest.raises(KeyError):
            region_map.at(0.123, 0.456)


class TestEmpiricalWinner:
    @pytest.fixture(scope="class")
    def suite(self):
        return adversarial_suite({1, 2}, [5, 6, 7], rounds=4)

    def test_da_wins_where_theory_says(self, suite):
        point = empirical_winner(0.2, 1.5, suite, {1, 2})
        assert point.region is Region.DA_SUPERIOR
        assert point.da_ratio < point.sa_ratio

    def test_sa_wins_where_theory_says(self, suite):
        point = empirical_winner(0.05, 0.1, suite, {1, 2})
        assert point.region is Region.SA_SUPERIOR

    def test_infeasible_points_short_circuit(self, suite):
        point = empirical_winner(1.5, 1.0, suite, {1, 2})
        assert point.region is Region.INFEASIBLE
        assert point.sa_ratio is None

    def test_mobile_da_wins(self, suite):
        point = empirical_winner(0.5, 1.0, suite, {1, 2}, mobile_model=True)
        assert point.region is Region.DA_SUPERIOR
