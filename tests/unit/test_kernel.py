"""Unit tests for the vectorized schedule kernel (repro.kernel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernel
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.kernel.compile import MAX_UNIVERSE, compile_batch, compile_schedule
from repro.model.schedule import Schedule


class TestCompile:
    def test_universe_is_sorted_union_with_extras(self):
        batch = compile_batch(
            [Schedule.parse("r5 w2"), Schedule.parse("r9")],
            extra_processors=[1, 2],
        )
        assert batch.universe == (1, 2, 5, 9)

    def test_bit_indices_follow_sorted_rank(self):
        batch = compile_schedule(Schedule.parse("r9 w2 r5"))
        assert batch.universe == (2, 5, 9)
        assert batch.procs[0].tolist() == [2, 0, 1]
        assert batch.is_write[0].tolist() == [False, True, False]

    def test_padding_is_masked(self):
        batch = compile_batch(
            [Schedule.parse("r1 r1 r1"), Schedule.parse("w2")]
        )
        assert batch.horizon == 3
        assert batch.lengths.tolist() == [3, 1]
        assert batch.valid().tolist() == [
            [True, True, True],
            [True, False, False],
        ]
        assert batch.request_count == 4

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_batch([])

    def test_empty_schedule_compiles(self):
        batch = compile_schedule(Schedule(), extra_processors=[1, 2])
        assert batch.horizon == 0
        assert batch.request_count == 0

    def test_arrays_are_read_only(self):
        batch = compile_schedule(Schedule.parse("r1 w2"))
        with pytest.raises(ValueError):
            batch.procs[0, 0] = 1

    def test_foreign_processor_lookup_raises(self):
        batch = compile_schedule(Schedule.parse("r1 w2"))
        with pytest.raises(ConfigurationError):
            batch.bit_index(7)

    def test_universe_guard(self):
        wide = Schedule(
            tuple(
                Schedule.parse(f"r{p}")[0]
                for p in range(1, MAX_UNIVERSE + 2)
            )
        )
        with pytest.raises(ConfigurationError):
            compile_schedule(wide)


class TestPopcount:
    def test_matches_int_bit_count(self):
        values = np.arange(0, 5000, dtype=np.int64)
        expected = [int(v).bit_count() for v in values]
        assert kernel.popcount(values).tolist() == expected

    def test_fallback_table_agrees(self, monkeypatch):
        # Force the byte-table path even on numpy >= 2.0.
        from repro.kernel import compile as compile_module

        monkeypatch.delattr(np, "bitwise_count", raising=False)
        values = np.array([[0, 1], [0b1011, (1 << 40) | 7]], dtype=np.int64)
        got = compile_module.popcount(values)
        assert got.tolist() == [[0, 1], [3, 4]]


class TestDispatch:
    def test_supports_exact_types_only(self, small_scheme):
        assert kernel.supports(StaticAllocation(small_scheme))
        assert kernel.supports(DynamicAllocation(small_scheme))

        class TweakedSA(StaticAllocation):
            pass

        # Subclasses may override decide/observe: stepped path only.
        assert not kernel.supports(TweakedSA(small_scheme))

    def test_request_costs_rejects_unsupported(self, sc_model, small_scheme):
        class TweakedSA(StaticAllocation):
            pass

        batch = compile_schedule(Schedule.parse("r1"), small_scheme)
        with pytest.raises(ConfigurationError):
            kernel.request_costs(TweakedSA(small_scheme), batch, sc_model)

    def test_schedule_cost_matches_stepped(
        self, sc_model, paper_schedule, small_scheme
    ):
        for make in (
            lambda: StaticAllocation(small_scheme),
            lambda: DynamicAllocation(small_scheme),
        ):
            stepped = sc_model.schedule_cost(make().run(paper_schedule))
            assert (
                kernel.schedule_cost(make(), paper_schedule, sc_model)
                == stepped
            )

    def test_batch_costs_accepts_precompiled_batch(
        self, sc_model, small_scheme
    ):
        schedules = [Schedule.parse("r5 w1 r5"), Schedule.parse("w2")]
        algorithm = StaticAllocation(small_scheme)
        batch = compile_batch(schedules, small_scheme)
        direct = kernel.batch_costs(algorithm, schedules, sc_model)
        shared = kernel.batch_costs(
            algorithm, schedules, sc_model, batch=batch
        )
        assert direct == shared


class TestEvaluate:
    def test_sa_paper_example(self, sc_model, paper_schedule, small_scheme):
        # w2 r4 w3 r1 r2 under SA over {1, 2}: per-request parity.
        batch = compile_schedule(paper_schedule, small_scheme)
        costs = kernel.sa_request_costs(batch, small_scheme, sc_model)
        allocation = StaticAllocation(small_scheme).run(paper_schedule)
        stepped = sc_model.request_costs(allocation)
        assert costs[0].tolist() == stepped

    def test_da_paper_example(self, sc_model, paper_schedule, small_scheme):
        batch = compile_schedule(paper_schedule, small_scheme)
        costs = kernel.da_request_costs(batch, small_scheme, sc_model)
        algorithm = DynamicAllocation(small_scheme)
        allocation = algorithm.run(paper_schedule)
        stepped = sc_model.request_costs(allocation)
        assert costs[0].tolist() == stepped

    def test_da_final_scheme_matches_stepped(self, paper_schedule):
        scheme = frozenset({2, 5, 7, 9})
        batch = compile_schedule(paper_schedule, scheme)
        finals = kernel.da_final_schemes(batch, scheme, primary=9)
        algorithm = DynamicAllocation(scheme, primary=9)
        algorithm.run(paper_schedule)
        assert finals == [algorithm.current_scheme]

    def test_da_final_scheme_of_empty_trace_is_initial(self, small_scheme):
        batch = compile_schedule(Schedule(), small_scheme)
        assert kernel.da_final_schemes(batch, small_scheme) == [small_scheme]

    def test_padding_contributes_no_cost(self, sc_model, small_scheme):
        batch = compile_batch(
            [Schedule.parse("w1 w1 w1"), Schedule.parse("r1")], small_scheme
        )
        costs = kernel.sa_request_costs(batch, small_scheme, sc_model)
        assert costs[1, 1:].tolist() == [0.0, 0.0]

    def test_scheme_validation_mirrors_stepped(self, sc_model):
        batch = compile_schedule(Schedule.parse("r1"), [1, 2])
        with pytest.raises(ConfigurationError):
            kernel.sa_request_costs(batch, frozenset({1}), sc_model)
        with pytest.raises(ConfigurationError):
            kernel.da_request_costs(
                batch, frozenset({1, 2}), sc_model, primary=5
            )

    def test_schedule_totals_fold_like_builtin_sum(self):
        costs = np.array([[0.1, 0.2, 0.3], [1.0, 0.0, 0.0]])
        lengths = np.array([3, 1])
        totals = kernel.schedule_totals(costs, lengths)
        assert totals == [sum([0.1, 0.2, 0.3]), 1.0]
