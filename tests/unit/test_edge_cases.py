"""Edge-case tests across modules: the corners the main suites skim.

Each test here pins one boundary behaviour that a refactor could
silently change — empty inputs, single-element structures, exact
boundaries of validation ranges, tie-breaking determinism.
"""

from __future__ import annotations

import pytest

from repro.analysis.regions import Region, classify_stationary
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.offline_optimal import OfflineOptimal
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.allocation import AllocationSchedule
from repro.model.cost_model import CostModel, stationary
from repro.model.request import ExecutedRequest, read, write
from repro.model.schedule import Schedule
from repro.viz.ascii_plot import render_series
from repro.workloads.uniform import UniformWorkload


class TestEmptyAndSingleton:
    def test_empty_schedule_through_every_algorithm(self, sc_model):
        for algorithm in (
            StaticAllocation({1, 2}),
            DynamicAllocation({1, 2}, primary=2),
        ):
            allocation = algorithm.run(Schedule())
            assert len(allocation) == 0
            assert sc_model.schedule_cost(allocation) == 0.0
            assert allocation.final_scheme == frozenset({1, 2})

    def test_empty_schedule_breakdowns(self):
        allocation = AllocationSchedule(frozenset({1, 2}), ())
        assert allocation.breakdowns() == []
        assert allocation.total_breakdown().io_ops == 0

    def test_single_request_latency_accounting(self):
        from repro.distsim.runner import run_protocol

        stats = run_protocol("SA", Schedule((read(1),)), {1, 2})
        assert stats.requests_completed == 1
        assert len(stats.latencies) == 1

    def test_workload_of_length_zero(self):
        assert len(UniformWorkload([1, 2], 0).generate(0)) == 0


class TestBoundaries:
    def test_cost_model_accepts_equal_cc_cd(self):
        model = stationary(1.0, 1.0)
        assert model.c_c == model.c_d

    def test_cost_model_rejects_epsilon_violation(self):
        with pytest.raises(ConfigurationError):
            stationary(1.0 + 1e-9, 1.0)

    def test_threshold_exactly_two_is_minimum(self):
        assert StaticAllocation({1, 2}).threshold == 2

    def test_region_boundaries_are_exclusive(self):
        # c_c + c_d == 0.5 exactly: NOT SA-superior (strict inequality).
        assert classify_stationary(0.25, 0.25) is Region.UNKNOWN
        # c_d == 1 exactly: NOT DA-superior.
        assert classify_stationary(0.0, 1.0) is Region.UNKNOWN
        # Just past the boundaries:
        assert classify_stationary(0.24, 0.25) is Region.SA_SUPERIOR
        assert classify_stationary(0.0, 1.01) is Region.DA_SUPERIOR

    def test_zero_cost_model_everything_free_but_io(self):
        model = stationary(0.0, 0.0)
        executed = ExecutedRequest(read(5), {1})
        assert model.request_cost(executed, frozenset({1, 2})) == 1.0


class TestDeterministicTieBreaking:
    def test_sa_always_uses_the_same_server(self):
        sa = StaticAllocation({3, 7, 9})
        allocation = sa.run(Schedule.parse("r1 r1 r1"))
        servers = {next(iter(step.execution_set)) for step in allocation}
        assert servers == {3}

    def test_da_core_server_is_lowest_id(self):
        da = DynamicAllocation({3, 7, 9}, primary=9)
        allocation = da.run(Schedule.parse("r1"))
        assert allocation[0].execution_set == frozenset({3})

    def test_opt_tie_break_is_stable(self, sc_model):
        # With c_c = c_d = 0 many optima tie; the witness must be the
        # same on every call.
        model = stationary(0.0, 0.0)
        schedule = Schedule.parse("w1 w2 w3")
        solver = OfflineOptimal(model)
        first = solver.solve(schedule, {1, 2}).allocation
        second = solver.solve(schedule, {1, 2}).allocation
        assert first.steps == second.steps


class TestRenderSeriesExtremes:
    def test_constant_series(self):
        text = render_series([(0.0, 2.0), (1.0, 2.0)], width=10, height=4)
        assert "*" in text

    def test_single_point(self):
        text = render_series([(1.0, 1.0)], width=5, height=3)
        assert "*" in text


class TestSchedulesAsValues:
    def test_equality_and_hash(self):
        left = Schedule.parse("r1 w2")
        right = Schedule.parse("r1 w2")
        assert left == right
        assert hash(left) == hash(right)
        assert len({left, right}) == 1

    def test_add_rejects_non_schedule(self):
        with pytest.raises(TypeError):
            Schedule.parse("r1") + ["w2"]


class TestCostModelValues:
    def test_frozen(self):
        model = stationary(0.1, 0.2)
        with pytest.raises(AttributeError):
            model.c_c = 0.5  # type: ignore[misc]

    def test_general_cost_model_io_between_zero_and_one(self):
        model = CostModel(0.5, 0.1, 0.2)
        assert model.is_stationary
        normalized = model.normalized()
        assert normalized.c_c == pytest.approx(0.2)
