"""Unit tests for the network and node layers (repro.distsim)."""

from __future__ import annotations

import pytest

from repro.distsim.messages import (
    DataTransfer,
    Invalidate,
    MessageClass,
    ReadRequest,
)
from repro.distsim.network import Network
from repro.distsim.simulator import Simulator
from repro.distsim.statistics import SimulationStats
from repro.exceptions import ConfigurationError, ProtocolError
from repro.model.accounting import CostBreakdown
from repro.model.cost_model import mobile, stationary
from repro.storage.versions import ObjectVersion


class Recorder:
    """Message handler that records deliveries."""

    def __init__(self):
        self.received = []

    def on_message(self, node, message):
        self.received.append((node.node_id, message))


def make_network():
    network = Network(Simulator(), control_latency=1.0, data_latency=3.0)
    nodes = network.add_nodes([1, 2, 3])
    recorder = Recorder()
    for node in nodes:
        node.attach_handler(recorder)
    return network, recorder


class TestTopology:
    def test_duplicate_node_rejected(self):
        network, _ = make_network()
        with pytest.raises(ConfigurationError):
            network.add_node(1)

    def test_unknown_node_rejected(self):
        network, _ = make_network()
        with pytest.raises(ConfigurationError):
            network.node(99)

    def test_live_nodes_excludes_crashed(self):
        network, _ = make_network()
        network.node(2).crash()
        assert [n.node_id for n in network.live_nodes()] == [1, 3]

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(Simulator(), control_latency=-1.0)


class TestTransmission:
    def test_control_messages_counted_and_delivered(self):
        network, recorder = make_network()
        network.send(ReadRequest(1, 2, request_id=7))
        network.simulator.run()
        assert network.stats.control_messages == 1
        assert network.stats.data_messages == 0
        assert recorder.received[0][0] == 2

    def test_data_messages_counted_separately(self):
        network, _ = make_network()
        network.send(DataTransfer(1, 2, version=ObjectVersion(0, 1)))
        network.simulator.run()
        assert network.stats.data_messages == 1
        assert network.stats.control_messages == 0

    def test_message_classes(self):
        assert ReadRequest(1, 2).message_class is MessageClass.CONTROL
        assert Invalidate(1, 2).message_class is MessageClass.CONTROL
        assert DataTransfer(1, 2).message_class is MessageClass.DATA

    def test_latency_by_class(self):
        network, _ = make_network()
        network.send(ReadRequest(1, 2))
        network.simulator.run()
        assert network.simulator.now == 1.0
        network.send(DataTransfer(2, 1))
        network.simulator.run()
        assert network.simulator.now == 4.0

    def test_self_messages_rejected(self):
        network, _ = make_network()
        with pytest.raises(ProtocolError):
            network.send(ReadRequest(1, 1))

    def test_unknown_endpoints_rejected(self):
        network, _ = make_network()
        with pytest.raises(ProtocolError):
            network.send(ReadRequest(1, 99))
        with pytest.raises(ProtocolError):
            network.send(ReadRequest(99, 1))

    def test_messages_to_crashed_nodes_dropped_but_charged(self):
        network, recorder = make_network()
        network.node(2).crash()
        network.send(ReadRequest(1, 2))
        network.simulator.run()
        assert network.stats.control_messages == 1  # the sender transmitted
        assert network.stats.dropped_messages == 1
        assert recorder.received == []

    def test_drop_listener_notified(self):
        network, _ = make_network()
        drops = []

        class Listener:
            def on_dropped(self, message):
                drops.append(message)

        network.drop_listener = Listener()
        network.node(2).crash()
        network.send(ReadRequest(1, 2, request_id=9))
        network.simulator.run()
        assert len(drops) == 1
        assert drops[0].request_id == 9

    def test_on_delivered_hook(self):
        network, _ = make_network()
        delivered = []
        network.send(ReadRequest(1, 2), on_delivered=lambda: delivered.append(1))
        network.simulator.run()
        assert delivered == [1]

    def test_reset_stats(self):
        network, _ = make_network()
        network.send(ReadRequest(1, 2))
        network.simulator.run()
        network.reset_stats()
        assert network.stats.control_messages == 0


class TestNode:
    def test_io_counts_into_network_stats(self):
        network, _ = make_network()
        node = network.node(1)
        node.output_object(ObjectVersion(1, writer=1))
        node.input_object()
        assert network.stats.io_writes == 1
        assert network.stats.io_reads == 1

    def test_seed_copy_uncharged(self):
        network, _ = make_network()
        network.node(1).seed_copy(ObjectVersion(0, writer=1))
        assert network.stats.io_writes == 0
        assert network.node(1).holds_valid_copy

    def test_crash_wipes_volatile_state(self):
        network, _ = make_network()
        node = network.node(1)
        node.volatile["join_list"] = {5}
        node.crash()
        assert node.volatile == {}
        assert not node.alive

    def test_delivery_to_crashed_node_is_a_bug(self):
        network, _ = make_network()
        node = network.node(1)
        node.crash()
        with pytest.raises(ProtocolError):
            node.deliver(ReadRequest(2, 1))

    def test_delivery_without_handler_is_a_bug(self):
        network = Network(Simulator())
        node = network.add_node(1)
        with pytest.raises(ProtocolError):
            node.deliver(ReadRequest(2, 1))


class TestStatistics:
    def test_breakdown_bridges_to_model_layer(self):
        stats = SimulationStats(
            control_messages=2, data_messages=3, io_reads=4, io_writes=1
        )
        assert stats.breakdown() == CostBreakdown(
            io_ops=5, control_messages=2, data_messages=3
        )

    def test_cost_under_both_models(self):
        stats = SimulationStats(
            control_messages=2, data_messages=3, io_reads=4, io_writes=1
        )
        assert stats.cost(stationary(0.5, 2.0)) == pytest.approx(5 + 1 + 6)
        assert stats.cost(mobile(0.5, 2.0)) == pytest.approx(1 + 6)

    def test_delta(self):
        stats = SimulationStats(control_messages=1, io_reads=1)
        later = stats.snapshot()
        later.control_messages += 2
        later.io_writes += 1
        assert later.delta(stats) == CostBreakdown(
            io_ops=1, control_messages=2, data_messages=0
        )

    def test_latency_summaries(self):
        stats = SimulationStats(latencies=[1.0, 3.0])
        assert stats.mean_latency == 2.0
        assert stats.max_latency == 3.0
        assert SimulationStats().mean_latency is None
