"""Unit tests for the bursty Markov workload (repro.workloads.markov)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.markov import MarkovWorkload


class TestValidation:
    def test_rejects_bad_stickiness(self):
        with pytest.raises(ConfigurationError):
            MarkovWorkload([1, 2], 10, stickiness=1.5)

    def test_rejects_bad_locality(self):
        with pytest.raises(ConfigurationError):
            MarkovWorkload([1, 2], 10, locality=-0.1)


class TestShape:
    def test_length_and_processors(self):
        workload = MarkovWorkload(range(1, 6), 200, 0.2)
        schedule = workload.generate(0)
        assert len(schedule) == 200
        assert schedule.processors <= frozenset(range(1, 6))

    def test_deterministic_per_seed(self):
        workload = MarkovWorkload(range(1, 6), 100, 0.2)
        assert workload.generate(4) == workload.generate(4)

    def test_high_locality_is_bursty(self):
        sticky = MarkovWorkload(
            range(1, 9), 500, 0.2, stickiness=0.98, locality=1.0
        )
        chaotic = MarkovWorkload(
            range(1, 9), 500, 0.2, stickiness=0.98, locality=0.0
        )
        assert sticky.burstiness(0) > chaotic.burstiness(0) + 0.3

    def test_zero_stickiness_still_valid(self):
        workload = MarkovWorkload(range(1, 4), 50, 0.2, stickiness=0.0)
        assert len(workload.generate(1)) == 50

    def test_single_processor_never_hops(self):
        workload = MarkovWorkload([7], 50, 0.0, stickiness=0.0, locality=1.0)
        schedule = workload.generate(0)
        assert schedule.processors == frozenset({7})

    def test_burstiness_of_tiny_schedules(self):
        workload = MarkovWorkload([1, 2], 1, 0.2)
        assert workload.burstiness(0) == 0.0

    def test_write_fraction_respected(self):
        workload = MarkovWorkload(range(1, 6), 3000, 0.4)
        fraction = workload.generate(2).write_fraction
        assert 0.35 < fraction < 0.45
