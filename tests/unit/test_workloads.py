"""Unit tests for the workload generators (repro.workloads)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.model.request import read, write
from repro.workloads import (
    MobileLocationWorkload,
    Phase,
    PhasedWorkload,
    ReaderWriterWorkload,
    UniformWorkload,
    ZipfWorkload,
    two_phase_shift,
)


class TestUniform:
    def test_length(self):
        workload = UniformWorkload(range(1, 6), 100, 0.2)
        assert len(workload.generate(0)) == 100

    def test_deterministic_per_seed(self):
        workload = UniformWorkload(range(1, 6), 50, 0.3)
        assert workload.generate(7) == workload.generate(7)
        assert workload.generate(7) != workload.generate(8)

    def test_write_fraction_approximate(self):
        workload = UniformWorkload(range(1, 6), 3000, 0.25)
        fraction = workload.generate(1).write_fraction
        assert 0.20 < fraction < 0.30

    def test_only_configured_processors(self):
        workload = UniformWorkload([3, 7], 80, 0.5)
        assert workload.generate(0).processors <= frozenset({3, 7})

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            UniformWorkload([1, 2], 10, 1.5)

    def test_rejects_empty_processors(self):
        with pytest.raises(ConfigurationError):
            UniformWorkload([], 10)

    def test_rejects_negative_length(self):
        with pytest.raises(ConfigurationError):
            UniformWorkload([1], -1)

    def test_batch_uses_distinct_seeds(self):
        workload = UniformWorkload(range(1, 6), 30, 0.2)
        schedules = workload.batch(3, seed=100)
        assert len(schedules) == 3
        assert schedules[0] != schedules[1]


class TestZipf:
    def test_skews_toward_first_processor(self):
        workload = ZipfWorkload(range(1, 9), 4000, 0.0, exponent=1.5)
        schedule = workload.generate(0)
        counts = schedule.request_counts()
        assert counts[1]["reads"] > counts[8]["reads"] * 3

    def test_zero_exponent_is_uniformish(self):
        workload = ZipfWorkload(range(1, 5), 4000, 0.0, exponent=0.0)
        counts = workload.generate(0).request_counts()
        reads = [counts[p]["reads"] for p in range(1, 5)]
        assert max(reads) < 2 * min(reads)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ConfigurationError):
            ZipfWorkload([1, 2], 10, exponent=-1.0)


class TestReaderWriter:
    def test_populations_respected(self):
        workload = ReaderWriterWorkload([1, 2], [8, 9], 500, 0.3)
        schedule = workload.generate(0)
        for request in schedule:
            if request.is_read:
                assert request.processor in {1, 2}
            else:
                assert request.processor in {8, 9}

    def test_rejects_empty_population(self):
        with pytest.raises(ConfigurationError):
            ReaderWriterWorkload([], [1], 10)


class TestPhased:
    def test_phase_validation(self):
        with pytest.raises(ConfigurationError):
            Phase({}, {}, length=5)
        with pytest.raises(ConfigurationError):
            Phase({1: -1.0}, {2: 1.0}, length=5)

    def test_phase_lengths_concatenate(self):
        workload = PhasedWorkload(
            [
                Phase({1: 1.0}, {1: 0.2}, 30),
                Phase({2: 1.0}, {2: 0.2}, 20),
            ]
        )
        assert len(workload.generate(0)) == 50

    def test_activity_follows_phases(self):
        workload = PhasedWorkload(
            [
                Phase({1: 1.0}, {}, 40),
                Phase({2: 1.0}, {}, 40),
            ]
        )
        schedule = workload.generate(0)
        first, second = schedule[:40], schedule[40:]
        assert first.processors == frozenset({1})
        assert second.processors == frozenset({2})

    def test_two_phase_shift_shape(self):
        workload = two_phase_shift(1, 2, others=[3, 4], phase_length=100)
        schedule = workload.generate(0)
        assert len(schedule) == 200
        counts = schedule.request_counts()
        # The heavy processors dominate their phases.
        assert counts[1]["reads"] > counts[3]["reads"]
        assert counts[2]["reads"] > counts[4]["reads"]

    def test_requires_at_least_one_phase(self):
        with pytest.raises(ConfigurationError):
            PhasedWorkload([])


class TestMobility:
    def test_writes_come_from_cells(self):
        workload = MobileLocationWorkload(
            cells=[1, 2, 3], callers=[10, 11], length=400, move_probability=0.3
        )
        schedule = workload.generate(0)
        for request in schedule:
            if request.is_write:
                assert request.processor in {1, 2, 3}
            else:
                assert request.processor in {10, 11}

    def test_move_probability_zero_means_reads_only(self):
        workload = MobileLocationWorkload(
            cells=[1], callers=[10], length=50, move_probability=0.0
        )
        assert workload.generate(0).write_count == 0

    def test_single_cell_cannot_move(self):
        workload = MobileLocationWorkload(
            cells=[1], callers=[10], length=50, move_probability=1.0
        )
        assert workload.generate(0).write_count == 0

    def test_consecutive_writes_come_from_different_cells(self):
        workload = MobileLocationWorkload(
            cells=[1, 2, 3], callers=[10], length=300, move_probability=0.9
        )
        schedule = workload.generate(3)
        writers = [r.processor for r in schedule if r.is_write]
        assert all(a != b for a, b in zip(writers, writers[1:]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MobileLocationWorkload([], [1], 10)
        with pytest.raises(ConfigurationError):
            MobileLocationWorkload([1], [], 10)
        with pytest.raises(ConfigurationError):
            MobileLocationWorkload([1], [2], 10, move_probability=2.0)
        with pytest.raises(ConfigurationError):
            MobileLocationWorkload([1], [2], 10, start_cell=9)
