"""Unit tests for the baseline algorithms (CDDR, convergent, caching)."""

from __future__ import annotations

import pytest

from repro.core.caching import WriteInvalidationCaching
from repro.core.cddr import SkiRentalReplication
from repro.core.convergent import ConvergentAllocation
from repro.core.dynamic_allocation import DynamicAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import stationary
from repro.model.schedule import Schedule


class TestSkiRental:
    def test_rejects_zero_rent_limit(self):
        with pytest.raises(ConfigurationError):
            SkiRentalReplication({1, 2}, rent_limit=0)

    def test_first_foreign_read_rents(self):
        cddr = SkiRentalReplication({1, 2}, rent_limit=2, primary=2)
        allocation = cddr.run(Schedule.parse("r5"))
        assert not allocation[0].saving
        assert 5 not in cddr.current_scheme

    def test_second_foreign_read_buys(self):
        cddr = SkiRentalReplication({1, 2}, rent_limit=2, primary=2)
        allocation = cddr.run(Schedule.parse("r5 r5 r5"))
        assert not allocation[0].saving
        assert allocation[1].saving
        assert allocation[2].execution_set == frozenset({5})

    def test_write_resets_rental_counters(self):
        cddr = SkiRentalReplication({1, 2}, rent_limit=2, primary=2)
        allocation = cddr.run(Schedule.parse("r5 w1 r5"))
        # The pre-write rental must not carry over.
        assert not allocation[2].saving

    def test_rent_limit_one_behaves_like_da(self, sc_model):
        schedule = Schedule.parse("r5 r6 w1 r5 r5 w7 r7 r6")
        cddr = SkiRentalReplication({1, 2}, rent_limit=1, primary=2)
        da = DynamicAllocation({1, 2}, primary=2)
        assert sc_model.schedule_cost(cddr.run(schedule)) == pytest.approx(
            sc_model.schedule_cost(da.run(schedule))
        )

    def test_renting_beats_da_on_one_shot_readers(self):
        # Each reader reads once, then a write invalidates: saving is
        # wasted work that renting avoids (the c_c,c_d -> 0 regime of
        # Proposition 2).
        model = stationary(0.01, 0.01)
        schedule = Schedule.parse("r5 r6 w1 r7 r8 w1")
        cddr = SkiRentalReplication({1, 2}, rent_limit=2, primary=2)
        da = DynamicAllocation({1, 2}, primary=2)
        assert model.schedule_cost(cddr.run(schedule)) < model.schedule_cost(
            da.run(schedule)
        )

    def test_output_valid(self):
        cddr = SkiRentalReplication({1, 2, 3}, rent_limit=3)
        allocation = cddr.run(Schedule.parse("r7 r7 r7 r7 w8 r7 w1 r9"))
        allocation.check_legal()
        allocation.check_t_available(3)


class TestConvergent:
    def test_needs_positive_window(self, sc_model):
        with pytest.raises(ConfigurationError):
            ConvergentAllocation({1, 2}, sc_model, window=0)

    def test_reads_never_save(self, sc_model):
        conv = ConvergentAllocation({1, 2}, sc_model)
        allocation = conv.run(Schedule.parse("r5 r5 r5"))
        assert all(not step.saving for step in allocation)

    def test_converges_to_heavy_reader(self, sc_model):
        conv = ConvergentAllocation({1, 2}, sc_model, window=16)
        # Processor 7 reads heavily; after enough evidence a write
        # should replicate to 7.
        schedule = Schedule.parse("r7 r7 r7 r7 r7 r7 r7 r7 w1")
        conv.run(schedule)
        assert 7 in conv.current_scheme

    def test_respects_threshold(self, sc_model):
        conv = ConvergentAllocation({1, 2, 3}, sc_model, window=8)
        allocation = conv.run(Schedule.parse("w9 w9 w9 r1 w9"))
        allocation.check_t_available(3)
        allocation.check_legal()

    def test_window_shift_keeps_scheme_minimal(self, sc_model):
        conv = ConvergentAllocation({1, 2}, sc_model, window=4)
        # Heavy reads by 7 long ago, then writes only: the window no
        # longer justifies replicas beyond the threshold.  7 may remain
        # as threshold padding (keeping a current member avoids an
        # invalidation), but the scheme must shrink to exactly t.
        schedule = Schedule.parse("r7 r7 r7 r7 w1 w1 w1 w1 w1")
        conv.run(schedule)
        assert len(conv.current_scheme) == 2
        assert 1 in conv.current_scheme

    def test_pattern_shift_moves_replica(self, sc_model):
        conv = ConvergentAllocation({1, 2}, sc_model, window=8)
        # Phase 1 concentrates reads at 7, phase 2 at 9: after phase 2
        # fills the window, a write replicates to 9 and drops 7.
        phase1 = Schedule.parse("r7 r7 r7 r7 r7 r7 r7 r7 w1")
        phase2 = Schedule.parse("r9 r9 r9 r9 r9 r9 r9 r9 w1")
        conv.run(phase1 + phase2)
        assert 9 in conv.current_scheme
        assert 7 not in conv.current_scheme


class TestCaching:
    def test_capacity_below_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            WriteInvalidationCaching({1, 2, 3}, capacity=2)

    def test_foreign_reads_cache(self):
        cache = WriteInvalidationCaching({1, 2})
        allocation = cache.run(Schedule.parse("r5"))
        assert allocation[0].saving
        assert 5 in cache.current_scheme

    def test_write_keeps_mru_readers(self):
        cache = WriteInvalidationCaching({1, 2}, capacity=2)
        cache.run(Schedule.parse("r5 r6 w7"))
        # Writer 7 plus the most recently used reader 6.
        assert cache.current_scheme == frozenset({6, 7})

    def test_core_drifts_with_access_pattern(self):
        cache = WriteInvalidationCaching({1, 2}, capacity=2)
        cache.run(Schedule.parse("r5 w5 r6 w6"))
        assert 5 in cache.current_scheme or 6 in cache.current_scheme
        assert 1 not in cache.current_scheme

    def test_output_valid(self):
        cache = WriteInvalidationCaching({1, 2, 3}, capacity=3)
        allocation = cache.run(Schedule.parse("r7 r8 w9 r7 w1 r2 r3 w8"))
        allocation.check_legal()
        allocation.check_t_available(3)

    def test_reset_restores_initial_mru(self):
        cache = WriteInvalidationCaching({1, 2})
        first = cache.run(Schedule.parse("r5 w6 r7"))
        second = cache.run(Schedule.parse("r5 w6 r7"))
        assert first.steps == second.steps
