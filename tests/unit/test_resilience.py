"""Unit: retry policy backoff, dedup cache, and injector shutdown."""

from __future__ import annotations

import random

import pytest

from repro.cluster.resilience import DedupCache, RetryPolicy
from repro.distsim.failures import FailureInjector
from repro.distsim.network import Network
from repro.distsim.simulator import Simulator
from repro.exceptions import ClusterError


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ClusterError):
            RetryPolicy(attempts=0)
        with pytest.raises(ClusterError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ClusterError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ClusterError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.backoff(k, rng) for k in range(5)]
        assert delays[:3] == [0.1, 0.2, 0.4]
        assert delays[3] == delays[4] == 0.5  # capped

    def test_jitter_only_shrinks_and_is_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)

        def draw():
            rng = random.Random(42)
            return [policy.backoff(k, rng) for k in range(16)]

        first, second = draw(), draw()
        assert first == second
        assert all(0.05 <= delay <= 0.1 for delay in first)
        assert len(set(first)) > 1  # jitter actually varies

    def test_rng_for_streams_are_disjoint(self):
        policy = RetryPolicy(seed=3)
        a = [policy.rng_for(1).random() for _ in range(4)]
        b = [policy.rng_for(2).random() for _ in range(4)]
        assert a != b
        # ... but stable per node:
        assert a == [policy.rng_for(1).random() for _ in range(4)]

    def test_wire_round_trip(self):
        policy = RetryPolicy(
            attempts=6,
            base_delay=0.01,
            multiplier=3.0,
            max_delay=0.2,
            jitter=0.25,
            seed=11,
        )
        assert RetryPolicy.from_wire(policy.to_wire()) == policy


class TestDedupCache:
    def test_store_and_lookup(self):
        cache = DedupCache(capacity=4)
        cache.store(7, {"ok": True})
        assert 7 in cache
        assert cache.lookup(7) == {"ok": True}
        assert cache.lookup(8) is None

    def test_capacity_evicts_oldest(self):
        cache = DedupCache(capacity=2)
        cache.store(1, "a")
        cache.store(2, "b")
        cache.store(3, "c")
        assert 1 not in cache
        assert cache.lookup(2) == "b"
        assert cache.lookup(3) == "c"
        assert len(cache) == 2

    def test_overwrite_does_not_evict(self):
        cache = DedupCache(capacity=2)
        cache.store(1, "a")
        cache.store(2, "b")
        cache.store(1, "a2")  # refresh, not insert
        assert cache.lookup(1) == "a2"
        assert cache.lookup(2) == "b"

    def test_capacity_validated(self):
        with pytest.raises(ClusterError):
            DedupCache(capacity=0)


class TestFailureInjectorShutdown:
    def _network(self):
        simulator = Simulator()
        network = Network(simulator)
        network.add_nodes([1, 2, 3])
        return simulator, network

    def test_shutdown_cancels_pending_timers(self):
        simulator, network = self._network()
        injector = FailureInjector(network)
        injector.schedule_crash(1, delay=5.0)
        injector.schedule_crash(2, delay=6.0)
        injector.schedule_recovery(1, delay=9.0)
        assert injector.shutdown() == 3
        simulator.run()
        assert injector.crash_count == 0
        assert network.node(1).alive and network.node(2).alive

    def test_fired_timers_remove_themselves(self):
        simulator, network = self._network()
        injector = FailureInjector(network)
        injector.schedule_crash(1, delay=1.0)
        injector.schedule_recovery(1, delay=2.0)
        simulator.run()
        assert injector.crash_count == 1
        assert injector.recovery_count == 1
        assert injector.shutdown() == 0  # nothing left to cancel

    def test_shutdown_is_idempotent(self):
        simulator, network = self._network()
        injector = FailureInjector(network)
        injector.schedule_crash(3, delay=4.0)
        assert injector.shutdown() == 1
        assert injector.shutdown() == 0
