"""Unit tests for the OnlineDOM base machinery (repro.core.base)."""

from __future__ import annotations

import pytest

from repro.core.base import OnlineDOM, run_algorithm
from repro.exceptions import (
    AvailabilityViolationError,
    ConfigurationError,
    IllegalScheduleError,
)
from repro.model.request import ExecutedRequest, Request, read, write
from repro.model.schedule import Schedule


class EchoDOM(OnlineDOM):
    """Serves everything at the lowest scheme member; never saves."""

    name = "ECHO"

    def decide(self, request: Request) -> ExecutedRequest:
        if request.is_read:
            if request.processor in self.current_scheme:
                return ExecutedRequest(request, {request.processor})
            return ExecutedRequest(request, {min(self.current_scheme)})
        return ExecutedRequest(request, self.initial_scheme)


class MisbehavingDOM(OnlineDOM):
    """Deliberately broken variants used to exercise the validators."""

    name = "BROKEN"

    def __init__(self, scheme, mode):
        super().__init__(scheme)
        self.mode = mode

    def decide(self, request: Request) -> ExecutedRequest:
        if self.mode == "wrong-request":
            return ExecutedRequest(read(99), {min(self.initial_scheme)})
        if self.mode == "illegal-read":
            return ExecutedRequest(request, {999})
        if self.mode == "shrink":
            return ExecutedRequest(request, {request.processor})
        raise AssertionError("unknown mode")


class TestLifecycle:
    def test_run_produces_corresponding_schedule(self):
        schedule = Schedule.parse("r1 w2 r5")
        allocation = run_algorithm(EchoDOM({1, 2}), schedule)
        assert allocation.corresponds_to(schedule)

    def test_steps_taken_counts(self):
        dom = EchoDOM({1, 2})
        dom.online_step(read(1))
        dom.online_step(write(2))
        assert dom.steps_taken == 2

    def test_reset_clears_steps(self):
        dom = EchoDOM({1, 2})
        dom.online_step(read(1))
        dom.reset()
        assert dom.steps_taken == 0
        assert dom.current_scheme == dom.initial_scheme

    def test_allocation_schedule_reflects_partial_progress(self):
        dom = EchoDOM({1, 2})
        dom.online_step(read(1))
        assert len(dom.allocation_schedule()) == 1


class TestValidation:
    def test_answering_wrong_request_rejected(self):
        dom = MisbehavingDOM({1, 2}, "wrong-request")
        with pytest.raises(IllegalScheduleError):
            dom.online_step(write(1))

    def test_illegal_read_rejected(self):
        dom = MisbehavingDOM({1, 2}, "illegal-read")
        with pytest.raises(IllegalScheduleError):
            dom.online_step(read(5))

    def test_scheme_shrink_below_t_rejected(self):
        dom = MisbehavingDOM({1, 2}, "shrink")
        with pytest.raises(AvailabilityViolationError):
            dom.online_step(write(1))

    def test_threshold_defaults_to_scheme_size(self):
        assert EchoDOM({1, 2, 3}).threshold == 3

    def test_explicit_threshold_below_scheme_size(self):
        dom = EchoDOM({1, 2, 3}, threshold=2)
        assert dom.threshold == 2

    def test_threshold_above_scheme_size_rejected(self):
        with pytest.raises(ConfigurationError):
            EchoDOM({1, 2}, threshold=3)
