"""Unit tests for the beam-search OPT bound (repro.core.beam_optimal)."""

from __future__ import annotations

import pytest

from repro.core.beam_optimal import BeamOptimal, optimal_sandwich
from repro.core.offline_optimal import OfflineOptimal
from repro.exceptions import ConfigurationError
from repro.model.cost_model import stationary
from repro.model.schedule import Schedule
from repro.workloads.uniform import UniformWorkload

MODEL = stationary(0.2, 1.5)
SCHEME = frozenset({1, 2})


class TestSoundness:
    @pytest.mark.parametrize(
        "text",
        [
            "r5 r5 r5",
            "r5 w1 r5 r6 w6 r6",
            "w3 w4 w5 r3",
            "r1 r1 r2 w2 r2 r2 r2",
        ],
    )
    def test_beam_never_below_exact_opt(self, text):
        schedule = Schedule.parse(text)
        exact = OfflineOptimal(MODEL).optimal_cost(schedule, SCHEME)
        beam = BeamOptimal(MODEL).solve(schedule, SCHEME)
        assert beam.cost >= exact - 1e-9

    def test_witness_is_valid_and_priced_right(self):
        schedule = UniformWorkload(range(1, 8), 40, 0.3).generate(2)
        result = BeamOptimal(MODEL).solve(schedule, SCHEME)
        result.allocation.check_legal()
        result.allocation.check_t_available(2)
        assert result.allocation.corresponds_to(schedule)
        assert MODEL.schedule_cost(result.allocation) == pytest.approx(
            result.cost
        )

    def test_tight_on_save_once_schedules(self):
        # The structured targets contain the optimum here: save at the
        # reader, read locally, write back to the pair.
        schedule = Schedule.parse("r5 r5 r5 r5")
        exact = OfflineOptimal(MODEL).optimal_cost(schedule, SCHEME)
        beam = BeamOptimal(MODEL).solve(schedule, SCHEME)
        assert beam.cost == pytest.approx(exact)

    def test_handles_universes_beyond_the_exact_limit(self):
        # 20 processors: far past the exact DP's reach.
        schedule = UniformWorkload(range(1, 21), 60, 0.25).generate(7)
        result = BeamOptimal(MODEL, beam_width=32).solve(schedule, SCHEME)
        assert result.cost > 0
        result.allocation.check_legal()


class TestSandwich:
    def test_sandwich_brackets_the_exact_optimum(self):
        schedule = Schedule.parse("r5 r6 w1 r5 r6 w2 r5")
        sandwich = optimal_sandwich(schedule, SCHEME, MODEL)
        exact = OfflineOptimal(MODEL).optimal_cost(schedule, SCHEME)
        assert sandwich.lower <= exact + 1e-9
        assert exact <= sandwich.upper + 1e-9
        assert sandwich.contains(exact)

    def test_sandwich_on_large_instances(self):
        schedule = UniformWorkload(range(1, 16), 50, 0.3).generate(3)
        sandwich = optimal_sandwich(schedule, SCHEME, MODEL, beam_width=32)
        assert sandwich.lower <= sandwich.upper + 1e-9


class TestConfiguration:
    def test_beam_width_validated(self):
        with pytest.raises(ConfigurationError):
            BeamOptimal(MODEL, beam_width=0)

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            BeamOptimal(MODEL, threshold=1)

    def test_universe_guard(self):
        beam = BeamOptimal(MODEL, max_processors=5)
        schedule = UniformWorkload(range(1, 10), 10, 0.3).generate(0)
        with pytest.raises(ConfigurationError):
            beam.solve(schedule, SCHEME)

    def test_narrow_beam_still_sound(self):
        schedule = Schedule.parse("r5 w1 r6 w2 r5 r6")
        exact = OfflineOptimal(MODEL).optimal_cost(schedule, SCHEME)
        narrow = BeamOptimal(MODEL, beam_width=1).solve(schedule, SCHEME)
        wide = BeamOptimal(MODEL, beam_width=256).solve(schedule, SCHEME)
        assert narrow.cost >= wide.cost - 1e-9 >= exact - 1e-9
