"""Unit tests for the competitiveness harness (repro.core.competitive)."""

from __future__ import annotations

import math

import pytest

from repro.core.competitive import (
    CompetitivenessHarness,
    RatioObservation,
    RatioReport,
    compare_algorithms,
    cost_of,
    measure_ratios,
)
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import mobile, stationary
from repro.model.schedule import Schedule


class TestObservations:
    def test_ratio(self):
        obs = RatioObservation(Schedule.parse("r1"), 3.0, 2.0, True)
        assert obs.ratio == pytest.approx(1.5)

    def test_zero_reference_with_positive_cost_is_infinite(self):
        # The mobile-model signature of a non-competitive algorithm.
        obs = RatioObservation(Schedule.parse("r1"), 1.0, 0.0, True)
        assert math.isinf(obs.ratio)

    def test_zero_over_zero_is_one(self):
        obs = RatioObservation(Schedule.parse("r1"), 0.0, 0.0, True)
        assert obs.ratio == 1.0


class TestReports:
    def _report(self):
        observations = (
            RatioObservation(Schedule.parse("r1"), 2.0, 2.0, True),
            RatioObservation(Schedule.parse("r2"), 3.0, 2.0, True),
        )
        return RatioReport("SA", observations)

    def test_max_and_mean(self):
        report = self._report()
        assert report.max_ratio == pytest.approx(1.5)
        assert report.mean_ratio == pytest.approx(1.25)

    def test_worst_observation(self):
        assert self._report().worst.algorithm_cost == 3.0

    def test_within_bound(self):
        report = self._report()
        assert report.within(1.5)
        assert not report.within(1.4)

    def test_empty_report_rejected(self):
        with pytest.raises(ConfigurationError):
            RatioReport("SA", ())


class TestHarness:
    def test_cost_of_runs_fresh(self, sc_model):
        sa = StaticAllocation({1, 2})
        schedule = Schedule.parse("r5 r5")
        assert cost_of(sa, schedule, sc_model) == pytest.approx(
            2 * (1 + sc_model.c_c + sc_model.c_d)
        )

    def test_exact_reference_small_instances(self, sc_model):
        harness = CompetitivenessHarness(sc_model)
        cost, exact = harness.reference_cost(
            Schedule.parse("r5"), frozenset({1, 2})
        )
        assert exact
        assert cost == pytest.approx(1 + sc_model.c_c + sc_model.c_d)

    def test_falls_back_to_bound_for_large_universes(self, sc_model):
        harness = CompetitivenessHarness(sc_model, exact_limit=3)
        schedule = Schedule.parse("r3 r4 r5 r6")
        cost, exact = harness.reference_cost(schedule, frozenset({1, 2}))
        assert not exact
        assert cost > 0

    def test_measure_ratios_at_least_one(self, sc_model):
        report = measure_ratios(
            lambda: StaticAllocation({1, 2}),
            [Schedule.parse("r5 r5 r5")],
            sc_model,
        )
        assert report.max_ratio >= 1.0 - 1e-9
        assert report.algorithm_name == "SA"

    def test_measure_rejects_empty_suite(self, sc_model):
        with pytest.raises(ConfigurationError):
            measure_ratios(lambda: StaticAllocation({1, 2}), [], sc_model)

    def test_compare_algorithms(self, sc_model):
        suite = [Schedule.parse("r5 r5 r5 r5")]
        reports = compare_algorithms(
            {
                "SA": lambda: StaticAllocation({1, 2}),
                "DA": lambda: DynamicAllocation({1, 2}, primary=2),
            },
            suite,
            sc_model,
        )
        assert set(reports) == {"SA", "DA"}
        # Repeated foreign reads: DA saves once, SA refetches — with
        # c_d = 1.5 the DA route is cheaper.
        assert reports["DA"].max_ratio < reports["SA"].max_ratio

    def test_sa_unbounded_in_mobile_model(self):
        model = mobile(0.5, 2.0)
        harness = CompetitivenessHarness(model)
        long_reads = Schedule.parse("r5") * 20
        report = harness.measure(lambda: StaticAllocation({1, 2}), [long_reads])
        # OPT saves once (cost c_c + c_d) and reads free afterwards;
        # SA pays every time: ratio 20.
        assert report.max_ratio == pytest.approx(20.0)

    def test_ratios_are_exact_against_witnessed_opt(self):
        model = stationary(0.3, 1.2)
        harness = CompetitivenessHarness(model)
        schedule = Schedule.parse("r4 w1 r4 r4 w2 r4")
        obs = harness.observe(DynamicAllocation({1, 2}, primary=2), schedule)
        assert obs.exact_reference
        assert obs.algorithm_cost >= obs.reference_cost - 1e-9
