"""Unit tests for repro.model.cost_model and accounting."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.model.accounting import ZERO, CostBreakdown, total
from repro.model.allocation import AllocationSchedule
from repro.model.cost_model import CostModel, mobile, stationary
from repro.model.request import ExecutedRequest, read, write


class TestConstruction:
    def test_stationary_normalizes_io_to_one(self):
        model = stationary(0.5, 1.0)
        assert model.c_io == 1.0
        assert model.is_stationary
        assert not model.is_mobile

    def test_mobile_has_zero_io(self):
        model = mobile(0.5, 1.0)
        assert model.c_io == 0.0
        assert model.is_mobile

    def test_rejects_control_dearer_than_data(self):
        # Figure 1's "Cannot be true" region.
        with pytest.raises(ConfigurationError):
            stationary(2.0, 1.0)

    def test_infeasible_region_opt_in(self):
        model = stationary(2.0, 1.0, allow_infeasible=True)
        assert model.c_c == 2.0

    def test_rejects_negative_costs(self):
        with pytest.raises(ConfigurationError):
            CostModel(1.0, -0.1, 1.0)

    def test_rejects_non_finite_costs(self):
        with pytest.raises(ConfigurationError):
            CostModel(1.0, float("nan"), 1.0)

    def test_normalized_rescaling(self):
        model = CostModel(2.0, 1.0, 3.0)
        normalized = model.normalized()
        assert normalized.c_io == 1.0
        assert normalized.c_c == pytest.approx(0.5)
        assert normalized.c_d == pytest.approx(1.5)

    def test_mobile_cannot_be_normalized(self):
        with pytest.raises(ConfigurationError):
            mobile(0.5, 1.0).normalized()

    def test_str_includes_flavor(self):
        assert str(stationary(0.1, 0.2)).startswith("SC")
        assert str(mobile(0.1, 0.2)).startswith("MC")


class TestPricing:
    def test_price_combines_components(self):
        model = stationary(0.25, 2.0)
        breakdown = CostBreakdown(io_ops=3, control_messages=2, data_messages=1)
        assert model.price(breakdown) == pytest.approx(3 + 0.5 + 2.0)

    def test_mobile_ignores_io(self):
        model = mobile(0.25, 2.0)
        breakdown = CostBreakdown(io_ops=100, control_messages=1, data_messages=1)
        assert model.price(breakdown) == pytest.approx(2.25)

    def test_request_cost_remote_read(self):
        # Paper §1.2: remote read costs c_c + c_io + c_d.
        model = stationary(0.3, 1.7)
        executed = ExecutedRequest(read(5), {1})
        assert model.request_cost(executed, frozenset({1, 2})) == pytest.approx(
            0.3 + 1.0 + 1.7
        )

    def test_schedule_cost_equals_sum_of_request_costs(self):
        model = stationary(0.2, 1.5)
        allocation = AllocationSchedule(
            frozenset({1, 2}),
            (
                ExecutedRequest(read(3), {1}, saving=True),
                ExecutedRequest(write(2), {1, 2}),
                ExecutedRequest(read(2), {2}),
            ),
        )
        per_request = model.request_costs(allocation)
        assert model.schedule_cost(allocation) == pytest.approx(sum(per_request))
        assert len(per_request) == 3

    def test_saving_read_free_in_mobile_model(self):
        # Paper §3.3: "the cost of a saving-read does not differ from
        # that of a non-saving read" when c_io = 0.
        model = mobile(0.5, 2.0)
        scheme = frozenset({1, 2})
        plain = ExecutedRequest(read(5), {1})
        saving = ExecutedRequest(read(5), {1}, saving=True)
        assert model.request_cost(plain, scheme) == pytest.approx(
            model.request_cost(saving, scheme)
        )

    def test_local_read_free_in_mobile_model(self):
        # Paper §3.3: "the cost of a read request executed only locally
        # is zero".
        model = mobile(0.5, 2.0)
        executed = ExecutedRequest(read(1), {1})
        assert model.request_cost(executed, frozenset({1, 2})) == 0.0


class TestBreakdownAlgebra:
    def test_addition(self):
        left = CostBreakdown(1, 2, 3)
        right = CostBreakdown(10, 20, 30)
        assert left + right == CostBreakdown(11, 22, 33)

    def test_scaling(self):
        assert CostBreakdown(1, 2, 3) * 3 == CostBreakdown(3, 6, 9)
        assert 2 * CostBreakdown(1, 1, 1) == CostBreakdown(2, 2, 2)

    def test_zero_identity(self):
        breakdown = CostBreakdown(4, 5, 6)
        assert breakdown + ZERO == breakdown

    def test_total_helper(self):
        assert total(
            [CostBreakdown(1, 0, 0), CostBreakdown(0, 1, 0), CostBreakdown(0, 0, 1)]
        ) == CostBreakdown(1, 1, 1)

    def test_total_messages(self):
        assert CostBreakdown(5, 2, 3).total_messages == 5

    def test_str(self):
        assert str(CostBreakdown(1, 2, 3)) == "1 io + 2 ctrl + 3 data"
