"""Unit tests for schedule statistics (repro.workloads.stats)."""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import stationary
from repro.model.schedule import Schedule
from repro.workloads.stats import analyze, describe


class TestSegments:
    def test_segmentation_by_writes(self):
        stats = analyze(Schedule.parse("r1 r2 w3 r4 w5 r6 r6"))
        assert len(stats.segments) == 3
        assert [s.length for s in stats.segments] == [2, 1, 2]

    def test_trailing_segment_always_present(self):
        stats = analyze(Schedule.parse("w1"))
        assert len(stats.segments) == 2
        assert stats.segments[-1].length == 0

    def test_distinct_vs_repeat_reads(self):
        stats = analyze(Schedule.parse("r1 r1 r2 r1"))
        (segment, *_rest) = stats.segments
        assert segment.distinct_readers == 2
        assert segment.repeat_reads == 2
        assert segment.repeat_fraction == pytest.approx(0.5)

    def test_repeats_reset_at_writes(self):
        stats = analyze(Schedule.parse("r1 w2 r1"))
        assert [s.repeat_reads for s in stats.segments] == [0, 0]


class TestAggregates:
    def test_counts(self):
        stats = analyze(Schedule.parse("r1 w2 r3"))
        assert stats.length == 3
        assert stats.write_count == 1
        assert stats.read_count == 2
        assert stats.distinct_processors == 3

    def test_locality(self):
        assert analyze(Schedule.parse("r1 r1 r1")).locality == 1.0
        assert analyze(Schedule.parse("r1 r2 r3")).locality == 0.0
        assert analyze(Schedule.parse("r1")).locality == 0.0

    def test_empty_schedule(self):
        stats = analyze(Schedule())
        assert stats.length == 0
        assert stats.write_fraction == 0.0
        assert stats.mean_distinct_readers == 0.0

    def test_mean_distinct_readers(self):
        stats = analyze(Schedule.parse("r1 r2 w3 r4 w5"))
        # Segments: {1,2}, {4}, {}.
        assert stats.mean_distinct_readers == pytest.approx(1.0)


class TestPredictivePower:
    def test_repeat_fraction_predicts_da_advantage(self):
        # High repeat fraction: DA should beat SA; low: vice versa (at
        # prices in the Unknown wedge where structure decides).
        model = stationary(0.1, 0.5)
        scheme = frozenset({1, 2})
        repeat_heavy = Schedule.parse("r5 r5 r5 r5 r5 r5 w1") * 3
        one_shot = Schedule.parse("r5 r6 r7 w1") * 3
        assert analyze(repeat_heavy).repeat_read_fraction > 0.5
        assert analyze(one_shot).repeat_read_fraction == 0.0

        def costs(schedule):
            sa = model.schedule_cost(StaticAllocation(scheme).run(schedule))
            da = model.schedule_cost(
                DynamicAllocation(scheme, primary=2).run(schedule)
            )
            return sa, da

        sa_cost, da_cost = costs(repeat_heavy)
        assert da_cost < sa_cost
        sa_cost, da_cost = costs(one_shot)
        assert sa_cost < da_cost


class TestDescribe:
    def test_describe_mentions_the_essentials(self):
        text = describe(Schedule.parse("r5 r5 r5 r5 w1 r5 r5"))
        assert "7 requests" in text
        assert "write fraction" in text
        assert "favour DA" in text

    def test_describe_one_shot_hint(self):
        text = describe(Schedule.parse("r5 r6 r7 w1"))
        assert "one-shot readers" in text

    def test_describe_empty(self):
        assert describe(Schedule()) == "empty schedule"
