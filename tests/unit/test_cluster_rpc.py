"""Unit: the live cluster's wire format (framing + message codec)."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.cluster.rpc import (
    MAX_FRAME_BYTES,
    encode_frame,
    message_to_wire,
    read_frame,
    version_from_wire,
    version_to_wire,
    wire_to_message,
    write_frame,
)
from repro.cluster.transport import Address
from repro.distsim.messages import (
    Ack,
    DataTransfer,
    Invalidate,
    ReadRequest,
    VersionInquiry,
    VersionReport,
)
from repro.exceptions import ClusterError
from repro.storage.versions import ObjectVersion


def read_all_frames(data: bytes) -> list:
    """Feed bytes into a StreamReader and drain every frame from it.

    The reader is built inside the coroutine: asyncio streams must be
    created while a loop is running."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        seen = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return seen
            seen.append(frame)

    return asyncio.run(go())


def read_one_frame(data: bytes):
    frames = read_all_frames(data)
    return frames[0] if frames else None


class TestFraming:
    def test_round_trip(self):
        payload = {"type": "ping", "nested": {"a": [1, 2, 3]}}
        assert read_one_frame(encode_frame(payload)) == payload

    def test_multiple_frames_in_one_stream(self):
        frames = [{"type": "ping", "n": n} for n in range(3)]
        data = b"".join(encode_frame(frame) for frame in frames)
        assert read_all_frames(data) == frames

    def test_clean_eof_returns_none(self):
        assert read_one_frame(b"") is None

    def test_mid_header_truncation_raises(self):
        with pytest.raises(ClusterError, match="mid-header"):
            read_one_frame(b"\x00\x00")

    def test_mid_frame_truncation_raises(self):
        with pytest.raises(ClusterError, match="mid-frame"):
            read_one_frame(encode_frame({"type": "ping"})[:-2])

    def test_oversize_frame_rejected(self):
        with pytest.raises(ClusterError, match="exceeds"):
            read_one_frame(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_malformed_json_rejected(self):
        body = b"{not json"
        with pytest.raises(ClusterError, match="malformed"):
            read_one_frame(struct.pack(">I", len(body)) + body)

    def test_non_object_payload_rejected(self):
        body = b"[1,2,3]"
        with pytest.raises(ClusterError, match="'type'"):
            read_one_frame(struct.pack(">I", len(body)) + body)

    def test_typeless_object_rejected(self):
        body = b'{"a":1}'
        with pytest.raises(ClusterError, match="'type'"):
            read_one_frame(struct.pack(">I", len(body)) + body)

    def test_write_frame_is_deterministic(self):
        left = encode_frame({"b": 1, "a": 2, "type": "x"})
        right = encode_frame({"a": 2, "type": "x", "b": 1})
        assert left == right  # sorted keys: byte-stable on the wire

    def test_write_frame_to_stream(self):
        transcript = bytearray()

        class FakeWriter:
            def write(self, data):
                transcript.extend(data)

            async def drain(self):
                pass

        asyncio.run(write_frame(FakeWriter(), {"type": "ping"}))
        assert read_one_frame(bytes(transcript)) == {"type": "ping"}


class TestVersionCodec:
    def test_round_trip(self):
        version = ObjectVersion(7, 3, payload="blob")
        assert version_from_wire(version_to_wire(version)) == version

    def test_payload_free_round_trip(self):
        version = ObjectVersion(0, 1)
        wire = version_to_wire(version)
        assert "payload" not in wire
        assert version_from_wire(wire) == version

    def test_none_passes_through(self):
        assert version_to_wire(None) is None
        assert version_from_wire(None) is None


MESSAGES = [
    ReadRequest(4, 1, request_id=9),
    Invalidate(2, 5, version_number=3, request_id=11),
    Ack(1, 2, request_id=4, info="joined"),
    Ack(1, 2, request_id=4),
    VersionInquiry(3, 1, request_id=6),
    VersionReport(1, 3, request_id=6, version_number=8, holds_copy=True),
    DataTransfer(
        1, 4, version=ObjectVersion(2, 1), request_id=7, save_copy=True
    ),
    DataTransfer(
        1, 4, version=ObjectVersion(2, 1), request_id=7, save_copy=False
    ),
]


class TestMessageCodec:
    @pytest.mark.parametrize(
        "message", MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_round_trip(self, message):
        wire = message_to_wire(message)
        assert wire["type"] == "msg"
        assert wire_to_message(wire) == message

    def test_wire_form_is_json_clean(self):
        import json

        for message in MESSAGES:
            json.dumps(message_to_wire(message))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ClusterError, match="unknown protocol message"):
            wire_to_message({"type": "msg", "kind": "gossip"})

    def test_unregistered_type_rejected(self):
        class Exotic(ReadRequest):
            pass

        with pytest.raises(ClusterError, match="no wire encoding"):
            message_to_wire(Exotic(1, 2))


class TestAddress:
    def test_tcp_render_parse(self):
        address = Address("tcp", host="127.0.0.1", port=4001)
        assert address.render() == "tcp:127.0.0.1:4001"
        assert Address.parse(address.render()) == address

    def test_unix_render_parse(self):
        address = Address("unix", path="/tmp/node-1.sock")
        assert address.render() == "unix:/tmp/node-1.sock"
        assert Address.parse(address.render()) == address

    @pytest.mark.parametrize(
        "text", ["", "tcp:", "tcp:host:", "tcp:host:notaport", "unix:", "smoke:1"]
    )
    def test_garbage_rejected(self, text):
        with pytest.raises(ClusterError):
            Address.parse(text)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ClusterError):
            Address("carrier-pigeon")

    def test_unix_requires_path(self):
        with pytest.raises(ClusterError):
            Address("unix")
