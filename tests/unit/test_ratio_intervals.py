"""Unit tests for ratio intervals on large instances."""

from __future__ import annotations

import pytest

from repro.core.competitive import CompetitivenessHarness, RatioObservation
from repro.core.dynamic_allocation import DynamicAllocation
from repro.model.cost_model import stationary
from repro.model.schedule import Schedule
from repro.workloads.uniform import UniformWorkload

MODEL = stationary(0.2, 1.5)
SCHEME = frozenset({1, 2})


class TestObservationIntervals:
    def test_exact_observation_has_degenerate_interval(self):
        obs = RatioObservation(Schedule.parse("r1"), 3.0, 2.0, True)
        assert obs.ratio == pytest.approx(1.5)
        assert obs.ratio_lower == pytest.approx(1.5)

    def test_interval_orders_correctly(self):
        obs = RatioObservation(
            Schedule.parse("r1"), 6.0, 2.0, False, reference_upper=3.0
        )
        assert obs.ratio == pytest.approx(3.0)        # vs the lower bound
        assert obs.ratio_lower == pytest.approx(2.0)  # vs the upper bound
        assert obs.ratio_lower <= obs.ratio


class TestHarnessWithBeam:
    def test_small_instances_stay_exact(self):
        harness = CompetitivenessHarness(MODEL, beam_width=16)
        obs = harness.observe(
            DynamicAllocation(SCHEME, primary=2), Schedule.parse("r5 r5")
        )
        assert obs.exact_reference
        assert obs.reference_upper is None
        assert obs.ratio == obs.ratio_lower

    def test_large_instances_get_an_interval(self):
        harness = CompetitivenessHarness(MODEL, exact_limit=6, beam_width=32)
        schedule = UniformWorkload(range(1, 15), 40, 0.3).generate(4)
        obs = harness.observe(DynamicAllocation(SCHEME, primary=2), schedule)
        assert not obs.exact_reference
        assert obs.reference_upper is not None
        assert obs.reference_cost <= obs.reference_upper + 1e-9
        # The true ratio lies in [ratio_lower, ratio]; both are finite
        # and at least ... well, the lower end can dip below 1 only if
        # the beam found a cheaper strategy than the algorithm — it is
        # itself a legal offline strategy, so that is legitimate.
        assert obs.ratio_lower <= obs.ratio

    def test_interval_brackets_the_exact_ratio_when_checkable(self):
        # Use an instance small enough to solve exactly, but force the
        # harness down the interval path by shrinking its exact limit.
        schedule = UniformWorkload(range(1, 9), 24, 0.3).generate(2)
        interval = CompetitivenessHarness(
            MODEL, exact_limit=4, beam_width=64
        ).observe(DynamicAllocation(SCHEME, primary=2), schedule)
        exact = CompetitivenessHarness(MODEL).observe(
            DynamicAllocation(SCHEME, primary=2), schedule
        )
        assert exact.exact_reference and not interval.exact_reference
        assert interval.ratio_lower - 1e-9 <= exact.ratio <= interval.ratio + 1e-9

    def test_beam_disabled_by_default(self):
        harness = CompetitivenessHarness(MODEL, exact_limit=4)
        schedule = UniformWorkload(range(1, 9), 16, 0.3).generate(1)
        obs = harness.observe(DynamicAllocation(SCHEME, primary=2), schedule)
        assert obs.reference_upper is None
