"""Unit tests for the discrete-event engine (repro.distsim.events/.simulator)."""

from __future__ import annotations

import pytest

from repro.distsim.events import EventQueue
from repro.distsim.simulator import Simulator
from repro.exceptions import SimulationError


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        queue.pop().action()
        queue.pop().action()
        assert fired == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append("first"))
        queue.push(1.0, lambda: fired.append("second"))
        queue.pop().action()
        queue.pop().action()
        assert fired == ["first", "second"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(3.0, lambda: None)
        assert queue.peek_time() == 3.0

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().peek_time()


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0, 5.0]
        assert sim.now == 5.0

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_quiescence(self):
        sim = Simulator()
        assert sim.quiescent()
        sim.schedule(1.0, lambda: None)
        assert not sim.quiescent()
        sim.run()
        assert sim.quiescent()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_event_storm_fuse(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_is_running_flag(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.is_running))
        assert not sim.is_running
        sim.run()
        assert seen == [True]
        assert not sim.is_running

    def test_events_fired_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_fired == 2
