"""Unit tests for the OPT lower bound (repro.core.offline_bounds)."""

from __future__ import annotations

import pytest

from repro.core.offline_bounds import optimal_cost_lower_bound
from repro.core.offline_optimal import optimal_cost
from repro.exceptions import ConfigurationError
from repro.model.cost_model import mobile, stationary
from repro.model.schedule import Schedule

SCHEDULES = [
    "r1",
    "r5",
    "w1",
    "w5 r5 r5",
    "r3 r4 r5 w1 r3 r4 r5 w2",
    "r1 r1 r2 w2 r2 r2 r2",
    "w3 w4 w5 r3 r4 r5",
    "r5 w1 r5 w1 r5 w1",
]


class TestSoundness:
    @pytest.mark.parametrize("text", SCHEDULES)
    @pytest.mark.parametrize(
        "model",
        [stationary(0.2, 1.5), stationary(0.0, 0.0), mobile(0.5, 2.0)],
        ids=["sc", "sc-free-comm", "mc"],
    )
    def test_bound_never_exceeds_opt(self, text, model):
        schedule = Schedule.parse(text)
        scheme = {1, 2}
        bound = optimal_cost_lower_bound(schedule, scheme, model)
        exact = optimal_cost(schedule, scheme, model)
        assert bound <= exact + 1e-9

    @pytest.mark.parametrize("threshold", [2, 3])
    def test_bound_sound_for_higher_thresholds(self, threshold):
        model = stationary(0.2, 1.5)
        schedule = Schedule.parse("r4 r5 w1 r4 r5 w2 r6")
        scheme = set(range(1, threshold + 1))
        bound = optimal_cost_lower_bound(schedule, scheme, model, threshold)
        exact = optimal_cost(schedule, scheme, model, threshold)
        assert bound <= exact + 1e-9


class TestStructure:
    def test_empty_schedule(self):
        model = stationary(0.2, 1.5)
        assert optimal_cost_lower_bound(Schedule(), {1, 2}, model) == 0.0

    def test_reads_charge_io(self):
        model = stationary(0.2, 1.5)
        bound = optimal_cost_lower_bound(Schedule.parse("r1 r1"), {1, 2}, model)
        assert bound >= 2.0

    def test_writes_charge_t_ios_and_data(self):
        model = stationary(0.2, 1.5)
        bound = optimal_cost_lower_bound(Schedule.parse("w1"), {1, 2}, model)
        assert bound == pytest.approx(2.0 + 1.5)

    def test_first_segment_charges_fetches(self):
        model = stationary(0.2, 1.5)
        # Reader 5 outside the initial scheme must fetch at least once.
        bound = optimal_cost_lower_bound(Schedule.parse("r5"), {1, 2}, model)
        assert bound == pytest.approx(1.0 + 0.2 + 1.5)

    def test_later_segments_allow_t_free_members(self):
        model = stationary(0.2, 1.5)
        # After w1, readers 5 and 6 could both have been in the write's
        # execution set (t = 2): no join extra is provable.
        bound = optimal_cost_lower_bound(
            Schedule.parse("w1 r5 r6"), {1, 2}, model
        )
        assert bound == pytest.approx((2.0 + 1.5) + 2 * 1.0)

    def test_extra_readers_beyond_t_charged(self):
        model = stationary(0.2, 1.5)
        bound = optimal_cost_lower_bound(
            Schedule.parse("w1 r5 r6 r7"), {1, 2}, model
        )
        join_extra = min(0.2 + 1.5, 1.5 + 1.0)
        assert bound == pytest.approx((2.0 + 1.5) + 3 * 1.0 + join_extra)

    def test_rejects_threshold_below_two(self):
        with pytest.raises(ConfigurationError):
            optimal_cost_lower_bound(
                Schedule.parse("r1"), {1, 2}, stationary(0.1, 0.2), threshold=1
            )

    def test_tight_on_pure_member_reads(self):
        model = stationary(0.2, 1.5)
        schedule = Schedule.parse("r1 r2 r1")
        bound = optimal_cost_lower_bound(schedule, {1, 2}, model)
        exact = optimal_cost(schedule, {1, 2}, model)
        assert bound == pytest.approx(exact)
