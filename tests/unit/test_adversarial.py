"""Unit tests for the adversarial schedule families and their effect.

These tests verify not just the shapes of the generated schedules but
that each family actually *hurts* its target algorithm the way the
paper's propositions require.
"""

from __future__ import annotations

import pytest

from repro.core.competitive import CompetitivenessHarness
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import mobile, stationary
from repro.workloads.adversarial import (
    adversarial_suite,
    da_killer,
    ping_pong,
    read_mostly_bursts,
    sa_killer,
    single_reader_then_writer,
)


class TestShapes:
    def test_sa_killer_is_pure_reads(self):
        schedule = sa_killer(5, 10)
        assert len(schedule) == 10
        assert schedule.write_count == 0
        assert schedule.processors == frozenset({5})

    def test_da_killer_rounds(self):
        schedule = da_killer([5, 6], writer=1, rounds=3)
        assert len(schedule) == 9
        assert schedule.write_count == 3
        assert schedule.writes_by(1) == 3

    def test_da_killer_rejects_writer_among_readers(self):
        with pytest.raises(ConfigurationError):
            da_killer([1, 5], writer=1, rounds=2)

    def test_ping_pong_alternates(self):
        schedule = ping_pong(1, 5, rounds=2, reads_per_turn=1)
        assert str(schedule) == "w1 r1 w5 r5 w1 r1 w5 r5"

    def test_ping_pong_needs_distinct_processors(self):
        with pytest.raises(ConfigurationError):
            ping_pong(1, 1, rounds=1)

    def test_read_mostly_bursts_round_robins(self):
        schedule = read_mostly_bursts([5, 6], writer=1, burst_length=4, rounds=1)
        assert str(schedule) == "r5 r6 r5 r6 w1"

    def test_suite_needs_two_outsiders(self):
        with pytest.raises(ConfigurationError):
            adversarial_suite({1, 2}, [5])

    def test_suite_members_are_non_trivial(self):
        suite = adversarial_suite({1, 2}, [5, 6, 7], rounds=3)
        assert len(suite) >= 5
        assert all(len(schedule) > 0 for schedule in suite)


class TestEffectOnSA:
    def test_ratio_approaches_theorem_1_factor(self):
        # Proposition 1: repeated foreign reads drive SA's ratio toward
        # 1 + c_c + c_d from below as the schedule grows.
        model = stationary(0.3, 1.2)
        harness = CompetitivenessHarness(model)
        target = 1 + 0.3 + 1.2
        previous = 0.0
        for repetitions in (4, 16, 64):
            report = harness.measure(
                lambda: StaticAllocation({1, 2}),
                [sa_killer(5, repetitions)],
            )
            assert previous <= report.max_ratio <= target + 1e-9
            previous = report.max_ratio
        assert previous > target * 0.9

    def test_unbounded_ratio_in_mobile_model(self):
        # Proposition 3: the same family is unbounded when c_io = 0.
        model = mobile(0.3, 1.2)
        harness = CompetitivenessHarness(model)
        ratios = [
            harness.measure(
                lambda: StaticAllocation({1, 2}), [sa_killer(5, k)]
            ).max_ratio
            for k in (5, 20, 80)
        ]
        assert ratios[0] < ratios[1] < ratios[2]
        assert ratios[2] >= 80.0 - 1e-9


class TestEffectOnDA:
    def test_ratio_exceeds_prop2_bound(self):
        # Proposition 2: with cheap communication, distinct one-shot
        # readers between writes push DA's ratio past 1.5.
        model = stationary(0.01, 0.02)
        harness = CompetitivenessHarness(model)
        schedule = da_killer([5, 6, 7], writer=1, rounds=4)
        report = harness.measure(
            lambda: DynamicAllocation({1, 2}, primary=2), [schedule]
        )
        assert report.max_ratio > 1.5

    def test_ratio_respects_theorem_2_bound(self):
        # ... but never beyond the 2 + 2 c_c upper bound.
        for c_c, c_d in [(0.01, 0.02), (0.2, 0.4), (0.5, 0.6)]:
            model = stationary(c_c, c_d)
            harness = CompetitivenessHarness(model)
            schedule = da_killer([5, 6, 7, 8], writer=1, rounds=4)
            report = harness.measure(
                lambda: DynamicAllocation({1, 2}, primary=2), [schedule]
            )
            assert report.max_ratio <= 2 + 2 * c_c + 1e-9

    def test_single_reader_family_alias(self):
        assert single_reader_then_writer(5, 1, 3) == da_killer([5], 1, 3)
