"""Unit: the write-ahead log, snapshots and NodeDurability folding."""

from __future__ import annotations

import os
import struct

import pytest

from repro.cluster.durability import (
    DurableState,
    NodeDurability,
    node_state_dir,
    snapshot_path,
    wal_path,
)
from repro.cluster.metrics import NodeMetrics
from repro.exceptions import StorageError
from repro.storage.snapshot import SnapshotStore
from repro.storage.versions import ObjectVersion
from repro.storage.wal import (
    MAX_RECORD_BYTES,
    WriteAheadLog,
    inject_tail_corruption,
    inject_torn_tail,
)


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "wal.log")


class TestAppendReplay:
    def test_round_trip(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.append("seed", {"version": {"number": 0, "writer": 1}})
        wal.append("object", {"version": {"number": 3, "writer": 2}})
        wal.append("inval")
        wal.close()

        result = WriteAheadLog(log_path).replay()
        assert not result.damaged
        assert result.truncated_bytes == 0
        assert [r.kind for r in result.records] == ["seed", "object", "inval"]
        assert [r.seq for r in result.records] == [1, 2, 3]
        assert result.records[1].payload["version"]["number"] == 3
        assert result.last_seq == 3

    def test_missing_file_replays_empty(self, log_path):
        result = WriteAheadLog(log_path).replay()
        assert result.records == ()
        assert not result.damaged

    def test_replay_resumes_sequence_numbers(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.append("a")
        wal.append("b")
        wal.close()
        resumed = WriteAheadLog(log_path)
        resumed.replay()
        assert resumed.append("c").seq == 3

    def test_oversized_record_rejected(self, log_path):
        wal = WriteAheadLog(log_path)
        with pytest.raises(StorageError):
            wal.append("blob", {"data": "x" * (MAX_RECORD_BYTES + 1)})
        assert wal.size() == 0  # nothing was written

    def test_reset_truncates_but_keeps_numbering(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.append("a")
        wal.append("b")
        wal.reset()
        assert wal.size() == 0
        assert wal.append("c").seq == 3

    def test_resume_from_validates(self, log_path):
        with pytest.raises(StorageError):
            WriteAheadLog(log_path).resume_from(0)


class TestDamage:
    def _filled(self, log_path, count=5):
        wal = WriteAheadLog(log_path)
        for index in range(count):
            wal.append("object", {"version": {"number": index, "writer": 1}})
        wal.close()
        return wal

    def test_torn_tail_truncates_to_valid_prefix(self, log_path):
        self._filled(log_path)
        removed = inject_torn_tail(log_path, 3)
        assert removed == 3
        result = WriteAheadLog(log_path).replay()
        assert result.damaged
        assert result.truncated_bytes > 0
        assert [r.seq for r in result.records] == [1, 2, 3, 4]

    def test_damaged_log_is_clean_after_replay(self, log_path):
        """Replay physically cuts the damage off, so a second replay
        of the same file reports an undamaged (shorter) log."""
        self._filled(log_path)
        inject_torn_tail(log_path, 1)
        WriteAheadLog(log_path).replay()
        again = WriteAheadLog(log_path).replay()
        assert not again.damaged
        assert len(again.records) == 4

    def test_append_continues_after_damage(self, log_path):
        self._filled(log_path)
        inject_torn_tail(log_path, 2)
        wal = WriteAheadLog(log_path)
        wal.replay()
        record = wal.append("object", {"version": {"number": 9, "writer": 1}})
        assert record.seq == 5  # right after the last surviving record
        wal.close()
        result = WriteAheadLog(log_path).replay()
        assert not result.damaged
        assert result.records[-1].seq == 5

    def test_flipped_byte_fails_crc(self, log_path):
        self._filled(log_path)
        assert inject_tail_corruption(log_path, offset_from_end=1)
        result = WriteAheadLog(log_path).replay()
        assert result.damaged
        assert [r.seq for r in result.records] == [1, 2, 3, 4]

    def test_whole_log_torn_away(self, log_path):
        self._filled(log_path, count=2)
        inject_torn_tail(log_path, os.path.getsize(log_path))
        result = WriteAheadLog(log_path).replay()
        assert result.records == ()
        assert not result.damaged  # an empty file is a valid empty log

    def test_length_bomb_is_damage(self, log_path):
        self._filled(log_path, count=2)
        with open(log_path, "ab") as handle:
            handle.write(struct.pack(">II", MAX_RECORD_BYTES + 1, 0))
            handle.write(b"x" * 16)
        result = WriteAheadLog(log_path).replay()
        assert result.damaged
        assert len(result.records) == 2
        assert not WriteAheadLog(log_path).replay().damaged

    def test_garbage_tail_is_damage(self, log_path):
        self._filled(log_path, count=3)
        with open(log_path, "ab") as handle:
            handle.write(b"\x00\x01garbage-not-a-frame")
        result = WriteAheadLog(log_path).replay()
        assert result.damaged
        assert len(result.records) == 3

    def test_sequence_regression_is_damage(self, log_path):
        wal = WriteAheadLog(log_path)
        wal.append("a")
        wal.append("b")
        wal.resume_from(2)  # force a duplicate sequence number
        wal.append("dup")
        wal.close()
        result = WriteAheadLog(log_path).replay()
        assert result.damaged
        assert [r.kind for r in result.records] == ["a", "b"]

    def test_injectors_demand_an_existing_log(self, log_path):
        with pytest.raises(StorageError):
            inject_torn_tail(log_path, 1)
        with pytest.raises(StorageError):
            inject_tail_corruption(log_path)

    def test_corruption_offset_past_start_is_a_noop(self, log_path):
        self._filled(log_path, count=1)
        assert not inject_tail_corruption(
            log_path, offset_from_end=os.path.getsize(log_path) + 1
        )


class TestSnapshotStore:
    def test_round_trip(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snap.bin"))
        state = {"version": {"number": 4, "writer": 2}, "valid": True}
        store.save(state)
        assert store.load() == state

    def test_missing_is_none(self, tmp_path):
        assert SnapshotStore(str(tmp_path / "nope.bin")).load() is None

    def test_corrupt_is_none(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        store = SnapshotStore(path)
        store.save({"valid": True})
        inject_tail_corruption(path, offset_from_end=1)
        assert store.load() is None

    def test_save_replaces_atomically(self, tmp_path):
        path = str(tmp_path / "snap.bin")
        store = SnapshotStore(path)
        store.save({"gen": 1})
        store.save({"gen": 2})
        assert store.load() == {"gen": 2}
        assert not os.path.exists(path + ".tmp")

    def test_delete(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snap.bin"))
        store.save({"gen": 1})
        store.delete()
        assert store.load() is None


class TestNodeDurability:
    def _durability(self, tmp_path, node_id=1, **kwargs):
        metrics = NodeMetrics(node_id=node_id)
        return (
            NodeDurability(node_id, str(tmp_path), metrics, **kwargs),
            metrics,
        )

    def test_paths_follow_the_layout(self, tmp_path):
        root = str(tmp_path)
        assert node_state_dir(root, 3).endswith("node-3")
        assert wal_path(root, 3) == os.path.join(root, "node-3", "wal.log")
        assert snapshot_path(root, 3).endswith(
            os.path.join("node-3", "snapshot.bin")
        )

    def test_typed_records_fold_back(self, tmp_path):
        durability, _ = self._durability(tmp_path)
        durability.log_seed(ObjectVersion(0, writer=1))
        durability.log_object(ObjectVersion(5, writer=2))
        durability.log_join({4, 2}, steward=True)
        durability.log_scheme({1, 2, 3})
        durability.log_commit(rid=17, number=5)
        durability.log_note("checkpointing", reason="test")
        durability.close()

        fresh, metrics = self._durability(tmp_path)
        state = fresh.recover()
        assert state.version == ObjectVersion(5, writer=2)
        assert state.valid
        assert state.join_list == {2, 4}
        assert state.steward
        assert state.scheme == (1, 2, 3)
        assert state.latest_commit == 5
        assert state.replayed == 6
        assert state.replay_cost == 6  # no snapshot involved
        assert not state.empty
        assert metrics.wal_replayed == 6

    def test_invalidate_folds_to_invalid(self, tmp_path):
        durability, _ = self._durability(tmp_path)
        durability.log_object(ObjectVersion(2, writer=1))
        durability.log_invalidate()
        durability.close()
        state = self._durability(tmp_path)[0].recover()
        assert state.version == ObjectVersion(2, writer=1)
        assert not state.valid

    def test_muted_appends_nothing(self, tmp_path):
        durability, metrics = self._durability(tmp_path)
        with durability.muted():
            durability.log_object(ObjectVersion(1, writer=1))
            durability.log_join({2}, steward=False)
        assert durability.wal.size() == 0
        assert metrics.wal_appends == 0
        assert self._durability(tmp_path)[0].recover().empty

    def test_snapshot_every_compacts_the_log(self, tmp_path):
        durability, metrics = self._durability(tmp_path, snapshot_every=4)
        captured = {"version": None, "valid": False, "join_list": [],
                    "steward": False, "scheme": [1, 2], "latest_commit": 0}

        def snapshot_state():
            version = durability.wal.last_seq
            return dict(
                captured,
                version={"number": version, "writer": 1},
                valid=True,
            )

        durability.snapshot_state = snapshot_state
        for number in range(1, 10):
            durability.log_object(ObjectVersion(number, writer=1))
        durability.close()
        assert metrics.snapshots_written == 2  # after records 4 and 8

        fresh, fresh_metrics = self._durability(tmp_path)
        state = fresh.recover()
        assert state.from_snapshot
        assert state.version == ObjectVersion(9, writer=1)  # snapshot + log
        assert state.replayed == 1  # only the post-snapshot record
        assert state.replay_cost == 2  # one snapshot + one record
        assert state.last_seq == 9
        # Appends continue where the pre-crash numbering left off.
        assert fresh.wal.next_seq == 10

    def test_corrupt_snapshot_degrades_to_log_replay(self, tmp_path):
        durability, _ = self._durability(tmp_path, node_id=2)
        durability.log_object(ObjectVersion(3, writer=2))
        durability.snapshot_state = lambda: {
            "version": {"number": 3, "writer": 2}, "valid": True,
            "join_list": [], "steward": False, "scheme": [1, 2],
            "latest_commit": 0,
        }
        durability.take_snapshot()
        durability.log_object(ObjectVersion(4, writer=2))
        durability.close()
        inject_tail_corruption(snapshot_path(str(tmp_path), 2))

        state = self._durability(tmp_path, node_id=2)[0].recover()
        assert not state.from_snapshot
        assert state.version == ObjectVersion(4, writer=2)

    def test_damaged_log_reports_truncation(self, tmp_path):
        durability, _ = self._durability(tmp_path)
        for number in range(1, 5):
            durability.log_object(ObjectVersion(number, writer=1))
        durability.close()
        inject_torn_tail(wal_path(str(tmp_path), 1), 2)

        fresh, metrics = self._durability(tmp_path)
        state = fresh.recover()
        assert state.damaged
        assert state.truncated_bytes > 0
        assert state.version == ObjectVersion(3, writer=1)
        assert metrics.wal_truncations == 1

    def test_unknown_kinds_are_forward_compatible(self, tmp_path):
        durability, _ = self._durability(tmp_path)
        durability.log_object(ObjectVersion(1, writer=1))
        durability.record("hologram", {"from": "the future"})
        durability.close()
        state = self._durability(tmp_path)[0].recover()
        assert state.version == ObjectVersion(1, writer=1)
        assert state.replayed == 2  # replayed, folded to nothing

    def test_empty_state(self, tmp_path):
        state = self._durability(tmp_path)[0].recover()
        assert state.empty
        assert state.replay_cost == 0
        assert DurableState().empty
