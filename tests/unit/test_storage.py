"""Unit tests for the storage substrate (repro.storage)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, StorageError
from repro.storage.local_db import LocalDatabase
from repro.storage.stable_storage import StableStorage
from repro.storage.versions import ObjectVersion, VersionCounter


class TestVersions:
    def test_ordering(self):
        older = ObjectVersion(1, writer=2)
        newer = ObjectVersion(2, writer=3)
        assert newer.newer_than(older)
        assert not older.newer_than(newer)
        assert older.newer_than(None)

    def test_negative_number_rejected(self):
        with pytest.raises(ConfigurationError):
            ObjectVersion(-1, writer=0)

    def test_counter_is_monotonic(self):
        counter = VersionCounter()
        first = counter.next_version(writer=1)
        second = counter.next_version(writer=2)
        assert second.number == first.number + 1
        assert counter.allocated == 2

    def test_counter_start(self):
        counter = VersionCounter(start=5)
        assert counter.next_version(writer=1).number == 5

    def test_str(self):
        assert str(ObjectVersion(3, writer=7)) == "v3@7"


class TestStableStorage:
    def test_write_then_read(self):
        storage = StableStorage()
        storage.write("k", 42)
        assert storage.read("k") == 42
        assert storage.read_ops == 1
        assert storage.write_ops == 1
        assert storage.io_ops == 2

    def test_missing_key_raises(self):
        with pytest.raises(StorageError):
            StableStorage().read("nope")

    def test_peek_is_uncharged(self):
        storage = StableStorage()
        storage.write("k", 42)
        assert storage.peek("k") == 42
        assert storage.read_ops == 0

    def test_peek_missing_raises(self):
        with pytest.raises(StorageError):
            StableStorage().peek("nope")

    def test_delete_is_uncharged(self):
        storage = StableStorage()
        storage.write("k", 1)
        storage.delete("k")
        assert not storage.contains("k")
        assert storage.io_ops == 1

    def test_survive_crash_preserves_content(self):
        storage = StableStorage()
        storage.write("k", 1)
        assert storage.survive_crash().peek("k") == 1

    def test_survive_crash_carries_counters_over(self):
        # The paper's c_io charges accumulate across crashes: a crash
        # loses volatile state, never the I/O history of the disk.
        storage = StableStorage()
        storage.write("k", 1)
        storage.read("k")
        storage.read("k")
        survivor = storage.survive_crash()
        assert survivor.read_ops == 2
        assert survivor.write_ops == 1
        assert survivor.io_ops == 3
        survivor.write("k", 2)
        assert storage.io_ops == 4  # same disk, same ledger

    def test_survive_crash_is_identity(self):
        storage = StableStorage()
        assert storage.survive_crash() is storage

    def test_volatile_stable_split_matches_database_crash(self):
        # LocalDatabase.crash() must be exactly "stable storage
        # survives, validity is volatile": the version block stays on
        # the surviving StableStorage, only the valid flag drops.
        db = LocalDatabase(owner=1)
        version = ObjectVersion(7, writer=1)
        db.output_object(version)
        reads_before = db.storage.read_ops
        writes_before = db.storage.write_ops
        db.crash()
        assert db.storage is db.storage.survive_crash()
        assert db.storage.read_ops == reads_before
        assert db.storage.write_ops == writes_before
        assert not db.holds_valid_copy  # the volatile half is gone
        assert db.peek_version() == version  # the stable half is not
        with pytest.raises(StorageError):
            db.input_object()  # a charged read refuses the invalid copy


class TestLocalDatabase:
    def test_fresh_database_has_no_copy(self):
        db = LocalDatabase(owner=1)
        assert not db.holds_valid_copy
        with pytest.raises(StorageError):
            db.input_object()

    def test_output_then_input(self):
        db = LocalDatabase(owner=1)
        version = ObjectVersion(1, writer=1)
        db.output_object(version)
        assert db.holds_valid_copy
        assert db.input_object() == version
        assert db.io_reads == 1
        assert db.io_writes == 1

    def test_invalidate_blocks_reads(self):
        db = LocalDatabase(owner=1)
        db.output_object(ObjectVersion(1, writer=1))
        db.invalidate()
        assert not db.holds_valid_copy
        with pytest.raises(StorageError):
            db.input_object()

    def test_invalidated_copy_still_on_stable_storage(self):
        db = LocalDatabase(owner=1)
        version = ObjectVersion(1, writer=1)
        db.output_object(version)
        db.invalidate()
        assert db.peek_version() == version

    def test_input_any_version_ignores_validity(self):
        # The quorum path: freshness by timestamp, not validity flag.
        db = LocalDatabase(owner=1)
        version = ObjectVersion(1, writer=1)
        db.output_object(version)
        db.invalidate()
        assert db.input_any_version() == version
        assert db.io_reads == 1

    def test_seed_is_uncharged(self):
        db = LocalDatabase(owner=1)
        db.seed(ObjectVersion(0, writer=1))
        assert db.holds_valid_copy
        assert db.io_ops == 0

    def test_crash_keeps_storage_but_invalidates(self):
        db = LocalDatabase(owner=1)
        version = ObjectVersion(3, writer=1)
        db.output_object(version)
        db.crash()
        assert not db.holds_valid_copy
        assert db.peek_version() == version

    def test_revalidate_after_crash(self):
        db = LocalDatabase(owner=1)
        db.output_object(ObjectVersion(3, writer=1))
        db.crash()
        db.revalidate()
        assert db.holds_valid_copy

    def test_revalidate_without_copy_is_noop(self):
        db = LocalDatabase(owner=1)
        db.revalidate()
        assert not db.holds_valid_copy
