"""Unit tests for the availability analysis (repro.analysis.availability)."""

from __future__ import annotations

import itertools
import math

import pytest

from repro.analysis.availability import (
    availability_table,
    best_quorums,
    live_vote_distribution,
    quorum_availability,
    quorum_mixed_availability,
    rowa_availability,
    rowa_read_availability,
    rowa_write_availability,
)
from repro.exceptions import ConfigurationError


class TestROWA:
    def test_read_availability_closed_form(self):
        assert rowa_read_availability(0.9, 2) == pytest.approx(1 - 0.01)

    def test_write_availability_closed_form(self):
        assert rowa_write_availability(0.9, 2) == pytest.approx(0.81)

    def test_more_copies_help_reads_hurt_writes(self):
        p = 0.9
        reads = [rowa_read_availability(p, t) for t in range(1, 6)]
        writes = [rowa_write_availability(p, t) for t in range(1, 6)]
        assert reads == sorted(reads)
        assert writes == sorted(writes, reverse=True)

    def test_perfect_nodes(self):
        assert rowa_availability(1.0, 3, 0.5) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rowa_read_availability(1.5, 2)
        with pytest.raises(ConfigurationError):
            rowa_write_availability(0.9, 0)
        with pytest.raises(ConfigurationError):
            rowa_availability(0.9, 2, 2.0)


class TestVoteDistribution:
    def test_distribution_sums_to_one(self):
        distribution = live_vote_distribution(0.8, [1, 1, 2, 3])
        assert sum(distribution) == pytest.approx(1.0)

    def test_uniform_votes_are_binomial(self):
        p, n = 0.7, 5
        distribution = live_vote_distribution(p, [1] * n)
        for k in range(n + 1):
            expected = math.comb(n, k) * p**k * (1 - p) ** (n - k)
            assert distribution[k] == pytest.approx(expected)

    def test_brute_force_agreement_with_weights(self):
        p, votes = 0.6, [1, 2, 3]
        distribution = live_vote_distribution(p, votes)
        brute = [0.0] * (sum(votes) + 1)
        for alive in itertools.product([0, 1], repeat=len(votes)):
            probability = 1.0
            total = 0
            for up, weight in zip(alive, votes):
                probability *= p if up else (1 - p)
                total += weight if up else 0
            brute[total] += probability
        for got, want in zip(distribution, brute):
            assert got == pytest.approx(want)

    def test_negative_votes_rejected(self):
        with pytest.raises(ConfigurationError):
            live_vote_distribution(0.5, [1, -1])


class TestQuorumAvailability:
    def test_majority_of_five(self):
        # P[Binomial(5, .9) >= 3].
        value = quorum_availability(0.9, [1] * 5, 3)
        expected = sum(
            math.comb(5, k) * 0.9**k * 0.1 ** (5 - k) for k in range(3, 6)
        )
        assert value == pytest.approx(expected)

    def test_quorum_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            quorum_availability(0.9, [1] * 3, 0)
        with pytest.raises(ConfigurationError):
            quorum_availability(0.9, [1] * 3, 4)

    def test_intersection_enforced_for_mixed(self):
        with pytest.raises(ConfigurationError):
            quorum_mixed_availability(0.9, [1] * 5, 2, 3, 0.5)

    def test_majority_writes_beat_rowa_writes(self):
        # The reason for the failure fallback: ROWA writes need ALL
        # copies; a majority quorum tolerates minority crashes.
        p, n = 0.9, 5
        rowa = rowa_write_availability(p, n)
        quorum = quorum_availability(p, [1] * n, n // 2 + 1)
        assert quorum > rowa


class TestBestQuorums:
    def test_read_heavy_mix_wants_small_read_quorum(self):
        choice = best_quorums(0.9, [1] * 5, write_fraction=0.05)
        assert choice.read_quorum < choice.write_quorum

    def test_write_heavy_mix_wants_small_write_quorum(self):
        choice = best_quorums(0.9, [1] * 5, write_fraction=0.95)
        assert choice.write_quorum < choice.read_quorum

    def test_chosen_pair_intersects(self):
        choice = best_quorums(0.8, [1, 1, 2, 3], write_fraction=0.3)
        assert choice.read_quorum + choice.write_quorum == 7 + 1

    def test_dominates_symmetric_majority(self):
        p, votes, mix = 0.9, [1] * 5, 0.1
        best = best_quorums(p, votes, mix)
        majority = quorum_mixed_availability(p, votes, 3, 3, mix)
        assert best.mixed_availability >= majority.mixed_availability - 1e-12


class TestTable:
    def test_table_shape(self):
        rows = availability_table(0.9, 5, thresholds=[2, 3, 4], write_fraction=0.2)
        assert len(rows) == 3
        for t, read_avail, write_avail, quorum_avail in rows:
            assert 0 <= read_avail <= 1
            assert 0 <= write_avail <= 1
            assert 0 <= quorum_avail <= 1
