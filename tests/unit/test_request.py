"""Unit tests for repro.model.request."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.model.request import (
    ExecutedRequest,
    Request,
    RequestKind,
    read,
    write,
)


class TestRequestParsing:
    def test_parse_read(self):
        request = Request.parse("r1")
        assert request.kind is RequestKind.READ
        assert request.processor == 1

    def test_parse_write(self):
        request = Request.parse("w42")
        assert request.kind is RequestKind.WRITE
        assert request.processor == 42

    def test_parse_strips_whitespace(self):
        assert Request.parse("  r7  ") == read(7)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            Request.parse("x3")

    def test_parse_rejects_missing_processor(self):
        with pytest.raises(ConfigurationError):
            Request.parse("r")

    def test_parse_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            Request.parse("r-1")

    def test_roundtrip_via_str(self):
        for token in ("r0", "w3", "r17"):
            assert str(Request.parse(token)) == token


class TestRequestProperties:
    def test_read_constructor(self):
        assert read(5).is_read
        assert not read(5).is_write

    def test_write_constructor(self):
        assert write(5).is_write
        assert not write(5).is_read

    def test_negative_processor_rejected(self):
        with pytest.raises(ConfigurationError):
            Request(RequestKind.READ, -1)

    def test_requests_are_hashable_values(self):
        assert read(1) == read(1)
        assert read(1) != write(1)
        assert read(1) != read(2)
        assert len({read(1), read(1), write(1)}) == 2


class TestExecutedRequest:
    def test_execution_set_normalized(self):
        executed = ExecutedRequest(read(1), [3, 2, 3])
        assert executed.execution_set == frozenset({2, 3})

    def test_empty_execution_set_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutedRequest(read(1), frozenset())

    def test_saving_write_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutedRequest(write(1), {1}, saving=True)

    def test_saving_read_flags(self):
        executed = ExecutedRequest(read(4), {1}, saving=True)
        assert executed.is_saving_read
        assert executed.is_read
        assert not executed.is_write

    def test_non_saving_read_flags(self):
        executed = ExecutedRequest(read(4), {1})
        assert not executed.is_saving_read

    def test_processor_shortcut(self):
        executed = ExecutedRequest(write(9), {1, 2})
        assert executed.processor == 9

    def test_str_marks_saving_reads(self):
        executed = ExecutedRequest(read(4), {1, 2}, saving=True)
        assert str(executed) == "_r4{1,2}"

    def test_str_plain(self):
        executed = ExecutedRequest(write(2), {2, 3})
        assert str(executed) == "w2{2,3}"
