"""Unit tests for the multi-object directory (repro.core.multi)."""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.multi import ObjectDirectory, ObjectRequest, interleave
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import stationary
from repro.model.request import read, write
from repro.model.schedule import Schedule

MODEL = stationary(0.2, 1.5)


def da_directory():
    return ObjectDirectory(
        lambda object_id: DynamicAllocation({1, 2}, primary=2)
    )


class TestRouting:
    def test_instances_created_lazily(self):
        directory = da_directory()
        assert directory.object_ids == []
        directory.submit(ObjectRequest("doc", read(1)))
        assert directory.object_ids == ["doc"]

    def test_objects_evolve_independently(self):
        directory = da_directory()
        directory.submit(ObjectRequest("a", read(5)))  # 5 joins object a
        directory.submit(ObjectRequest("b", read(1)))  # local read of b
        assert 5 in directory.scheme("a")
        assert 5 not in directory.scheme("b")

    def test_factory_receives_object_id(self):
        seen = []

        def factory(object_id):
            seen.append(object_id)
            return StaticAllocation({1, 2})

        directory = ObjectDirectory(factory)
        directory.submit(ObjectRequest("x", read(1)))
        directory.submit(ObjectRequest("x", read(1)))
        directory.submit(ObjectRequest("y", read(1)))
        assert seen == ["x", "y"]

    def test_bad_factory_rejected(self):
        directory = ObjectDirectory(lambda object_id: "not a DOM")
        with pytest.raises(ConfigurationError):
            directory.submit(ObjectRequest("x", read(1)))

    def test_allocation_schedule_per_object(self):
        directory = da_directory()
        directory.run(
            [
                ObjectRequest("a", read(5)),
                ObjectRequest("b", write(1)),
                ObjectRequest("a", write(1)),
            ]
        )
        assert directory.allocation_schedule("a").schedule() == Schedule.parse(
            "r5 w1"
        )
        assert directory.allocation_schedule("b").schedule() == Schedule.parse(
            "w1"
        )


class TestCosts:
    def test_total_is_sum_of_per_object(self):
        directory = da_directory()
        directory.run(
            [
                ObjectRequest("a", read(5)),
                ObjectRequest("b", write(3)),
                ObjectRequest("a", read(5)),
                ObjectRequest("b", read(3)),
            ]
        )
        per_object = directory.per_object_costs(MODEL)
        assert directory.cost(MODEL) == pytest.approx(sum(per_object.values()))

    def test_directory_cost_matches_single_object_runs(self):
        # Composition: routing through the directory costs exactly the
        # same as running each object's schedule alone.
        streams = {
            "a": Schedule.parse("r5 w1 r5"),
            "b": Schedule.parse("w3 r3 r4"),
        }
        directory = da_directory()
        directory.run(interleave({k: list(v) for k, v in streams.items()}))
        for object_id, schedule in streams.items():
            standalone = DynamicAllocation({1, 2}, primary=2)
            expected = MODEL.schedule_cost(standalone.run(schedule))
            assert directory.cost(MODEL, object_id) == pytest.approx(expected)

    def test_unknown_object_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            da_directory().breakdown("ghost")


class TestInterleave:
    def test_round_robin_order(self):
        stream = interleave(
            {
                "a": [read(1), read(2)],
                "b": [write(3)],
            }
        )
        assert [str(item) for item in stream] == [
            "r1@'a'",
            "w3@'b'",
            "r2@'a'",
        ]

    def test_preserves_per_object_order(self):
        stream = interleave(
            {"a": [read(1), write(2), read(3)], "b": [read(9)]}
        )
        a_requests = [
            item.request for item in stream if item.object_id == "a"
        ]
        assert a_requests == [read(1), write(2), read(3)]

    def test_empty(self):
        assert interleave({}) == []
