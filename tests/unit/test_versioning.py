"""Unit tests for the append-only model of §6.2 (repro.core.versioning)."""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.core.versioning import (
    AppendOnlyFeed,
    FeedEventKind,
    generate,
    read_latest,
    run_feed,
    standing_order_stations,
)
from repro.exceptions import ConfigurationError
from repro.model.request import read, write


def satellite_feed() -> AppendOnlyFeed:
    """Images generated at stations 1 and 3, read by 2, 4 and 5."""
    return AppendOnlyFeed(
        [
            generate(1),
            read_latest(4),
            read_latest(5),
            generate(3),
            read_latest(4),
            read_latest(2),
            generate(1),
            read_latest(5),
        ]
    )


class TestFeedModel:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            AppendOnlyFeed(["generate"])

    def test_stations(self):
        assert satellite_feed().stations == frozenset({1, 2, 3, 4, 5})

    def test_object_count(self):
        assert satellite_feed().object_count == 3

    def test_translation_to_schedule(self):
        # §6.2: generation == write, read-latest == read.
        schedule = satellite_feed().to_schedule()
        assert schedule[0] == write(1)
        assert schedule[1] == read(4)
        assert schedule[3] == write(3)
        assert schedule.write_count == 3

    def test_event_str(self):
        assert str(generate(1)) == "gen@1"
        assert str(read_latest(4)) == "read@4"


class TestRunFeed:
    def test_sa_reliability(self, sc_model):
        # SA = t permanent standing orders: every object is stored at
        # exactly the t standing-order stations.
        feed = satellite_feed()
        result = run_feed(feed, StaticAllocation({1, 2}), sc_model)
        assert result.reliability_satisfied(2)
        assert all(stored == frozenset({1, 2}) for stored in result.storage_map)

    def test_da_reliability(self, sc_model):
        # DA = t-1 permanent + temporary standing orders: reliability
        # still holds at every generation.
        feed = satellite_feed()
        result = run_feed(feed, DynamicAllocation({1, 2}, primary=2), sc_model)
        assert result.reliability_satisfied(2)

    def test_storage_map_length_matches_objects(self, sc_model):
        feed = satellite_feed()
        result = run_feed(feed, StaticAllocation({1, 2}), sc_model)
        assert len(result.storage_map) == feed.object_count

    def test_temporary_standing_orders_cancelled_by_next_object(self, sc_model):
        # A reader joins via a temporary standing order; the next
        # generated object must evict it.
        feed = AppendOnlyFeed(
            [generate(1), read_latest(5), generate(1), read_latest(5)]
        )
        da = DynamicAllocation({1, 2}, primary=2)
        result = run_feed(feed, da, sc_model)
        holders = standing_order_stations(result.allocation)
        assert 5 in holders[1]  # after its first read, 5 holds the latest
        assert 5 not in holders[2]  # the next generation cancels the order

    def test_da_cheaper_for_repeat_readers(self, sc_model):
        # The standing-order advantage: a station reading every object
        # repeatedly benefits from the temporary order.
        events = [generate(1)] + [read_latest(5)] * 6
        feed = AppendOnlyFeed(events)
        da_cost = run_feed(
            feed, DynamicAllocation({1, 2}, primary=2), sc_model
        ).cost
        sa_cost = run_feed(feed, StaticAllocation({1, 2}), sc_model).cost
        assert da_cost < sa_cost
