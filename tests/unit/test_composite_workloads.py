"""Unit tests for composite workloads (repro.workloads.composite)."""

from __future__ import annotations

import pytest

from repro.engine.seeding import derive_seed
from repro.exceptions import ConfigurationError
from repro.workloads.composite import ConcatWorkload, MixtureWorkload
from repro.workloads.markov import MarkovWorkload
from repro.workloads.uniform import UniformWorkload


def uniform(processors, length, write_fraction=0.0):
    return UniformWorkload(processors, length, write_fraction)


class TestMixture:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MixtureWorkload([], [], 10)
        with pytest.raises(ConfigurationError):
            MixtureWorkload([uniform([1], 10)], [0.5, 0.5], 10)
        with pytest.raises(ConfigurationError):
            MixtureWorkload([uniform([1], 10)], [-1.0], 10)
        with pytest.raises(ConfigurationError):
            MixtureWorkload([uniform([1], 10)], [0.0], 10)

    def test_length_and_processors(self):
        mixture = MixtureWorkload(
            [uniform([1, 2], 50), uniform([8, 9], 50)], [1.0, 1.0], 60
        )
        schedule = mixture.generate(0)
        assert len(schedule) == 60
        assert schedule.processors <= frozenset({1, 2, 8, 9})

    def test_weights_steer_composition(self):
        heavy_left = MixtureWorkload(
            [uniform([1], 500), uniform([9], 500)], [9.0, 1.0], 400
        )
        schedule = heavy_left.generate(1)
        counts = schedule.request_counts()
        assert counts[1]["reads"] > counts.get(9, {"reads": 0})["reads"] * 3

    def test_deterministic(self):
        mixture = MixtureWorkload(
            [uniform([1, 2], 40), uniform([8, 9], 40)], [1.0, 1.0], 50
        )
        assert mixture.generate(3) == mixture.generate(3)

    def test_pool_exhaustion_truncates(self):
        # Components too short to fill the requested length: the
        # mixture stops rather than inventing requests.
        mixture = MixtureWorkload(
            [uniform([1], 5), uniform([2], 5)], [1.0, 1.0], 100
        )
        assert len(mixture.generate(0)) == 10

    def test_component_order_preserved_within_subsequence(self):
        bursty = MarkovWorkload([1, 2, 3], 60, 0.0, locality=1.0)
        mixture = MixtureWorkload(
            [bursty, uniform([9], 60)], [1.0, 1.0], 80
        )
        schedule = mixture.generate(5)
        # The bursty component's subsequence keeps its burst structure:
        # its requests, read in order, equal a prefix of its own output.
        own = [r for r in schedule if r.processor != 9]
        expected = list(bursty.generate(derive_seed(5, 0, "mixture")))[: len(own)]
        assert own == expected


class TestConcat:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConcatWorkload([])

    def test_phases_back_to_back(self):
        concat = ConcatWorkload([uniform([1], 20), uniform([9], 30)])
        schedule = concat.generate(0)
        assert len(schedule) == 50
        assert schedule[:20].processors == frozenset({1})
        assert schedule[20:].processors == frozenset({9})

    def test_length_property(self):
        concat = ConcatWorkload([uniform([1], 20), uniform([9], 30)])
        assert concat.length == 50

    def test_deterministic(self):
        concat = ConcatWorkload([uniform([1, 2], 20), uniform([8, 9], 20)])
        assert concat.generate(7) == concat.generate(7)
