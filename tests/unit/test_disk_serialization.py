"""Unit tests for per-node disk serialization (Network.serialize_io)."""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.distsim.network import Network
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.sa_protocol import StaticAllocationProtocol
from repro.distsim.simulator import Simulator
from repro.model.cost_model import stationary
from repro.model.request import write
from repro.model.schedule import Schedule
from repro.workloads.uniform import UniformWorkload


def make_network(serialize_io: bool):
    network = Network(Simulator(), io_latency=2.0, serialize_io=serialize_io)
    network.add_nodes(range(1, 6))
    return network


class TestQueueing:
    def test_ios_at_one_node_serialize(self):
        network = make_network(True)
        done = []
        network.perform_io(lambda: done.append(network.simulator.now), node=1)
        network.perform_io(lambda: done.append(network.simulator.now), node=1)
        network.simulator.run()
        assert done == [2.0, 4.0]

    def test_ios_at_different_nodes_run_in_parallel(self):
        network = make_network(True)
        done = []
        network.perform_io(lambda: done.append(network.simulator.now), node=1)
        network.perform_io(lambda: done.append(network.simulator.now), node=2)
        network.simulator.run()
        assert done == [2.0, 2.0]

    def test_disabled_by_default(self):
        network = make_network(False)
        done = []
        network.perform_io(lambda: done.append(network.simulator.now), node=1)
        network.perform_io(lambda: done.append(network.simulator.now), node=1)
        network.simulator.run()
        assert done == [2.0, 2.0]

    def test_disk_frees_up_over_time(self):
        network = make_network(True)
        done = []
        network.perform_io(lambda: done.append(network.simulator.now), node=1)
        network.simulator.run()
        network.perform_io(lambda: done.append(network.simulator.now), node=1)
        network.simulator.run()
        assert done == [2.0, 4.0]


class TestProtocolsUnderDiskContention:
    def test_costs_unaffected_by_serialization(self):
        # §1.1: contention shifts response time, never the charge.
        model = stationary(0.2, 1.5)
        schedule = UniformWorkload(range(1, 6), 40, 0.3).generate(5)
        costs = {}
        for serialize in (False, True):
            network = Network(Simulator(), serialize_io=serialize)
            network.add_nodes(range(1, 6))
            protocol = DynamicAllocationProtocol(network, {1, 2}, primary=2)
            stats = protocol.execute(schedule)
            costs[serialize] = stats.cost(model)
        assert costs[False] == pytest.approx(costs[True])
        analytic = model.schedule_cost(
            DynamicAllocation({1, 2}, primary=2).run(schedule)
        )
        assert costs[True] == pytest.approx(analytic)

    def test_wide_writes_slow_down_under_serial_disks(self):
        # SA's write-all hits every replica disk; serialization cannot
        # slow a single write (disks are parallel across nodes), but a
        # *server* that both serves reads and absorbs writes queues.
        schedule = Schedule((write(5),))
        latencies = {}
        for serialize in (False, True):
            network = Network(Simulator(), serialize_io=serialize)
            network.add_nodes(range(1, 6))
            protocol = StaticAllocationProtocol(network, {1, 2, 3, 4})
            stats = protocol.execute(schedule)
            latencies[serialize] = stats.max_latency
        # Different nodes' disks are independent: same latency.
        assert latencies[True] == pytest.approx(latencies[False])
