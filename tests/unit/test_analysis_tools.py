"""Unit tests for sweeps, crossover search, reporting and viz."""

from __future__ import annotations

import pytest

from repro.analysis.crossover import find_crossover
from repro.analysis.regions import theoretical_map
from repro.analysis.report import (
    bullet_list,
    format_mapping,
    format_ratio_check,
    format_table,
)
from repro.analysis.sweep import cost_sweep, sweep
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import stationary
from repro.viz.ascii_plot import render_region_map, render_series
from repro.viz.csv_export import region_map_to_csv, sweep_to_csv
from repro.workloads.uniform import UniformWorkload


def tiny_sweep():
    factories = {
        "SA": lambda: StaticAllocation({1, 2}),
        "DA": lambda: DynamicAllocation({1, 2}, primary=2),
    }
    return sweep(
        "c_d",
        [0.5, 1.5],
        factories_for=lambda value: factories,
        schedules_for=lambda value: UniformWorkload(range(1, 5), 16, 0.3).batch(
            2, seed=1
        ),
        model_for=lambda value: stationary(0.1, value),
    )


class TestSweep:
    def test_rows_in_parameter_order(self):
        result = tiny_sweep()
        assert [row.parameter for row in result.rows] == [0.5, 1.5]

    def test_series_extraction(self):
        result = tiny_sweep()
        series = result.series("SA")
        assert len(series) == 2
        assert all(ratio >= 1.0 - 1e-9 for _, ratio in series)

    def test_algorithms_listed(self):
        assert tiny_sweep().algorithms() == ["DA", "SA"]

    def test_empty_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep("x", [], lambda v: {}, lambda v: [], lambda v: None)

    def test_cost_sweep_skips_reference(self):
        result = cost_sweep(
            "write_fraction",
            [0.1, 0.9],
            factories_for=lambda value: {
                "SA": lambda: StaticAllocation({1, 2})
            },
            schedules_for=lambda value: UniformWorkload(
                range(1, 5), 20, value
            ).batch(1),
            model_for=lambda value: stationary(0.1, 0.5),
        )
        assert len(result.rows) == 2
        assert result.rows[0].mean_costs["SA"] > 0


class TestCrossover:
    def test_finds_simple_root(self):
        crossover = find_crossover(lambda x: x - 0.4, 0.0, 1.0, tolerance=1e-4)
        assert crossover is not None
        assert crossover.parameter == pytest.approx(0.4, abs=1e-3)

    def test_returns_none_without_sign_change(self):
        assert find_crossover(lambda x: x + 1.0, 0.0, 1.0) is None

    def test_exact_zero_at_endpoint(self):
        crossover = find_crossover(lambda x: x, 0.0, 1.0)
        assert crossover is not None
        assert crossover.parameter == 0.0

    def test_invalid_bracket(self):
        with pytest.raises(ConfigurationError):
            find_crossover(lambda x: x, 1.0, 0.0)


class TestReport:
    def test_table_alignment(self):
        text = format_table(
            ["name", "ratio"], [["SA", 2.5], ["DA", 2.3]], title="bounds"
        )
        lines = text.splitlines()
        assert lines[0] == "bounds"
        assert "2.500" in text and "2.300" in text

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_table_needs_headers(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_mapping(self):
        text = format_mapping({"alpha": 1.5}, title="t")
        assert "alpha" in text

    def test_ratio_check_pass_fail(self):
        assert format_ratio_check("SA", 2.4, 2.5).startswith("[PASS]")
        assert format_ratio_check("SA", 2.6, 2.5).startswith("[FAIL]")
        assert format_ratio_check("DA", 1.6, 1.5, kind="lower").startswith(
            "[PASS]"
        )
        with pytest.raises(ConfigurationError):
            format_ratio_check("SA", 1.0, 1.0, kind="sideways")

    def test_bullets(self):
        assert bullet_list(["x", "y"]) == "  - x\n  - y"


class TestViz:
    def test_region_map_rendering(self):
        text = render_region_map(theoretical_map(steps=5), title="Figure 1")
        assert text.startswith("Figure 1")
        assert "D" in text and "." in text
        assert "c_c" in text

    def test_series_rendering(self):
        text = render_series(
            [(0.0, 1.0), (1.0, 2.0), (2.0, 1.5)],
            width=20,
            height=5,
            title="ratios",
        )
        assert "ratios" in text
        assert "*" in text

    def test_empty_series_renders_labeled_frame(self):
        text = render_series(
            [], width=20, height=5, x_label="lat", y_label="req",
            title="empty",
        )
        lines = text.splitlines()
        assert lines[0] == "empty"
        assert "req (no data)" in text
        assert "lat: (no data)" in text
        # Same frame shape as a populated chart: title + y label +
        # `height` canvas rows + axis + x label.
        assert len(lines) == 5 + 4
        assert all(line.startswith("|") for line in lines[2:7])
        assert lines[7] == "+" + "-" * 20
        assert "*" not in text

    def test_region_map_csv(self):
        csv_text = region_map_to_csv(theoretical_map(steps=3))
        lines = csv_text.strip().splitlines()
        assert lines[0] == "c_c,c_d,region,sa_ratio,da_ratio"
        assert len(lines) == 1 + 9

    def test_sweep_csv(self):
        csv_text = sweep_to_csv(tiny_sweep())
        lines = csv_text.strip().splitlines()
        assert "c_d" in lines[0]
        assert "SA_max_ratio" in lines[0]
        assert len(lines) == 3
