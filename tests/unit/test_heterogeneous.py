"""Unit tests for the heterogeneous-cost extension (paper §6).

The load-bearing property: with constant prices, every heterogeneous
component (cost model, nearest-server algorithms, offline optimum)
reproduces its homogeneous counterpart exactly.  Then genuinely
heterogeneous scenarios check that prices actually steer decisions.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.heterogeneous_optimal import HeterogeneousOfflineOptimal
from repro.core.nearest import NearestServerDynamic, NearestServerStatic
from repro.core.offline_optimal import OfflineOptimal
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import stationary
from repro.model.heterogeneous import HeterogeneousCostModel, homogeneous
from repro.model.request import ExecutedRequest, read, write
from repro.model.schedule import Schedule
from repro.workloads.uniform import UniformWorkload

SCHEME = frozenset({1, 2})
HOMOGENEOUS = homogeneous(1.0, 0.2, 1.5)
REFERENCE = stationary(0.2, 1.5)


class TestValidation:
    def test_negative_prices_rejected(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousCostModel(default_io=-1.0)
        with pytest.raises(ConfigurationError):
            HeterogeneousCostModel(io_costs={1: -0.5})

    def test_default_control_above_data_rejected(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousCostModel(default_c_c=2.0, default_c_d=1.0)

    def test_per_link_control_above_data_rejected(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousCostModel(
                default_c_d=1.0, control_costs={(1, 2): 5.0}
            )

    def test_nearest_server_needs_candidates(self):
        with pytest.raises(ConfigurationError):
            HOMOGENEOUS.nearest_server(1, [])


class TestHomogeneousEquivalence:
    @pytest.mark.parametrize(
        "executed,scheme",
        [
            (ExecutedRequest(read(1), {1}), frozenset({1, 2})),
            (ExecutedRequest(read(5), {1}), frozenset({1, 2})),
            (ExecutedRequest(read(5), {1}, saving=True), frozenset({1, 2})),
            (ExecutedRequest(read(5), {1, 2}), frozenset({1, 2})),
            (ExecutedRequest(write(1), {1, 2}), frozenset({1, 2, 3})),
            (ExecutedRequest(write(9), {1, 2}), frozenset({1, 2, 3})),
        ],
    )
    def test_request_costs_match_homogeneous_model(self, executed, scheme):
        assert HOMOGENEOUS.request_cost(executed, scheme) == pytest.approx(
            REFERENCE.request_cost(executed, scheme)
        )

    def test_schedule_cost_matches(self):
        schedule = UniformWorkload(range(1, 6), 40, 0.3).generate(2)
        allocation = DynamicAllocation(SCHEME, primary=2).run(schedule)
        assert HOMOGENEOUS.schedule_cost(allocation) == pytest.approx(
            REFERENCE.schedule_cost(allocation)
        )

    def test_nearest_variants_match_originals(self):
        schedule = UniformWorkload(range(1, 6), 40, 0.3).generate(4)
        plain_sa = StaticAllocation(SCHEME).run(schedule)
        near_sa = NearestServerStatic(SCHEME, HOMOGENEOUS).run(schedule)
        assert REFERENCE.schedule_cost(plain_sa) == pytest.approx(
            HOMOGENEOUS.schedule_cost(near_sa)
        )
        plain_da = DynamicAllocation(SCHEME, primary=2).run(schedule)
        near_da = NearestServerDynamic(SCHEME, HOMOGENEOUS, primary=2).run(
            schedule
        )
        assert REFERENCE.schedule_cost(plain_da) == pytest.approx(
            HOMOGENEOUS.schedule_cost(near_da)
        )

    @pytest.mark.parametrize(
        "text",
        ["r5 r5 w1 r5", "w3 r4 r4 w4 r3", "r5 r6 w1 r5 r6"],
    )
    def test_optimum_matches_homogeneous_solver(self, text):
        schedule = Schedule.parse(text)
        hetero = HeterogeneousOfflineOptimal(HOMOGENEOUS).optimal_cost(
            schedule, SCHEME
        )
        homo = OfflineOptimal(REFERENCE).optimal_cost(schedule, SCHEME)
        assert hetero == pytest.approx(homo)


class TestHeterogeneousBehaviour:
    def wireless_model(self):
        """Node 9 sits behind an expensive wireless link."""
        expensive = {(9, s): 2.0 for s in (1, 2, 3)}
        expensive.update({(s, 9): 2.0 for s in (1, 2, 3)})
        data = {(9, s): 8.0 for s in (1, 2, 3)}
        data.update({(s, 9): 8.0 for s in (1, 2, 3)})
        return HeterogeneousCostModel(
            default_io=1.0,
            default_c_c=0.2,
            default_c_d=1.0,
            control_costs=expensive,
            data_costs=data,
        )

    def test_nearest_server_prefers_cheap_links(self):
        costs = HeterogeneousCostModel(
            default_c_c=0.2,
            default_c_d=1.0,
            data_costs={(2, 5): 0.1, (5, 2): 0.1},
            control_costs={(2, 5): 0.1, (5, 2): 0.1},
        )
        # Reading from 2 is far cheaper for 5 than reading from 1.
        assert costs.nearest_server(5, [1, 2]) == 2

    def test_nearest_sa_beats_naive_sa_under_skewed_prices(self):
        costs = HeterogeneousCostModel(
            default_c_c=0.2,
            default_c_d=1.0,
            data_costs={(1, 5): 9.0},  # server 1 is terrible for reader 5
        )
        schedule = Schedule.parse("r5 r5 r5 r5")
        naive = StaticAllocation(SCHEME).run(schedule)  # always uses min(Q)=1
        nearest = NearestServerStatic(SCHEME, costs).run(schedule)
        assert costs.schedule_cost(nearest) < costs.schedule_cost(naive)

    def test_optimum_avoids_replicating_over_wireless(self):
        costs = self.wireless_model()
        # Writer 3 writes; 9 never reads: the optimum should never pay
        # the wireless data price by putting 9 in an execution set.
        schedule = Schedule.parse("w3 r4 r4 w3 r4")
        result = HeterogeneousOfflineOptimal(costs).solve(
            schedule, frozenset({1, 2})
        )
        for step in result.allocation:
            assert 9 not in step.execution_set

    def test_wireless_reader_still_served_correctly(self):
        costs = self.wireless_model()
        schedule = Schedule.parse("r9 r9 r9")
        result = HeterogeneousOfflineOptimal(costs).solve(
            schedule, frozenset({1, 2})
        )
        result.allocation.check_legal()
        # Three wireless fetches cost more than save-once-then-local:
        # the optimum saves at 9 despite the expensive first transfer.
        assert 9 in result.allocation.final_scheme

    def test_asymmetric_links_respected(self):
        costs = HeterogeneousCostModel(
            default_c_c=0.1,
            default_c_d=1.0,
            data_costs={(1, 5): 0.2},  # downlink cheap, uplink default
        )
        assert costs.data(1, 5) == 0.2
        assert costs.data(5, 1) == 1.0

    def test_per_node_io_prices(self):
        costs = HeterogeneousCostModel(default_io=1.0, io_costs={7: 5.0})
        local_read = ExecutedRequest(read(7), {7})
        assert costs.request_cost(local_read, frozenset({7, 1})) == 5.0
