"""Unit tests for the on-disk result cache (repro.engine.cache).

The contract under test: identical configurations hit, perturbed
configurations miss, corrupted entries are discarded rather than
raised, and keys are stable across interpreter runs (no ``id()`` or
dict-iteration-order dependence anywhere in the key pipeline).
"""

from __future__ import annotations

import pickle

from repro.engine import ExperimentEngine, ResultCache, stable_key
from repro.engine.cache import CACHE_FORMAT
from repro.model.cost_model import stationary


def sample_key(c_c: float = 0.3, c_d: float = 1.2, seed: int = 7) -> str:
    return stable_key(
        {
            "model": stationary(c_c, c_d),
            "workload": {"kind": "uniform", "length": 20, "n": 5},
            "algorithms": frozenset({"SA", "DA"}),
            "seed": seed,
        }
    )


class TestHitMiss:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(sample_key()) == (False, None)

    def test_hit_on_identical_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(sample_key(), {"ratio": 1.25})
        hit, value = cache.get(sample_key())
        assert hit and value == {"ratio": 1.25}

    def test_miss_on_perturbed_config(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(sample_key(c_d=1.2), "original")
        assert cache.get(sample_key(c_d=1.2000001)) == (False, None)
        assert cache.get(sample_key(seed=8)) == (False, None)
        # The original entry is untouched by the misses.
        assert cache.get(sample_key(c_d=1.2)) == (True, "original")

    def test_contains_len_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [sample_key(seed=s) for s in range(3)]
        for index, key in enumerate(keys):
            cache.put(key, index)
        assert len(cache) == 3
        assert keys[0] in cache
        assert sample_key(seed=99) not in cache
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_put_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(sample_key(), "old")
        cache.put(sample_key(), "new")
        assert cache.get(sample_key()) == (True, "new")


class TestCorruption:
    def test_truncated_entry_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(sample_key(), "value")
        path = cache.path_for(sample_key())
        path.write_bytes(path.read_bytes()[:5])
        assert cache.get(sample_key()) == (False, None)
        assert not path.exists()  # the bad file is gone, not resurrected

    def test_garbage_bytes_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(sample_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"this is not a pickle")
        assert cache.get(sample_key()) == (False, None)
        assert not path.exists()

    def test_wrong_format_version_discarded(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(sample_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": CACHE_FORMAT + 1, "key": sample_key(), "value": 1}
        path.write_bytes(pickle.dumps(entry))
        assert cache.get(sample_key()) == (False, None)

    def test_key_mismatch_discarded(self, tmp_path):
        # A renamed file must never serve another configuration's result.
        cache = ResultCache(tmp_path)
        cache.put(sample_key(seed=1), "for-seed-1")
        source = cache.path_for(sample_key(seed=1))
        target = cache.path_for(sample_key(seed=2))
        target.parent.mkdir(parents=True, exist_ok=True)
        source.replace(target)
        assert cache.get(sample_key(seed=2)) == (False, None)

    def test_recomputed_after_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache)
        key = stable_key(("square", 6))
        assert engine.map(square, [(6,)], keys=[key]) == [36]
        cache.path_for(key).write_bytes(b"\x80corrupt")
        assert engine.map(square, [(6,)], keys=[key]) == [36]
        assert engine.last_stats.executed == 1  # recomputed, not crashed
        assert cache.get(key) == (True, 36)  # and rewritten


def square(value):
    return value * value


class TestKeyStability:
    """Key derivation never depends on interpreter state.

    Cross-interpreter stability under different PYTHONHASHSEED values
    is exercised in test_engine.py (subprocess-based); here we pin the
    in-process invariants that make it possible.
    """

    def test_same_payload_fresh_objects(self):
        assert sample_key() == sample_key()

    def test_key_is_hex_digest(self):
        key = sample_key()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_no_id_dependence(self):
        # Two structurally equal but distinct objects must share a key.
        first = stationary(0.4, 1.1)
        second = stationary(0.4, 1.1)
        assert first is not second
        assert stable_key(first) == stable_key(second)
