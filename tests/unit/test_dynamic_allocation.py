"""Unit tests for the DA algorithm (repro.core.dynamic_allocation)."""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.exceptions import ConfigurationError
from repro.model.schedule import Schedule


class TestConstruction:
    def test_default_primary_is_largest(self):
        da = DynamicAllocation({1, 2, 3})
        assert da.primary == 3
        assert da.core == frozenset({1, 2})

    def test_explicit_primary(self):
        da = DynamicAllocation({1, 2, 3}, primary=1)
        assert da.primary == 1
        assert da.core == frozenset({2, 3})

    def test_primary_must_be_in_scheme(self):
        with pytest.raises(ConfigurationError):
            DynamicAllocation({1, 2}, primary=5)

    def test_core_size_is_t_minus_one(self):
        da = DynamicAllocation({1, 2, 3, 4})
        assert len(da.core) == da.threshold - 1

    def test_rejects_singleton_scheme(self):
        with pytest.raises(ConfigurationError):
            DynamicAllocation({1})


class TestReads:
    def test_data_processor_reads_locally(self):
        da = DynamicAllocation({1, 2}, primary=2)
        allocation = da.run(Schedule.parse("r1 r2"))
        assert allocation[0].execution_set == frozenset({1})
        assert allocation[1].execution_set == frozenset({2})
        assert all(not step.saving for step in allocation)

    def test_foreign_read_is_saving_and_served_by_core(self):
        da = DynamicAllocation({1, 2}, primary=2)
        allocation = da.run(Schedule.parse("r5"))
        (step,) = allocation
        assert step.saving
        assert step.execution_set <= da.core

    def test_reader_joins_scheme(self):
        da = DynamicAllocation({1, 2}, primary=2)
        da.run(Schedule.parse("r5"))
        assert 5 in da.current_scheme

    def test_second_read_by_joiner_is_local(self):
        da = DynamicAllocation({1, 2}, primary=2)
        allocation = da.run(Schedule.parse("r5 r5"))
        assert allocation[1].execution_set == frozenset({5})
        assert not allocation[1].saving

    def test_join_list_records_joiner(self):
        da = DynamicAllocation({1, 2}, primary=2)
        da.run(Schedule.parse("r5 r6"))
        assert da.join_list(1) == frozenset({5, 6})

    def test_join_list_only_for_core_members(self):
        da = DynamicAllocation({1, 2}, primary=2)
        with pytest.raises(ConfigurationError):
            da.join_list(2)


class TestWrites:
    def test_insider_write_targets_core_plus_primary(self):
        da = DynamicAllocation({1, 2}, primary=2)
        allocation = da.run(Schedule.parse("w1"))
        assert allocation[0].execution_set == frozenset({1, 2})

    def test_primary_write_targets_core_plus_primary(self):
        da = DynamicAllocation({1, 2}, primary=2)
        allocation = da.run(Schedule.parse("w2"))
        assert allocation[0].execution_set == frozenset({1, 2})

    def test_foreign_write_targets_core_plus_writer(self):
        da = DynamicAllocation({1, 2}, primary=2)
        allocation = da.run(Schedule.parse("w7"))
        assert allocation[0].execution_set == frozenset({1, 7})

    def test_write_evicts_joiners(self):
        da = DynamicAllocation({1, 2}, primary=2)
        da.run(Schedule.parse("r5 r6 w1"))
        assert da.current_scheme == frozenset({1, 2})
        assert da.join_list(1) == frozenset()

    def test_foreign_write_evicts_primary(self):
        # After w7, the scheme is F ∪ {7}: p loses its copy until the
        # next insider write restores it.
        da = DynamicAllocation({1, 2}, primary=2)
        da.run(Schedule.parse("w7"))
        assert da.current_scheme == frozenset({1, 7})

    def test_primary_rejoins_via_insider_write(self):
        da = DynamicAllocation({1, 2}, primary=2)
        da.run(Schedule.parse("w7 w1"))
        assert da.current_scheme == frozenset({1, 2})

    def test_primary_read_after_eviction_is_saving(self):
        da = DynamicAllocation({1, 2}, primary=2)
        allocation = da.run(Schedule.parse("w7 r2"))
        assert allocation[1].saving
        assert allocation[1].execution_set == frozenset({1})


class TestInvariants:
    def test_core_always_in_scheme(self):
        da = DynamicAllocation({1, 2, 3}, primary=3)
        schedule = Schedule.parse("r7 w8 r9 w1 r7 w3 r8")
        allocation = da.run(schedule)
        for scheme, _ in allocation.schemes():
            assert da.core <= scheme

    def test_t_availability_maintained(self):
        da = DynamicAllocation({1, 2, 3}, primary=3)
        allocation = da.run(Schedule.parse("r7 w8 r9 w1 r7 w3 r8 r9 w9"))
        allocation.check_t_available(3)
        allocation.check_legal()

    def test_run_resets_join_lists(self):
        da = DynamicAllocation({1, 2}, primary=2)
        da.run(Schedule.parse("r5"))
        da.run(Schedule.parse("r6"))
        assert da.join_list(1) == frozenset({6})


class TestCosts:
    def test_saving_read_costs_one_extra_io(self, sc_model):
        da = DynamicAllocation({1, 2}, primary=2)
        allocation = da.run(Schedule.parse("r5"))
        assert sc_model.schedule_cost(allocation) == pytest.approx(
            sc_model.c_c + 2.0 + sc_model.c_d
        )

    def test_repeat_reader_amortizes(self, sc_model):
        # After the save, each further read costs only c_io: the gain
        # over SA that Theorem 1 vs Proposition 3 quantifies.
        da = DynamicAllocation({1, 2}, primary=2)
        allocation = da.run(Schedule.parse("r5 r5 r5 r5"))
        expected = (sc_model.c_c + 2.0 + sc_model.c_d) + 3 * 1.0
        assert sc_model.schedule_cost(allocation) == pytest.approx(expected)

    def test_write_after_joins_pays_invalidations(self, sc_model):
        da = DynamicAllocation({1, 2}, primary=2)
        allocation = da.run(Schedule.parse("r5 r6 w1"))
        costs = sc_model.request_costs(allocation)
        # w1: scheme {1,2,5,6} -> X {1,2}: 2 invalidations + 1 data + 2 io.
        assert costs[2] == pytest.approx(2 * sc_model.c_c + sc_model.c_d + 2.0)
