"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBounds:
    def test_stationary_point(self, capsys):
        code, out, _ = run_cli(capsys, "bounds", "--cc", "0.3", "--cd", "1.2")
        assert code == 0
        assert "2.500" in out  # SA factor
        assert "2.300" in out  # DA factor (Thm 3)
        assert "DA" in out

    def test_mobile_point(self, capsys):
        code, out, _ = run_cli(
            capsys, "bounds", "--cc", "0.5", "--cd", "2.0", "--mobile"
        )
        assert code == 0
        assert "inf" in out  # SA not competitive

    def test_infeasible_point_reports_error(self, capsys):
        code, _, err = run_cli(capsys, "bounds", "--cc", "2.0", "--cd", "1.0")
        assert code == 1
        assert "error" in err


class TestCompare:
    def test_inline_schedule(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "compare",
            "--schedule", "r5 r5 w1 r5",
            "--algorithms", "SA,DA",
        )
        assert code == 0
        assert "SA" in out and "DA" in out and "exact" in out

    def test_trace_file(self, capsys, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("r5 r5\nw1 r5\n")
        code, out, _ = run_cli(capsys, "compare", "--trace", str(path))
        assert code == 0
        assert "4 requests" in out

    def test_missing_input_is_usage_error(self, capsys):
        code, _, err = run_cli(capsys, "compare")
        assert code == 2
        assert "schedule" in err

    def test_custom_scheme(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "compare",
            "--schedule", "r1",
            "--scheme", "1,2,3",
        )
        assert code == 0
        assert "[1, 2, 3]" in out


class TestRegions:
    def test_theoretical_map(self, capsys):
        code, out, _ = run_cli(capsys, "regions", "--steps", "5")
        assert code == 0
        assert "Figure 1 (theory)" in out
        assert "D" in out and "S" in out

    def test_mobile_map(self, capsys):
        code, out, _ = run_cli(capsys, "regions", "--mobile", "--steps", "4")
        assert code == 0
        assert "Figure 2" in out
        # No SA region anywhere in the mobile map's grid rows.
        grid_rows = [line for line in out.splitlines() if "|" in line]
        assert grid_rows
        assert all("S" not in row for row in grid_rows)

    def test_empirical_map(self, capsys):
        code, out, _ = run_cli(
            capsys, "regions", "--empirical", "--steps", "3"
        )
        assert code == 0
        assert "measured" in out


class TestSimulate:
    def test_da_protocol(self, capsys):
        code, out, _ = run_cli(
            capsys, "simulate", "--schedule", "r5 w1 r5", "--protocol", "DA"
        )
        assert code == 0
        assert "control messages" in out
        assert "priced cost" in out

    def test_seeded_workload_is_reproducible(self, capsys):
        seeded = (
            "simulate", "--seed", "11", "--processors", "4",
            "--length", "40", "--protocol", "DA",
        )
        code_a, out_a, _ = run_cli(capsys, *seeded)
        code_b, out_b, _ = run_cli(capsys, *seeded)
        assert code_a == code_b == 0
        assert out_a == out_b

    def test_different_seeds_differ(self, capsys):
        base = ("simulate", "--processors", "4", "--length", "40")
        _, out_a, _ = run_cli(capsys, *base, "--seed", "11")
        _, out_b, _ = run_cli(capsys, *base, "--seed", "12")
        assert out_a != out_b

    def test_trace_file(self, capsys, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("r3 w1 r3 r2\n")
        code, out, _ = run_cli(
            capsys, "simulate", "--trace", str(path), "--protocol", "SA"
        )
        assert code == 0
        assert "control messages" in out


class TestClusterCLI:
    def test_run_check_parity(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "cluster", "run", "--protocol", "DA", "--nodes", "3",
            "--seed", "7", "--length", "30", "--write-fraction", "0.25",
            "--check-parity",
        )
        assert code == 0
        assert "parity OK" in out
        assert "node" in out  # the per-node metrics table

    def test_run_check_parity_with_delay(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "cluster", "run", "--protocol", "SA", "--nodes", "3",
            "--seed", "3", "--length", "20", "--delay-ms", "1",
            "--check-parity",
        )
        assert code == 0
        assert "with injected delays" in out

    def test_bench_reports_throughput(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "cluster", "bench", "--protocol", "DA", "--nodes", "3",
            "--count", "30", "--rate", "500", "--seed", "2",
        )
        assert code == 0
        assert "req/s" in out
        assert "p95" in out


class TestWorkload:
    def test_stdout_trace(self, capsys):
        code, out, _ = run_cli(
            capsys, "workload", "--kind", "uniform", "--length", "12"
        )
        assert code == 0
        assert len(out.split()) == 12

    def test_file_output_roundtrips(self, capsys, tmp_path):
        path = tmp_path / "w.txt"
        code, out, _ = run_cli(
            capsys,
            "workload", "--kind", "markov", "--length", "30",
            "--out", str(path),
        )
        assert code == 0
        from repro.workloads import trace

        assert len(trace.load(path)) == 30

    def test_mobile_kind(self, capsys):
        code, out, _ = run_cli(
            capsys, "workload", "--kind", "mobile", "--length", "10"
        )
        assert code == 0
        assert len(out.split()) == 10


class TestExpected:
    def test_table_and_crossover(self, capsys):
        code, out, _ = run_cli(
            capsys, "expected", "--cc", "0.1", "--cd", "0.6", "--n", "6"
        )
        assert code == 0
        assert "write fraction" in out
        assert "crossover" in out


class TestDescribe:
    def test_inline_schedule(self, capsys):
        code, out, _ = run_cli(
            capsys, "describe", "--schedule", "r5 r5 r5 w1 r5"
        )
        assert code == 0
        assert "write-free segments" in out

    def test_trace_file(self, capsys, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("r5 w1 r5\n")
        code, out, _ = run_cli(capsys, "describe", "--trace", str(path))
        assert code == 0
        assert "3 requests" in out

    def test_missing_input(self, capsys):
        code, _, err = run_cli(capsys, "describe")
        assert code == 2


class TestCalibrate:
    def test_wired_defaults(self, capsys):
        code, out, _ = run_cli(capsys, "calibrate")
        assert code == 0
        assert "SC(" in out
        assert "recommendation" in out

    def test_wireless_tariff(self, capsys):
        code, out, _ = run_cli(capsys, "calibrate", "--tariff")
        assert code == 0
        assert "MC(" in out
        assert "dynamic allocation" in out

    def test_big_object_lands_in_da_region(self, capsys):
        code, out, _ = run_cli(
            capsys, "calibrate",
            "--object-bytes", "1000000", "--bandwidth", "1000",
        )
        assert code == 0
        assert "DA" in out


SWEEP_GOLDEN = """\
Sweep of c_d over 2 points (SC model, 2 x 6-request uniform schedules per point, seed 3)
  c_d  DA max ratio  SA max ratio  DA mean cost  SA mean cost
-----  ------------  ------------  ------------  ------------
0.500         1.408         1.175        12.800        10.750
1.000         1.106         1.149        10.400        10.600
"""


class TestSweep:
    GRID = (
        "sweep", "--parameter", "c_d", "--values", "0.5,1.0",
        "--processors", "4", "--length", "6", "--schedules", "2",
        "--seed", "3",
    )

    def test_golden_output_on_tiny_grid(self, capsys):
        code, out, _ = run_cli(capsys, *self.GRID)
        assert code == 0
        assert out == SWEEP_GOLDEN

    def test_parallel_run_matches_golden(self, capsys):
        code, out, _ = run_cli(
            capsys, *self.GRID, "--workers", "2", "--chunksize", "2"
        )
        assert code == 0
        assert out == SWEEP_GOLDEN

    def test_cache_dir_reruns_match_golden(self, capsys, tmp_path):
        argv = self.GRID + ("--cache-dir", str(tmp_path / "cache"))
        first_code, first_out, _ = run_cli(capsys, *argv)
        second_code, second_out, _ = run_cli(capsys, *argv)
        assert first_code == second_code == 0
        assert first_out == second_out == SWEEP_GOLDEN

    def test_csv_export(self, capsys, tmp_path):
        path = tmp_path / "sweep.csv"
        code, out, _ = run_cli(capsys, *self.GRID, "--csv", str(path))
        assert code == 0
        header = path.read_text(encoding="utf-8").splitlines()[0]
        assert header.startswith("c_d,")
        assert "SA" in header and "DA" in header

    def test_write_fraction_parameter(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "sweep", "--parameter", "write_fraction",
            "--values", "0.0,0.5", "--processors", "3", "--length", "5",
            "--schedules", "1",
        )
        assert code == 0
        assert "write_fraction" in out

    def test_unknown_parameter_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--parameter", "bogus", "--values", "1.0"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'bogus'" in err
        assert "write_fraction" in err  # the valid choices are listed

    def test_zero_workers_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.GRID + ("--workers", "0"))
        assert excinfo.value.code == 2
        assert "expected a positive integer, got 0" in capsys.readouterr().err

    def test_negative_workers_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(self.GRID + ("--workers", "-3"))
        assert excinfo.value.code == 2

    def test_malformed_values_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--parameter", "c_d", "--values", "0.5,oops"])
        assert excinfo.value.code == 2
        assert "comma-separated" in capsys.readouterr().err


class TestAvailability:
    def test_rowa_table_and_best_quorums(self, capsys):
        code, out, _ = run_cli(
            capsys, "availability", "--p", "0.9", "--n", "5",
            "--write-fraction", "0.1",
        )
        assert code == 0
        assert "ROWA" in out
        assert "majority quorum" in out
        assert "best quorums" in out
        assert "r=2" in out  # read-heavy mix prefers small read quorums


class TestBench:
    def test_smoke_run_with_json_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "bench.json"
        code, out, _ = run_cli(
            capsys, "bench", "--smoke", "--out", str(out_path)
        )
        assert code == 0
        assert "SA" in out and "DA" in out and "DP" in out
        report = json.loads(out_path.read_text())
        assert report["config"]["smoke"] is True
        assert set(report["algorithms"]) == {"SA", "DA"}
        for entry in report["algorithms"].values():
            assert entry["costs_match"]
            assert entry["kernel_requests_per_second"] > 0
        assert report["dp"]["seconds"] >= 0

    def test_check_flag_passes_on_smoke(self, capsys):
        code, out, _ = run_cli(capsys, "bench", "--smoke", "--check")
        assert code == 0
        assert "check PASSED" in out
