"""Unit tests for the expected-cost analysis (repro.analysis.expected_cost)."""

from __future__ import annotations

import pytest

from repro.analysis.expected_cost import (
    DAExpectedCost,
    analytic_crossover_write_fraction,
    da_expected_cost,
    sa_expected_cost,
)
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import mobile, stationary
from repro.workloads.uniform import UniformWorkload

MODEL = stationary(0.1, 0.6)


class TestSAClosedForm:
    def test_read_only_workload(self):
        # E = c_io + (1 - t/n)(c_c + c_d).
        value = sa_expected_cost(MODEL, n=8, threshold=2, write_fraction=0.0)
        assert value == pytest.approx(1 + (1 - 0.25) * 0.7)

    def test_write_only_workload(self):
        # E = t c_io + (t - t/n) c_d.
        value = sa_expected_cost(MODEL, n=8, threshold=2, write_fraction=1.0)
        assert value == pytest.approx(2 + (2 - 0.25) * 0.6)

    def test_more_replicas_cheapen_reads(self):
        read_cost_t2 = sa_expected_cost(MODEL, 8, 2, 0.0)
        read_cost_t4 = sa_expected_cost(MODEL, 8, 4, 0.0)
        assert read_cost_t4 < read_cost_t2

    def test_more_replicas_raise_writes(self):
        write_cost_t2 = sa_expected_cost(MODEL, 8, 2, 1.0)
        write_cost_t4 = sa_expected_cost(MODEL, 8, 4, 1.0)
        assert write_cost_t4 > write_cost_t2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sa_expected_cost(MODEL, 8, 1, 0.5)
        with pytest.raises(ConfigurationError):
            sa_expected_cost(MODEL, 2, 2, 0.5)
        with pytest.raises(ConfigurationError):
            sa_expected_cost(MODEL, 8, 2, 1.5)


class TestDAChain:
    def test_read_only_converges_to_local_reads(self):
        # With no writes, everyone eventually holds a copy: the long-run
        # cost per request is exactly one I/O.
        value = da_expected_cost(MODEL, n=6, threshold=2, write_fraction=0.0)
        assert value == pytest.approx(MODEL.c_io, abs=1e-6)

    def test_expected_scheme_size_bounds(self):
        result = DAExpectedCost(MODEL, 8, 2, 0.3).solve()
        assert 2.0 <= result.expected_scheme_size <= 8.0

    def test_heavier_writes_shrink_expected_scheme(self):
        light = DAExpectedCost(MODEL, 8, 2, 0.1).solve()
        heavy = DAExpectedCost(MODEL, 8, 2, 0.7).solve()
        assert heavy.expected_scheme_size < light.expected_scheme_size

    def test_state_space_guard(self):
        with pytest.raises(ConfigurationError):
            DAExpectedCost(MODEL, n=20, threshold=2, write_fraction=0.5)

    @pytest.mark.parametrize("write_fraction", [0.05, 0.2, 0.5, 0.9])
    def test_chain_matches_simulation(self, write_fraction):
        n, t = 8, 2
        prediction = da_expected_cost(MODEL, n, t, write_fraction)
        schedule = UniformWorkload(
            range(1, n + 1), 4000, write_fraction
        ).generate(3)
        algorithm = DynamicAllocation(set(range(1, t + 1)), primary=t)
        simulated = MODEL.schedule_cost(algorithm.run(schedule)) / len(schedule)
        assert simulated == pytest.approx(prediction, rel=0.05)

    @pytest.mark.parametrize("write_fraction", [0.1, 0.5])
    def test_sa_form_matches_simulation(self, write_fraction):
        n, t = 8, 2
        prediction = sa_expected_cost(MODEL, n, t, write_fraction)
        schedule = UniformWorkload(
            range(1, n + 1), 4000, write_fraction
        ).generate(5)
        algorithm = StaticAllocation(set(range(1, t + 1)))
        simulated = MODEL.schedule_cost(algorithm.run(schedule)) / len(schedule)
        assert simulated == pytest.approx(prediction, rel=0.05)

    def test_mobile_model_supported(self):
        value = da_expected_cost(mobile(0.1, 0.6), 6, 2, 0.2)
        assert value > 0


class TestCrossover:
    def test_no_crossover_when_cd_large(self):
        # c_d > 1 (DA's proven superiority region): the chain shows DA's
        # expected cost below SA's at *every* write fraction — even
        # write-heavy mixes, where DA's writer-local replica saves a
        # data message per write.  No crossover exists.
        crossover = analytic_crossover_write_fraction(
            stationary(0.2, 1.5), n=8
        )
        assert crossover is None
        assert da_expected_cost(
            stationary(0.2, 1.5), 8, 2, 0.5
        ) < sa_expected_cost(stationary(0.2, 1.5), 8, 2, 0.5)

    def test_crossover_matches_empirical_rwmix_bench(self):
        # The rwmix benchmark measured the first crossover near 0.084
        # for these prices; the chain must land in the same place.
        crossover = analytic_crossover_write_fraction(MODEL, n=8)
        assert crossover == pytest.approx(0.084, abs=0.02)
