"""Unit tests for allocation schedules (repro.model.allocation).

The central example is the paper's own (§3.1): the allocation schedule

    tau_0 = w2{2,3} r4{1,2} w3{2,3} _r1{1,2} r2{2}

with initial scheme {3,4}, whose scheme evolution the paper spells out:
{3,4} at the first request, {2,3} at the second/third/fourth, and
{1,2,3} at the fifth (after the saving-read by processor 1).
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    AvailabilityViolationError,
    ConfigurationError,
    IllegalScheduleError,
)
from repro.model.allocation import (
    AllocationSchedule,
    check_request_order_preserved,
)
from repro.model.request import ExecutedRequest, read, write
from repro.model.schedule import Schedule


def paper_tau0() -> AllocationSchedule:
    """The allocation schedule tau_0 of paper §3.1."""
    return AllocationSchedule(
        frozenset({3, 4}),
        (
            ExecutedRequest(write(2), {2, 3}),
            ExecutedRequest(read(4), {1, 2}),
            ExecutedRequest(write(3), {2, 3}),
            ExecutedRequest(read(1), {1, 2}, saving=True),
            ExecutedRequest(read(2), {2}),
        ),
    )


class TestSchemeEvolution:
    def test_paper_scheme_sequence(self):
        tau = paper_tau0()
        schemes = [scheme for scheme, _ in tau.schemes()]
        assert schemes == [
            frozenset({3, 4}),
            frozenset({2, 3}),
            frozenset({2, 3}),
            frozenset({2, 3}),
            frozenset({1, 2, 3}),
        ]

    def test_scheme_at_indexing(self):
        tau = paper_tau0()
        assert tau.scheme_at(0) == frozenset({3, 4})
        assert tau.scheme_at(4) == frozenset({1, 2, 3})

    def test_scheme_at_out_of_range(self):
        with pytest.raises(IndexError):
            paper_tau0().scheme_at(5)

    def test_final_scheme_after_saving_read(self):
        # Paper: "at the end of this allocation schedule the object is
        # stored in the local databases of processors {1, 2, 3}".
        assert paper_tau0().final_scheme == frozenset({1, 2, 3})


class TestLegality:
    def test_paper_example_is_legal(self):
        # The paper's r4{1,2} is legal: {1,2} meets the scheme {2,3}.
        paper_tau0().check_legal()

    def test_illegal_when_read_misses_scheme(self):
        # Paper: "tau_0 will be illegal if we change the execution set
        # of the last request r2 from {2} to {4}".
        tau = paper_tau0()
        broken = AllocationSchedule(
            tau.initial_scheme,
            tau.steps[:4] + (ExecutedRequest(read(2), {4}),),
        )
        assert not broken.is_legal()
        with pytest.raises(IllegalScheduleError):
            broken.check_legal()

    def test_writes_never_illegal(self):
        allocation = AllocationSchedule(
            frozenset({1, 2}),
            (ExecutedRequest(write(9), {8, 9}),),
        )
        allocation.check_legal()


class TestAvailability:
    def test_paper_example_is_2_available(self):
        assert paper_tau0().satisfies_t_available(2)

    def test_paper_example_is_not_3_available(self):
        assert not paper_tau0().satisfies_t_available(3)

    def test_violation_pinpoints_request(self):
        allocation = AllocationSchedule(
            frozenset({1, 2}),
            (
                ExecutedRequest(write(1), {1}),
                ExecutedRequest(read(1), {1}),
            ),
        )
        with pytest.raises(AvailabilityViolationError) as excinfo:
            allocation.check_t_available(2)
        assert "#1" in str(excinfo.value)

    def test_final_scheme_checked(self):
        allocation = AllocationSchedule(
            frozenset({1, 2}),
            (ExecutedRequest(write(1), {1}),),
        )
        with pytest.raises(AvailabilityViolationError):
            allocation.check_t_available(2)


class TestCorrespondence:
    def test_schedule_extraction(self, paper_schedule):
        assert paper_tau0().schedule() == paper_schedule

    def test_corresponds_to(self, paper_schedule):
        assert paper_tau0().corresponds_to(paper_schedule)
        assert not paper_tau0().corresponds_to(paper_schedule[:4])

    def test_order_check_passes(self, paper_schedule):
        check_request_order_preserved(paper_tau0(), paper_schedule)

    def test_order_check_fails_on_mismatch(self):
        with pytest.raises(IllegalScheduleError):
            check_request_order_preserved(
                paper_tau0(), Schedule.parse("w2 r4")
            )


class TestConstruction:
    def test_empty_initial_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            AllocationSchedule(frozenset(), ())

    def test_non_executed_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            AllocationSchedule(frozenset({1}), (read(1),))

    def test_extended_appends(self):
        tau = paper_tau0()
        longer = tau.extended(ExecutedRequest(read(3), {3}))
        assert len(longer) == len(tau) + 1
        assert longer.steps[:5] == tau.steps

    def test_str_rendering(self):
        text = str(paper_tau0())
        assert text.startswith("[init={3,4}]")
        assert "_r1{1,2}" in text


class TestBreakdowns:
    def test_total_is_sum_of_parts(self):
        tau = paper_tau0()
        total = tau.total_breakdown()
        parts = tau.breakdowns()
        summed = parts[0]
        for part in parts[1:]:
            summed = summed + part
        assert total == summed

    def test_breakdown_count_matches_length(self):
        assert len(paper_tau0().breakdowns()) == 5
