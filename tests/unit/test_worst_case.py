"""Unit tests for the exhaustive worst-case search (repro.analysis.worst_case)."""

from __future__ import annotations

import pytest

from repro.analysis.worst_case import ExhaustiveSearch, certified_worst_case
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.offline_optimal import optimal_cost
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import stationary

MODEL = stationary(0.1, 0.2)
SCHEME = frozenset({1, 2})


class TestValidation:
    def test_rejects_large_universe(self):
        with pytest.raises(ConfigurationError):
            ExhaustiveSearch(MODEL, SCHEME, tuple(range(3, 10)))

    def test_rejects_bad_bracket(self):
        search = ExhaustiveSearch(MODEL, SCHEME, (5,))
        with pytest.raises(ConfigurationError):
            search.search(lambda: StaticAllocation(SCHEME), 2, min_length=3)

    def test_rejects_thin_scheme(self):
        with pytest.raises(ConfigurationError):
            ExhaustiveSearch(MODEL, {1}, (5,))


class TestIncrementalDPConsistency:
    def test_advance_agrees_with_full_solver(self):
        # The carried DP must price any particular schedule exactly as
        # the standalone OfflineOptimal does.
        search = ExhaustiveSearch(MODEL, SCHEME, (5, 6))
        from repro.model.request import read, write

        dp = search._initial_dp()
        requests = [read(5), write(6), read(5), read(6)]
        for request in requests:
            dp = search._advance(dp, request)
        from repro.model.schedule import Schedule

        expected = optimal_cost(Schedule(tuple(requests)), SCHEME, MODEL)
        assert min(dp.values()) == pytest.approx(expected)


class TestSearchResults:
    def test_worst_schedule_achieves_its_ratio(self):
        worst = certified_worst_case(
            lambda: DynamicAllocation(SCHEME, primary=2),
            MODEL,
            SCHEME,
            (5,),
            max_length=3,
        )
        algorithm = DynamicAllocation(SCHEME, primary=2)
        cost = MODEL.schedule_cost(algorithm.run(worst.schedule))
        opt = optimal_cost(worst.schedule, SCHEME, MODEL)
        assert cost == pytest.approx(worst.algorithm_cost)
        assert opt == pytest.approx(worst.optimal_cost)
        assert worst.ratio == pytest.approx(cost / opt)

    def test_da_single_foreign_read_is_the_short_worst_case(self):
        # With cheap communication, the single saving-read is DA's worst
        # length-1 schedule: (c_c + c_d + 2) / (c_c + c_d + 1).
        worst = certified_worst_case(
            lambda: DynamicAllocation(SCHEME, primary=2),
            MODEL,
            SCHEME,
            (5,),
            max_length=1,
        )
        assert str(worst.schedule) == "r5"
        expected = (0.1 + 0.2 + 2.0) / (0.1 + 0.2 + 1.0)
        assert worst.ratio == pytest.approx(expected)

    def test_sa_worst_case_grows_with_length(self):
        ratios = []
        for max_length in (2, 3, 4):
            worst = certified_worst_case(
                lambda: StaticAllocation(SCHEME),
                MODEL,
                SCHEME,
                (5,),
                max_length=max_length,
            )
            ratios.append(worst.ratio)
        # Longer horizons can only reveal worse (or equal) schedules.
        assert ratios == sorted(ratios)

    def test_worst_ratios_respect_proven_bounds(self):
        from repro.analysis.bounds import (
            da_competitive_factor,
            sa_competitive_factor,
        )

        sa_worst = certified_worst_case(
            lambda: StaticAllocation(SCHEME), MODEL, SCHEME, (5,), max_length=4
        )
        da_worst = certified_worst_case(
            lambda: DynamicAllocation(SCHEME, primary=2),
            MODEL, SCHEME, (5,), max_length=4,
        )
        assert sa_worst.ratio <= sa_competitive_factor(MODEL) + 1e-9
        assert da_worst.ratio <= da_competitive_factor(MODEL) + 1e-9
