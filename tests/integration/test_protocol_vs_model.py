"""Integration: the discrete-event protocols must cost exactly what the
analytic model says, request by request.

This is the reproduction's keystone consistency check: §3.2's cost
formulas charge I/Os, control messages and data messages; the simulator
counts real I/Os and real messages.  If they ever disagree, either the
protocol or the formula transcription is wrong.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.sa_protocol import StaticAllocationProtocol
from repro.distsim.runner import (
    build_network,
    compare_with_model,
    mismatches,
    run_protocol,
)
from repro.model.cost_model import mobile, stationary
from repro.model.schedule import Schedule
from repro.workloads.uniform import UniformWorkload

SCHEDULES = [
    "r1 r2",
    "r5 r5 r5",
    "w1 w5 w2",
    "r5 w1 r5 r6 w6 r6 r2 w2 r5",
    "w2 r4 w3 r1 r2",  # the paper's psi_0
    "r1 r1 r2 w2 r2 r2 r2",  # the paper's intro example
]


class TestStaticAllocationAgreement:
    @pytest.mark.parametrize("text", SCHEDULES)
    def test_per_request_counts_match(self, text):
        schedule = Schedule.parse(text)
        scheme = {1, 2}
        network = build_network(set(schedule.processors) | scheme)
        protocol = StaticAllocationProtocol(network, scheme)
        comparisons = compare_with_model(
            protocol, StaticAllocation(scheme), schedule
        )
        assert mismatches(comparisons) == []

    def test_random_workload_agreement(self):
        schedule = UniformWorkload(range(1, 7), 60, 0.3).generate(11)
        scheme = {1, 2, 3}
        network = build_network(set(schedule.processors) | scheme)
        protocol = StaticAllocationProtocol(network, scheme)
        comparisons = compare_with_model(
            protocol, StaticAllocation(scheme), schedule
        )
        assert mismatches(comparisons) == []


class TestDynamicAllocationAgreement:
    @pytest.mark.parametrize("text", SCHEDULES)
    def test_per_request_counts_match(self, text):
        schedule = Schedule.parse(text)
        scheme = {1, 2}
        network = build_network(set(schedule.processors) | scheme)
        protocol = DynamicAllocationProtocol(network, scheme, primary=2)
        comparisons = compare_with_model(
            protocol, DynamicAllocation(scheme, primary=2), schedule
        )
        assert mismatches(comparisons) == []

    def test_random_workload_agreement(self):
        schedule = UniformWorkload(range(1, 7), 60, 0.3).generate(13)
        scheme = {1, 2, 3}
        network = build_network(set(schedule.processors) | scheme)
        protocol = DynamicAllocationProtocol(network, scheme, primary=3)
        comparisons = compare_with_model(
            protocol, DynamicAllocation(scheme, primary=3), schedule
        )
        assert mismatches(comparisons) == []

    def test_protocol_scheme_matches_model_scheme(self):
        schedule = Schedule.parse("r5 r6 w1 r5 w7 r7")
        scheme = {1, 2}
        network = build_network({1, 2, 5, 6, 7})
        protocol = DynamicAllocationProtocol(network, scheme, primary=2)
        algorithm = DynamicAllocation(scheme, primary=2)
        for request in schedule:
            protocol.execute_request(request)
            algorithm.online_step(request)
            assert protocol.current_scheme() == algorithm.current_scheme


class TestPricedTotals:
    @pytest.mark.parametrize("name", ["SA", "DA"])
    @pytest.mark.parametrize(
        "model",
        [stationary(0.2, 1.5), mobile(0.5, 2.0)],
        ids=["sc", "mc"],
    )
    def test_total_cost_agreement(self, name, model):
        schedule = UniformWorkload(range(1, 6), 40, 0.25).generate(5)
        scheme = {1, 2}
        stats = run_protocol(name, schedule, scheme, primary=2)
        if name == "SA":
            algorithm = StaticAllocation(scheme)
        else:
            algorithm = DynamicAllocation(scheme, primary=2)
        allocation = algorithm.run(schedule)
        assert stats.cost(model) == pytest.approx(
            model.schedule_cost(allocation)
        )


class TestLatencies:
    def test_every_request_completes_with_latency(self):
        schedule = Schedule.parse("r5 w1 r5")
        stats = run_protocol("DA", schedule, {1, 2}, primary=2)
        assert stats.requests_completed == 3
        assert len(stats.latencies) == 3
        assert all(latency > 0 for latency in stats.latencies)

    def test_local_reads_are_fastest(self):
        stats = run_protocol("DA", Schedule.parse("r5 r5"), {1, 2}, primary=2)
        first, second = stats.latencies
        assert second < first  # the saved copy makes the re-read local
