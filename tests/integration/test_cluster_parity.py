"""Integration: the live cluster's headline correctness claim.

For any replayed trace, the live cluster's aggregated control/data
message and I/O counts must equal — bit for bit — the stepped
algorithm's accounting, the discrete-event simulator's counters, and
the vectorized kernel's unit-priced totals.  With and without injected
transport delays: delays reorder deliveries in wall-clock time but a
closed-loop replay is still the paper's totally-ordered schedule, so
nothing about the counts may change.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterSpec,
    FaultPlan,
    replay_schedule,
    start_local_cluster,
)
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.distsim.runner import run_protocol
from repro.kernel.dispatch import schedule_breakdown
from repro.model.cost_model import mobile, stationary
from repro.workloads.uniform import UniformWorkload

PROCESSORS = (1, 2, 3)
SCHEME = frozenset({1, 2})
PRIMARY = 2

#: The acceptance-sized trace: >= 500 requests over three processors.
TRACE = UniformWorkload(PROCESSORS, 500, 0.3).generate(101)


def live_stats(protocol: str, schedule, fault_plan=None):
    """Replay a schedule against a fresh in-process cluster."""

    async def drive():
        spec = ClusterSpec(
            processors=PROCESSORS,
            scheme=SCHEME,
            protocol=protocol,
            primary=PRIMARY,
        )
        cluster = await start_local_cluster(spec)
        client = ClusterClient(cluster.addresses)
        try:
            if fault_plan is not None:
                await cluster.set_fault_plan(fault_plan)
            result = await replay_schedule(
                client, schedule, check_freshness=True
            )
            result.raise_on_errors()
            return await cluster.aggregate_stats()
        finally:
            await client.close()
            await cluster.stop()

    return asyncio.run(drive())


def stepped_algorithm(protocol: str):
    if protocol == "SA":
        return StaticAllocation(SCHEME)
    return DynamicAllocation(SCHEME, primary=PRIMARY)


class TestEndToEndParity:
    """The acceptance test of the live-cluster subsystem."""

    @pytest.mark.parametrize("protocol", ["SA", "DA"])
    @pytest.mark.parametrize(
        "fault_plan",
        [None, FaultPlan(default_delay=0.0005)],
        ids=["no-delay", "delayed"],
    )
    def test_live_counts_match_all_realizations(self, protocol, fault_plan):
        stats = live_stats(protocol, TRACE, fault_plan)
        live = stats.breakdown()

        algorithm = stepped_algorithm(protocol)
        stepped = algorithm.run(TRACE).total_breakdown()
        simulated = run_protocol(
            protocol, TRACE, SCHEME, primary=PRIMARY
        ).breakdown()
        kernel = schedule_breakdown(stepped_algorithm(protocol), TRACE)

        assert live == stepped
        assert live == simulated
        assert live == kernel
        assert stats.requests_completed == len(TRACE)
        assert stats.dropped_messages == 0

    @pytest.mark.parametrize("protocol", ["SA", "DA"])
    def test_priced_costs_match_under_both_models(self, protocol):
        """The breakdown parity lifts to every (c_io, c_c, c_d) point."""
        schedule = TRACE[:120]
        live = live_stats(protocol, schedule).breakdown()
        stepped = stepped_algorithm(protocol).run(schedule).total_breakdown()
        for model in (stationary(0.2, 1.5), mobile(0.4, 2.0)):
            assert model.price(live) == pytest.approx(model.price(stepped))

    def test_da_writes_restart_join_lists_like_the_model(self):
        """A write-heavy trace exercises the join-list walk on every
        core member; counts must still agree everywhere."""
        schedule = UniformWorkload(PROCESSORS, 200, 0.7).generate(23)
        for protocol in ("SA", "DA"):
            live = live_stats(protocol, schedule).breakdown()
            stepped = (
                stepped_algorithm(protocol).run(schedule).total_breakdown()
            )
            assert live == stepped

    def test_wider_scheme_and_more_processors(self):
        """t=3 over five processors: outsiders join and get invalidated."""
        processors = (1, 2, 3, 4, 5)
        scheme = frozenset({1, 2, 3})
        schedule = UniformWorkload(processors, 150, 0.3).generate(7)

        async def drive(protocol):
            spec = ClusterSpec(
                processors=processors, scheme=scheme,
                protocol=protocol, primary=3,
            )
            cluster = await start_local_cluster(spec)
            client = ClusterClient(cluster.addresses)
            try:
                result = await replay_schedule(client, schedule)
                result.raise_on_errors()
                return await cluster.aggregate_stats()
            finally:
                await client.close()
                await cluster.stop()

        for protocol, algorithm in (
            ("SA", StaticAllocation(scheme)),
            ("DA", DynamicAllocation(scheme, primary=3)),
        ):
            live = asyncio.run(drive(protocol)).breakdown()
            assert live == algorithm.run(schedule).total_breakdown()
