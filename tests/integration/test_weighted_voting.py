"""Integration tests for Gifford-style weighted voting.

The quorum fallback generalizes Thomas's one-vote-per-node majority to
Gifford's weighted voting: vote weights shift the quorum geometry, so a
heavy voter can make quorums small (cheap) while zero-vote nodes hold
non-authoritative weak copies.
"""

from __future__ import annotations

import pytest

from repro.distsim.failures import FailureInjector
from repro.distsim.protocols.quorum import QuorumConsensusProtocol
from repro.distsim.runner import build_network
from repro.exceptions import ProtocolError
from repro.model.request import read, write
from repro.model.schedule import Schedule


def make(votes=None, read_quorum=None, write_quorum=None):
    network = build_network({1, 2, 3, 4, 5})
    protocol = QuorumConsensusProtocol(
        network, {1, 2},
        read_quorum=read_quorum, write_quorum=write_quorum, votes=votes,
    )
    return network, protocol


class TestVoteConfiguration:
    def test_default_is_one_vote_each(self):
        _, protocol = make()
        assert protocol.votes == {n: 1 for n in (1, 2, 3, 4, 5)}
        assert protocol.read_quorum == 3

    def test_weighted_majority(self):
        # Node 1 carries 3 votes: total 7, majority 4.
        _, protocol = make(votes={1: 3})
        assert protocol.read_quorum == 4
        assert protocol.write_quorum == 4

    def test_unknown_voter_rejected(self):
        with pytest.raises(ProtocolError):
            make(votes={99: 1})

    def test_negative_votes_rejected(self):
        with pytest.raises(ProtocolError):
            make(votes={1: -1})

    def test_all_zero_votes_rejected(self):
        with pytest.raises(ProtocolError):
            make(votes={n: 0 for n in (1, 2, 3, 4, 5)})

    def test_non_intersecting_weighted_quorums_rejected(self):
        with pytest.raises(ProtocolError):
            make(votes={1: 3}, read_quorum=3, write_quorum=4)  # 3+4 <= 7


class TestWeightedBehaviour:
    def test_heavy_voter_shrinks_quorums(self):
        # Node 1 alone (3 votes) plus any other node meets a 4-vote
        # quorum: reads poll fewer nodes than one-vote-each majority.
        network, protocol = make(votes={1: 3})
        protocol.execute_request(read(4))
        light_network, light_protocol = make()
        light_protocol.execute_request(read(4))
        assert (
            network.stats.control_messages
            < light_network.stats.control_messages
        )

    def test_reads_stay_fresh_under_weights(self):
        _, protocol = make(votes={1: 3})
        protocol.execute(Schedule.parse("w3 r4 w5 r1 r2"))
        assert protocol.latest_version.number == 2

    def test_heavy_voter_crash_blocks_service(self):
        # With votes {1:3, others:1} and quorums of 4, losing node 1
        # leaves only 4 live votes... exactly enough; losing one more
        # node blocks.
        network, protocol = make(votes={1: 3})
        injector = FailureInjector(network, protocol)
        injector.crash_now(1)
        protocol.execute_request(write(3))  # 4 live votes: still fine
        injector.crash_now(2)
        with pytest.raises(ProtocolError):
            protocol.execute_request(write(3))

    def test_zero_vote_node_is_never_authoritative(self):
        # Node 5 has no votes: quorums never rely on it, but it can
        # still issue requests.
        _, protocol = make(votes={5: 0})
        protocol.execute(Schedule.parse("w5 r5 r4"))
        assert protocol.latest_version.number == 1

    def test_weighted_quorums_survive_minority_crash(self):
        network, protocol = make(votes={1: 2, 2: 2})  # total 7, majority 4
        injector = FailureInjector(network, protocol)
        protocol.execute_request(write(3))
        injector.crash_now(3)
        protocol.execute_request(write(4))
        protocol.execute_request(read(5))
        assert protocol.latest_version.number == 2
