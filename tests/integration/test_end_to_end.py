"""End-to-end integration: the paper's headline claims, measured.

Each test here reproduces one qualitative result of the paper on real
workloads, with the exact offline optimum as the yardstick — the
miniature versions of the benchmark harness's experiments.
"""

from __future__ import annotations

import pytest

from repro.analysis.bounds import da_competitive_factor, sa_competitive_factor
from repro.core.competitive import CompetitivenessHarness
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.model.cost_model import mobile, stationary
from repro.model.schedule import Schedule
from repro.workloads.adversarial import adversarial_suite
from repro.workloads.uniform import UniformWorkload


def mixed_suite(seed=0):
    suite = adversarial_suite({1, 2}, [5, 6, 7], rounds=4)
    suite += UniformWorkload(range(1, 8), 24, 0.3).batch(3, seed=seed)
    return suite


class TestTheoremBoundsHold:
    @pytest.mark.parametrize(
        "c_c,c_d", [(0.0, 0.0), (0.1, 0.3), (0.3, 1.2), (1.0, 2.0)]
    )
    def test_sa_within_theorem_1(self, c_c, c_d):
        model = stationary(c_c, c_d)
        harness = CompetitivenessHarness(model)
        report = harness.measure(
            lambda: StaticAllocation({1, 2}), mixed_suite()
        )
        assert report.within(sa_competitive_factor(model))

    @pytest.mark.parametrize(
        "c_c,c_d", [(0.0, 0.0), (0.1, 0.3), (0.3, 1.2), (1.0, 2.0)]
    )
    def test_da_within_theorems_2_and_3(self, c_c, c_d):
        model = stationary(c_c, c_d)
        harness = CompetitivenessHarness(model)
        report = harness.measure(
            lambda: DynamicAllocation({1, 2}, primary=2), mixed_suite()
        )
        assert report.within(da_competitive_factor(model))

    @pytest.mark.parametrize("c_c,c_d", [(0.2, 1.0), (0.5, 2.0), (1.0, 1.0)])
    def test_da_within_theorem_4_mobile(self, c_c, c_d):
        model = mobile(c_c, c_d)
        harness = CompetitivenessHarness(model)
        report = harness.measure(
            lambda: DynamicAllocation({1, 2}, primary=2), mixed_suite()
        )
        assert report.within(da_competitive_factor(model))
        assert report.max_ratio <= 5.0 + 1e-9


class TestSuperiorityClaims:
    def test_da_beats_sa_when_cd_above_one(self):
        model = stationary(0.2, 1.5)
        harness = CompetitivenessHarness(model)
        suite = mixed_suite()
        sa = harness.measure(lambda: StaticAllocation({1, 2}), suite)
        da = harness.measure(lambda: DynamicAllocation({1, 2}, primary=2), suite)
        assert da.max_ratio < sa.max_ratio

    def test_sa_beats_da_when_costs_tiny(self):
        model = stationary(0.05, 0.1)
        harness = CompetitivenessHarness(model)
        suite = mixed_suite()
        sa = harness.measure(lambda: StaticAllocation({1, 2}), suite)
        da = harness.measure(lambda: DynamicAllocation({1, 2}, primary=2), suite)
        assert sa.max_ratio < da.max_ratio

    def test_mobile_da_strictly_superior(self):
        model = mobile(0.5, 2.0)
        harness = CompetitivenessHarness(model)
        suite = mixed_suite()
        sa = harness.measure(lambda: StaticAllocation({1, 2}), suite)
        da = harness.measure(lambda: DynamicAllocation({1, 2}, primary=2), suite)
        assert da.max_ratio < sa.max_ratio
        assert da.max_ratio <= 5.0 + 1e-9


class TestIntroductionExample:
    def test_dynamic_beats_static_on_the_intro_schedule(self):
        # §1.3's r1 r1 r2 w2 r2 r2 r2, adapted to t = 2 (the paper's
        # single-copy example predates its own availability constraint):
        # reads concentrate at 2 after w2, so moving the scheme wins.
        model = stationary(0.2, 1.5)
        schedule = Schedule.parse("r1 r1 r2 w2 r2 r2 r2")
        sa = StaticAllocation({1, 3})
        da = DynamicAllocation({1, 3}, primary=1)
        sa_cost = model.schedule_cost(sa.run(schedule))
        da_cost = model.schedule_cost(da.run(schedule))
        assert da_cost < sa_cost


class TestThresholdIndependence:
    @pytest.mark.parametrize("t", [2, 3, 4])
    def test_bounds_hold_for_any_t(self, t):
        # §2: "these competitiveness factors are independent of the
        # integer t".
        model = stationary(0.2, 1.5)
        scheme = frozenset(range(1, t + 1))
        harness = CompetitivenessHarness(model, threshold=t)
        suite = adversarial_suite(scheme, [8, 9], rounds=3)
        sa = harness.measure(lambda: StaticAllocation(scheme), suite)
        da = harness.measure(lambda: DynamicAllocation(scheme), suite)
        assert sa.within(sa_competitive_factor(model))
        assert da.within(da_competitive_factor(model))
