"""Integration: opt-in fault tolerance on the live cluster.

At-least-once retries over lossy links, node-side dedup of duplicated
client requests, scheme repair back to ``t`` valid copies (with DA
join-list adoption), degraded-mode write rejection under a partition,
client connection recovery, and the headline guarantee that fault-free
runs stay bit-identical with resilience enabled.
"""

from __future__ import annotations

import asyncio

from repro.cluster import (
    ClusterClient,
    ClusterSpec,
    FaultPlan,
    RetryPolicy,
    SchemeRepairer,
    replay_schedule,
    resilience_totals,
    start_local_cluster,
)
from repro.cluster.rpc import read_frame, write_frame
from repro.cluster.transport import open_channel
from repro.core.dynamic_allocation import DynamicAllocation
from repro.storage.versions import ObjectVersion
from repro.workloads.uniform import UniformWorkload

SCHEME = frozenset({1, 2})
PRIMARY = 2

#: Fast backoff so faulted tests spend milliseconds, not seconds.
POLICY = RetryPolicy(attempts=4, base_delay=0.005, max_delay=0.05, seed=0)


def run(coro):
    return asyncio.run(coro)


async def booted(protocol: str = "DA", processors=(1, 2, 3)):
    spec = ClusterSpec(
        processors=tuple(processors),
        scheme=SCHEME,
        protocol=protocol,
        primary=PRIMARY if protocol == "DA" else None,
        resilience=POLICY,
    )
    cluster = await start_local_cluster(spec)
    client = ClusterClient(cluster.addresses, timeout=10.0, retry=POLICY)
    return cluster, client


class TestRetries:
    def test_write_survives_dropped_store(self):
        async def scenario():
            cluster, client = await booted()
            try:
                # Two drops on the store link 1->2; attempt 3 delivers.
                await cluster.set_fault_plan(
                    FaultPlan(drop_next={(1, 2): 2}), nodes=[1]
                )
                write = await client.execute(
                    1, "write", rid=1, version=ObjectVersion(1, 1)
                )
                assert write.ok

                metrics = await cluster.metrics()
                totals = resilience_totals(metrics.values())
                assert totals["retries_sent"] >= 2
                # Paper accounting is unchanged: one charged data
                # message; the faulted attempts count only as drops.
                assert metrics[1].data_sent == 1
                assert metrics[1].dropped_messages == 2

                # The replica really took the update.
                read = await client.execute(2, "read", rid=2)
                assert read.ok and read.version.number == 1
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_invalidation_fan_out_retries(self):
        async def scenario():
            cluster, client = await booted(processors=(1, 2, 3, 4))
            try:
                # Outsiders 3 and 4 join by reading (save-on-read).
                assert (await client.execute(3, "read", rid=1)).ok
                assert (await client.execute(4, "read", rid=2)).ok

                # The writer's invalidations to both joiners are lossy.
                await cluster.set_fault_plan(
                    FaultPlan(drop_next={(1, 3): 2, (1, 4): 2}), nodes=[1]
                )
                write = await client.execute(
                    1, "write", rid=3, version=ObjectVersion(1, 1)
                )
                assert write.ok

                totals = resilience_totals((await cluster.metrics()).values())
                assert totals["retries_sent"] >= 4

                # The invalidations landed: neither joiner serves the
                # stale copy — both re-read the new version.
                for node, rid in ((3, 4), (4, 5)):
                    read = await client.execute(node, "read", rid=rid)
                    assert read.ok and read.version.number == 1
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestDedup:
    def test_duplicate_write_frame_runs_once(self):
        async def scenario():
            cluster, client = await booted()
            try:
                frame = {
                    "type": "exec",
                    "rid": 1,
                    "op": "write",
                    "version": {"number": 1, "writer": 1},
                }
                reader, writer = await open_channel(cluster.addresses[1])
                try:
                    await write_frame(writer, frame)
                    first = await read_frame(reader)
                    await write_frame(writer, frame)  # client "retry"
                    second = await read_frame(reader)
                finally:
                    writer.close()
                assert first["ok"] and second == first

                metrics = await cluster.metrics()
                assert metrics[1].dedup_hits == 1
                # The write executed once: one local install, one store
                # shipped to the replica, no double-charging.
                assert metrics[1].io_writes == 1
                assert metrics[1].data_sent == 1
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestSchemeRepair:
    def test_repair_restores_t_copies_and_adopts(self):
        async def scenario():
            cluster, client = await booted()
            repairer = SchemeRepairer(cluster, t=2)
            try:
                # Crash the primary; the surviving core member still
                # accepts the write (fail-stop peers cannot block it),
                # but only one valid copy remains.
                await cluster.crash(2)
                write = await client.execute(
                    1, "write", rid=1, version=ObjectVersion(1, 1)
                )
                assert write.ok

                report = await repairer.repair_round()
                assert not report.degraded
                assert len(report.holders) >= 2
                assert report.repaired == ((1, 3, 1),)
                # DA: the repaired outsider is adopted into a live core
                # member's join-list so future writes invalidate it.
                assert report.adopted == (3,)

                # Adoption works end to end: the next write invalidates
                # node 3, whose next read returns the new version.
                write = await client.execute(
                    1, "write", rid=2, version=ObjectVersion(2, 1)
                )
                assert write.ok
                read = await client.execute(3, "read", rid=3)
                assert read.ok and read.version.number == 2

                # Recovery: the primary comes back stale and the next
                # round re-copies the object to it.
                await cluster.recover(2)
                report = await repairer.repair_round()
                assert not report.degraded
                assert 2 in {target for _, target, _ in report.repaired}
                assert set(report.holders) >= {1, 2, 3}

                totals = resilience_totals((await cluster.metrics()).values())
                assert totals["repairs_sent"] >= 2
                assert totals["repairs_received"] >= 2
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestStewardCrashMidRepair:
    def test_second_pass_converges_without_recopying(self):
        """Regression: the prospective steward crashing between the
        status snapshot and the adopt call used to abort the round with
        an unhandled ClusterError.  Now the round completes degraded,
        and the *next* pass converges without double-charging data
        messages for holders the first pass already refreshed."""

        async def scenario():
            # A two-member core ({1, 2}) so one core crash leaves a
            # live steward candidate for the flaky adopt to kill.
            spec = ClusterSpec(
                processors=(1, 2, 3, 4),
                scheme=frozenset({1, 2, 3}),
                protocol="DA",
                primary=3,
                resilience=POLICY,
            )
            cluster = await start_local_cluster(spec)
            client = ClusterClient(cluster.addresses, timeout=10.0, retry=POLICY)
            repairer = SchemeRepairer(cluster, t=3)
            try:
                # Outsider 4 joins node 1's list by reading, then the
                # crash of 1 orphans it: the write at 2 cannot reach it,
                # leaving 4 stale-but-valid at the seed version.
                assert (await client.execute(4, "read", rid=1)).ok
                await cluster.crash(1)
                write = await client.execute(
                    2, "write", rid=2, version=ObjectVersion(1, 2)
                )
                assert write.ok

                # The only live core member (the steward candidate)
                # crashes between the status snapshot and the adopt.
                adopt_calls = []
                original_adopt = cluster.adopt

                async def flaky_adopt(node_id, nodes, steward=False):
                    adopt_calls.append(node_id)
                    if len(adopt_calls) == 1:
                        await cluster.crash(node_id)
                    return await original_adopt(node_id, nodes, steward=steward)

                cluster.adopt = flaky_adopt

                first = await repairer.repair_round()
                # The round survived the mid-repair crash: degraded,
                # not raised — and the stale holder 4 was already
                # refreshed before the steward died.
                assert first.degraded
                assert adopt_calls == [2]
                assert first.repaired == ((2, 4, 1),)

                await cluster.recover(1)
                await cluster.recover(2)
                second = await repairer.repair_round()
                assert not second.degraded
                # Only the recovered core members take copies; node 4
                # keeps the copy from round one — no double charge.
                assert {t for _, t, _ in second.repaired} == {1, 2}
                assert set(second.holders) == {1, 2, 3, 4}
                assert 4 in second.adopted

                totals = resilience_totals((await cluster.metrics()).values())
                assert totals["repairs_sent"] == totals["repairs_received"] == 3

                # Adoption is live again end to end: a write at the new
                # steward invalidates 4, whose next read is fresh.
                write = await client.execute(
                    1, "write", rid=3, version=ObjectVersion(2, 1)
                )
                assert write.ok
                read = await client.execute(4, "read", rid=4)
                assert read.ok and read.version.number == 2
            finally:
                cluster.adopt = original_adopt
                await client.close()
                await cluster.stop()

        run(scenario())


class TestDegradedWrites:
    def test_partitioned_writer_is_rejected_then_heals(self):
        async def scenario():
            cluster, client = await booted("SA")
            try:
                await cluster.set_fault_plan(
                    FaultPlan(partitions=(frozenset({1, 2}), frozenset({3})))
                )
                # Node 3 cannot reach any scheme member: the write is
                # rejected with a typed degraded error, not silently
                # acknowledged against zero replicas.
                write = await client.execute(
                    3, "write", rid=1, version=ObjectVersion(1, 3)
                )
                assert not write.ok
                assert write.degraded

                totals = resilience_totals((await cluster.metrics()).values())
                assert totals["degraded_rejections"] >= 1

                # Healing restores service and the rejected version
                # number is reusable — it was never acknowledged.
                await cluster.set_fault_plan(None)
                write = await client.execute(
                    3, "write", rid=2, version=ObjectVersion(1, 3)
                )
                assert write.ok
                read = await client.execute(1, "read", rid=3)
                assert read.ok and read.version.number == 1
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestConnectionRecovery:
    def test_poisoned_connection_is_scoped_and_redialed(self):
        async def scenario():
            cluster, client = await booted()
            try:
                # Poison the node-1 connection with a frame whose length
                # prefix exceeds the codec limit; the node hangs up.
                writer, _ = await client._conn(1)
                writer.write(b"\xff\xff\xff\xff")
                await writer.drain()
                await asyncio.sleep(0.05)

                # Node 2's connection is untouched...
                other = await client.execute(2, "read", rid=1)
                assert other.ok and other.retries == 0
                # ...and node 1 service recovers via redial.
                healed = await client.execute(1, "read", rid=2)
                assert healed.ok
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestFaultFreeParity:
    def test_resilient_replay_matches_stepped_model(self):
        schedule = UniformWorkload((1, 2, 3), 80, 0.3).generate(11)

        async def scenario():
            cluster, client = await booted()
            try:
                result = await replay_schedule(client, schedule)
                result.raise_on_errors()
                totals = resilience_totals((await cluster.metrics()).values())
                return await cluster.aggregate_stats(), totals
            finally:
                await client.close()
                await cluster.stop()

        stats, totals = run(scenario())
        stepped = (
            DynamicAllocation(SCHEME, primary=PRIMARY)
            .run(schedule)
            .total_breakdown()
        )
        assert stats.breakdown() == stepped
        # Without faults the resilience machinery never fires.
        assert totals["retries_sent"] == 0
        assert totals["dedup_hits"] == 0
        assert totals["degraded_rejections"] == 0
