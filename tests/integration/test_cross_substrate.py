"""Cross-substrate integration: compositions of the extension pieces.

The extension modules were each validated alone; these tests wire them
together the way a user would — quorum consensus on a contended bus,
failover under disk serialization, the directory over the simulator's
algorithms — and check the global invariants still hold.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic_allocation import DynamicAllocation
from repro.distsim.bus import SharedBusNetwork
from repro.distsim.failures import FailureInjector
from repro.distsim.network import Network
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.missing_writes import FaultTolerantDAProtocol
from repro.distsim.protocols.quorum import QuorumConsensusProtocol
from repro.distsim.simulator import Simulator
from repro.model.cost_model import stationary
from repro.model.request import read, write
from repro.model.schedule import Schedule
from repro.workloads.uniform import UniformWorkload

MODEL = stationary(0.2, 1.5)
SCHEME = frozenset({1, 2})


def bus_network(nodes, **kwargs):
    network = SharedBusNetwork(Simulator(), **kwargs)
    network.add_nodes(nodes)
    return network


class TestQuorumOnTheBus:
    def test_quorum_reads_stay_fresh_under_contention(self):
        network = bus_network({1, 2, 3, 4, 5})
        protocol = QuorumConsensusProtocol(network, SCHEME)
        protocol.execute(Schedule.parse("w3 r4 w2 r5 r1"))
        assert protocol.latest_version.number == 2

    def test_quorum_chatter_queues_on_the_bus(self):
        network = bus_network({1, 2, 3, 4, 5})
        protocol = QuorumConsensusProtocol(network, SCHEME)
        protocol.execute_request(read(4))
        # The version inquiries go out back-to-back: later ones queue.
        assert network.max_queue_delay > 0

    def test_costs_unchanged_by_the_bus(self):
        schedule = UniformWorkload(range(1, 6), 30, 0.3).generate(8)
        flat_network = Network(Simulator())
        flat_network.add_nodes(range(1, 6))
        flat = QuorumConsensusProtocol(flat_network, SCHEME)
        flat_stats = flat.execute(schedule)
        bus = bus_network(set(range(1, 6)))
        bus_protocol = QuorumConsensusProtocol(bus, SCHEME)
        bus_stats = bus_protocol.execute(schedule)
        assert flat_stats.breakdown() == bus_stats.breakdown()
        assert bus_stats.mean_latency >= flat_stats.mean_latency


class TestFailoverUnderDiskSerialization:
    def test_outage_cycle_completes_with_serial_disks(self):
        network = Network(Simulator(), serialize_io=True)
        network.add_nodes(range(1, 6))
        protocol = FaultTolerantDAProtocol(network, SCHEME, primary=2)
        injector = FailureInjector(network, protocol)
        protocol.execute(Schedule.parse("r3 w1 r4"))
        injector.crash_now(1)
        protocol.execute(Schedule.parse("w4 r3 r5"))
        injector.recover_now(1)
        protocol.execute(Schedule.parse("r1 w2 r5"))
        assert protocol.mode == "da"
        assert protocol.latest_version.number == 3


class TestDAOnSerialDisks:
    def test_counts_still_match_the_model(self):
        schedule = UniformWorkload(range(1, 6), 40, 0.3).generate(12)
        network = Network(Simulator(), serialize_io=True)
        network.add_nodes(range(1, 6))
        protocol = DynamicAllocationProtocol(network, SCHEME, primary=2)
        stats = protocol.execute(schedule)
        analytic = MODEL.schedule_cost(
            DynamicAllocation(SCHEME, primary=2).run(schedule)
        )
        assert stats.cost(MODEL) == pytest.approx(analytic)

    def test_serialization_is_benign_for_sequential_requests(self):
        # The drivers run requests one at a time and the protocols
        # never issue two I/Os at the same node within one request, so
        # per-request latencies are unchanged — serialization only
        # bites for overlapping system rounds (e.g. recovery refresh) or
        # raw perform_io bursts (unit-tested in test_disk_serialization).
        latencies = {}
        for serialize in (False, True):
            network = Network(Simulator(), serialize_io=serialize)
            network.add_nodes({1, 2, 5, 6, 7})
            protocol = DynamicAllocationProtocol(network, SCHEME, primary=2)
            protocol.execute(Schedule.parse("r5 r6 r7"))
            latencies[serialize] = network.stats.latencies
        assert latencies[True] == latencies[False]
