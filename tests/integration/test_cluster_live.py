"""Integration: live-cluster behavior beyond happy-path replay.

Fail-stop crashes, sender-side transport faults (dropped reads,
dropped stores, partitions), open-loop Poisson load, the subprocess
launch mode, and the admin plane.
"""

from __future__ import annotations

import asyncio
import socket

from repro.cluster import (
    ClusterClient,
    ClusterSpec,
    FaultPlan,
    poisson_load,
    replay_schedule,
    start_cluster,
    start_local_cluster,
)
from repro.core.dynamic_allocation import DynamicAllocation
from repro.storage.versions import ObjectVersion
from repro.workloads.uniform import UniformWorkload

PROCESSORS = (1, 2, 3)
SCHEME = frozenset({1, 2})
PRIMARY = 2


def run(coro):
    return asyncio.run(coro)


async def booted(protocol: str = "DA"):
    spec = ClusterSpec(
        processors=PROCESSORS,
        scheme=SCHEME,
        protocol=protocol,
        primary=PRIMARY if protocol == "DA" else None,
    )
    cluster = await start_local_cluster(spec)
    client = ClusterClient(cluster.addresses, timeout=10.0)
    return cluster, client


class TestCrashRecover:
    def test_exec_on_crashed_node_fails(self):
        async def scenario():
            cluster, client = await booted()
            try:
                await cluster.crash(3)
                outcome = await client.execute(3, "read", rid=1)
                assert not outcome.ok
                assert "crash" in (outcome.error or "")
                # The rest of the cluster is unbothered.
                alive = await client.execute(1, "read", rid=2)
                assert alive.ok
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_write_survives_crashed_replica(self):
        async def scenario():
            cluster, client = await booted()
            try:
                await cluster.crash(2)
                write = await client.execute(
                    1, "write", rid=1, version=ObjectVersion(1, 1)
                )
                assert write.ok  # fail-stop peer cannot block the writer
                metrics = await cluster.metrics()
                assert metrics[2].dropped_messages >= 1

                # Recovery follows distsim semantics: the copy stays
                # invalid until re-read from the server.
                await cluster.recover(2)
                read = await client.execute(2, "read", rid=2)
                assert read.ok
                assert read.version is not None
                assert read.version.number == 1
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestTransportFaults:
    def test_dropped_read_request_fails_cleanly(self):
        async def scenario():
            cluster, client = await booted()
            try:
                plan = FaultPlan(drop_next={(3, 1): 1})
                await cluster.set_fault_plan(plan, nodes=[3])

                first = await client.execute(3, "read", rid=1)
                assert not first.ok  # the ReadRequest never left node 3

                second = await client.execute(3, "read", rid=2)
                assert second.ok  # drop budget spent

                metrics = await cluster.metrics()
                assert metrics[3].dropped_messages == 1
                # Doomed messages are still charged at the sender,
                # exactly like the simulated network.
                assert metrics[3].control_sent == 2
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_dropped_store_does_not_block_the_writer(self):
        async def scenario():
            cluster, client = await booted("SA")
            try:
                await cluster.set_fault_plan(
                    FaultPlan(drop_next={(1, 2): 1}), nodes=[1]
                )
                write = await client.execute(
                    1, "write", rid=1, version=ObjectVersion(1, 1)
                )
                assert write.ok

                metrics = await cluster.metrics()
                assert metrics[1].dropped_messages == 1
                assert metrics[1].data_sent == 1  # charged despite the drop

                # The replica missed the store: its copy is stale.
                stale = await client.execute(2, "read", rid=2)
                assert stale.ok
                assert stale.version.number == 0
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_partition_blocks_cross_group_reads(self):
        async def scenario():
            cluster, client = await booted()
            try:
                plan = FaultPlan(
                    partitions=(frozenset({1}), frozenset({2, 3}))
                )
                await cluster.set_fault_plan(plan)

                # Node 3 must reach the server (node 1) across the cut.
                cut = await client.execute(3, "read", rid=1)
                assert not cut.ok
                # The server itself still reads locally.
                local = await client.execute(1, "read", rid=2)
                assert local.ok

                # Healing the partition restores service.
                await cluster.set_fault_plan(None)
                healed = await client.execute(3, "read", rid=3)
                assert healed.ok
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestLoadGeneration:
    def test_poisson_load_completes_without_faults(self):
        async def scenario():
            cluster, client = await booted()
            try:
                result = await poisson_load(
                    client,
                    PROCESSORS,
                    count=60,
                    rate=500.0,
                    write_fraction=0.25,
                    seed=3,
                )
                assert result.errors == 0
                assert result.completed == 60
                stats = await cluster.aggregate_stats()
                assert stats.requests_completed == 60
                assert len(stats.latencies) == 60
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestSubprocessCluster:
    def test_subprocess_replay_matches_stepped_model(self):
        schedule = UniformWorkload(PROCESSORS, 80, 0.3).generate(11)

        async def scenario():
            spec = ClusterSpec(
                processors=PROCESSORS,
                scheme=SCHEME,
                protocol="DA",
                primary=PRIMARY,
            )
            cluster = await start_cluster(spec, subprocesses=True)
            client = ClusterClient(cluster.addresses)
            try:
                result = await replay_schedule(client, schedule)
                result.raise_on_errors()
                return await cluster.aggregate_stats()
            finally:
                await client.close()
                await cluster.stop()

        live = run(scenario()).breakdown()
        stepped = (
            DynamicAllocation(SCHEME, primary=PRIMARY)
            .run(schedule)
            .total_breakdown()
        )
        assert live == stepped


class TestAdminPlane:
    def test_ping_and_reset_metrics(self):
        schedule = UniformWorkload(PROCESSORS, 30, 0.3).generate(5)

        async def scenario():
            cluster, client = await booted("SA")
            try:
                await cluster.ping_all()
                result = await replay_schedule(client, schedule)
                result.raise_on_errors()
                busy = await cluster.aggregate_stats()
                assert busy.requests_completed == len(schedule)

                await cluster.reset_metrics()
                idle = await cluster.aggregate_stats()
                assert idle.requests_completed == 0
                assert idle.control_messages == 0
                assert idle.data_messages == 0
                assert idle.io_reads == 0 and idle.io_writes == 0

                # Metrics keep accruing after a reset: the transport
                # and the server share the fresh counter object.  An
                # outsider read under SA is one control message (the
                # ReadRequest) answered by one data message.
                probe = await client.execute(3, "read", rid=len(schedule) + 1)
                assert probe.ok
                fresh = await cluster.aggregate_stats()
                assert fresh.requests_completed == 1
                assert fresh.control_messages == 1
                assert fresh.data_messages == 1
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


def test_unix_transport_available_or_tcp_fallback():
    """``auto`` must resolve to a transport this platform can bind."""
    from repro.cluster.launcher import resolve_transport

    kind = resolve_transport("auto")
    if hasattr(socket, "AF_UNIX"):
        assert kind == "unix"
    else:  # pragma: no cover - non-POSIX platforms
        assert kind == "tcp"
