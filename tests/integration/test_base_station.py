"""Integration tests for the mobile base-station deployment (paper §2)."""

from __future__ import annotations

import pytest

from repro.distsim.protocols.base_station import BaseStationDeployment
from repro.exceptions import ConfigurationError
from repro.model.cost_model import mobile
from repro.model.request import read, write
from repro.model.schedule import Schedule
from repro.workloads.mobility import MobileLocationWorkload


def make_deployment():
    return BaseStationDeployment(base_station=0, mobile_hosts=[1, 2, 3])


class TestTopology:
    def test_core_is_the_base_station(self):
        deployment = make_deployment()
        assert deployment.protocol.core == frozenset({0})
        assert deployment.protocol.primary == deployment.primary_host == 1

    def test_base_station_cannot_be_mobile(self):
        with pytest.raises(ConfigurationError):
            BaseStationDeployment(base_station=1, mobile_hosts=[1, 2])

    def test_needs_mobile_hosts(self):
        with pytest.raises(ConfigurationError):
            BaseStationDeployment(base_station=0, mobile_hosts=[])


class TestPaperScenario:
    def test_mobile_write_propagates_to_base_station(self):
        # "each write from a mobile processor will be performed locally,
        # as well as propagated to the base-station"
        deployment = make_deployment()
        deployment.run(Schedule((write(2),)))
        network = deployment.network
        assert network.node(2).holds_valid_copy
        assert network.node(0).holds_valid_copy

    def test_base_station_invalidates_other_mobiles(self):
        # "The base station will invalidate the copies at all the other
        # mobile processors."
        deployment = make_deployment()
        deployment.run(Schedule.parse("r2 r3 w1"))
        network = deployment.network
        assert not network.node(2).holds_valid_copy
        assert not network.node(3).holds_valid_copy
        assert network.node(0).holds_valid_copy

    def test_caller_reads_are_saving_reads_at_the_station(self):
        deployment = make_deployment()
        deployment.run(Schedule((read(3),)))
        assert deployment.network.node(3).holds_valid_copy
        assert 3 in deployment.protocol.recorded_holders()


class TestBilling:
    def test_bill_counts_messages_only(self):
        deployment = make_deployment()
        deployment.run(Schedule.parse("r2 w1 r3"))
        bill = deployment.bill(mobile(0.5, 2.0))
        stats = deployment.network.stats
        assert bill.control_messages == stats.control_messages
        assert bill.data_messages == stats.data_messages
        assert bill.total_charge == pytest.approx(
            0.5 * stats.control_messages + 2.0 * stats.data_messages
        )

    def test_local_reads_cost_nothing(self):
        deployment = make_deployment()
        deployment.run(Schedule.parse("r1 r1 r1"))
        bill = deployment.bill()
        assert bill.total_messages == 0
        assert bill.total_charge == 0.0

    def test_mobility_workload_end_to_end(self):
        deployment = BaseStationDeployment(base_station=0, mobile_hosts=[1, 2, 3])
        workload = MobileLocationWorkload(
            cells=[1, 2, 3], callers=[2, 3], length=40, move_probability=0.25
        )
        stats = deployment.run(workload.generate(3))
        assert stats.requests_completed == 40
        bill = deployment.bill(mobile(0.2, 1.0))
        assert bill.total_charge > 0
