"""Integration: the ski-rental protocol matches its model baseline."""

from __future__ import annotations

import pytest

from repro.core.cddr import SkiRentalReplication
from repro.distsim.protocols.cddr_protocol import SkiRentalProtocol
from repro.distsim.runner import build_network, compare_with_model, mismatches
from repro.exceptions import ProtocolError
from repro.model.schedule import Schedule
from repro.workloads.uniform import UniformWorkload

SCHEME = frozenset({1, 2})


class TestModelAgreement:
    @pytest.mark.parametrize(
        "text",
        [
            "r5",
            "r5 r5 r5",
            "r5 w1 r5 r5",
            "r5 r6 r5 r6 w1 r5 r5 w6 r6",
            "w2 r4 w3 r1 r2",
        ],
    )
    @pytest.mark.parametrize("rent_limit", [1, 2, 3])
    def test_per_request_counts_match(self, text, rent_limit):
        schedule = Schedule.parse(text)
        network = build_network(set(schedule.processors) | SCHEME)
        protocol = SkiRentalProtocol(
            network, SCHEME, rent_limit=rent_limit, primary=2
        )
        algorithm = SkiRentalReplication(
            SCHEME, rent_limit=rent_limit, primary=2
        )
        comparisons = compare_with_model(protocol, algorithm, schedule)
        assert mismatches(comparisons) == []

    def test_random_workload_agreement(self):
        schedule = UniformWorkload(range(1, 7), 80, 0.25).generate(31)
        network = build_network(set(schedule.processors) | SCHEME)
        protocol = SkiRentalProtocol(network, SCHEME, rent_limit=2, primary=2)
        algorithm = SkiRentalReplication(SCHEME, rent_limit=2, primary=2)
        comparisons = compare_with_model(protocol, algorithm, schedule)
        assert mismatches(comparisons) == []


class TestBehaviour:
    def test_first_read_rents(self):
        network = build_network({1, 2, 5})
        protocol = SkiRentalProtocol(network, SCHEME, rent_limit=2, primary=2)
        protocol.execute(Schedule.parse("r5"))
        assert not network.node(5).holds_valid_copy

    def test_second_read_buys(self):
        network = build_network({1, 2, 5})
        protocol = SkiRentalProtocol(network, SCHEME, rent_limit=2, primary=2)
        protocol.execute(Schedule.parse("r5 r5"))
        assert network.node(5).holds_valid_copy
        assert 5 in protocol.recorded_holders()

    def test_write_resets_rentals(self):
        network = build_network({1, 2, 5})
        protocol = SkiRentalProtocol(network, SCHEME, rent_limit=2, primary=2)
        protocol.execute(Schedule.parse("r5 w1 r5"))
        # The pre-write rental does not carry over: still renting.
        assert not network.node(5).holds_valid_copy

    def test_rejects_zero_rent_limit(self):
        network = build_network({1, 2, 5})
        with pytest.raises(ProtocolError):
            SkiRentalProtocol(network, SCHEME, rent_limit=0)

    def test_rentals_live_in_volatile_state(self):
        # A server crash forgets who was renting — by design.
        network = build_network({1, 2, 5})
        protocol = SkiRentalProtocol(network, SCHEME, rent_limit=2, primary=2)
        protocol.execute(Schedule.parse("r5"))
        server = network.node(protocol.server)
        assert server.volatile["rental_counters"] == {5: 1}
