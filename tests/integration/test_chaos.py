"""Integration: seeded chaos runs hold every invariant, deterministically.

The heavyweight acceptance sweep (hundreds of requests, many seeds)
runs from the CLI; here a CI-sized run proves the harness end to end —
faults fire, repair restores ``t``-availability, and the tracker sees
zero violations — plus the replay guarantee that one seed yields one
plan and one outcome.
"""

from __future__ import annotations

import asyncio

from repro.chaos import ChaosConfig, run_chaos

CONFIG = dict(
    protocol="DA",
    nodes=5,
    t=2,
    requests=120,
    write_fraction=0.3,
    seed=5,
    crashes=2,
    partitions=1,
    drop_bursts=2,
    drop_probability=0.02,
)


def run(config: ChaosConfig):
    return asyncio.run(run_chaos(config))


class TestChaosRun:
    def test_seeded_run_holds_all_invariants(self):
        result = run(ChaosConfig(**CONFIG))
        assert result.ok, result.describe()
        # The run was not vacuous: faults actually fired and were
        # actually survived.
        assert any(e.kind == "crash" for e in result.plan.events)
        assert result.repair_rounds >= 1
        assert result.writes_acked >= 1
        assert result.reads_ok >= 1
        assert result.latest_acked >= 1
        # The final sweep read every node fault-free.
        assert result.reads_ok + result.reads_failed >= len(
            result.plan.processors
        )

    def test_sa_run_holds_all_invariants(self):
        result = run(ChaosConfig(**{**CONFIG, "protocol": "SA", "seed": 2}))
        assert result.ok, result.describe()
        assert result.writes_acked >= 1

    def test_same_seed_replays_identically(self):
        first = run(ChaosConfig(**CONFIG))
        second = run(ChaosConfig(**CONFIG))
        assert first.plan == second.plan
        # The closed-loop outcome is a function of the seed alone.
        assert first.writes_acked == second.writes_acked
        assert first.writes_rejected == second.writes_rejected
        assert first.reads_ok == second.reads_ok
        assert first.latest_acked == second.latest_acked
        assert first.ok and second.ok
