"""Integration: durable nodes — WAL-backed tiered crash recovery.

The headline claims of the durability layer, end to end on a live
cluster:

* a node whose replayed log still holds the latest version rejoins
  with **zero data messages** (one control round trip to verify
  freshness), restoring even its volatile DA join-list;
* a stale log falls back to the existing ``SchemeRepairer`` copy path;
* a torn/corrupted log is truncated at the damage point and recovery
  proceeds from the valid prefix (or, with the whole log gone, from
  the network);
* fault-free replays stay bit-identical to the stepped model with
  durability enabled, on both SA and DA — appends are uncharged riders;
* a restarted process resumes from its state dir, charging replay as
  local I/O (the paper's ``c_io``), never as messages.
"""

from __future__ import annotations

import asyncio

from repro.cluster import (
    ClusterClient,
    ClusterSpec,
    RetryPolicy,
    SchemeRepairer,
    durability_totals,
    replay_schedule,
    start_local_cluster,
    wal_path,
)
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.storage.versions import ObjectVersion
from repro.storage.wal import inject_tail_corruption, inject_torn_tail
from repro.workloads.uniform import UniformWorkload

SCHEME = frozenset({1, 2})
PRIMARY = 2

POLICY = RetryPolicy(attempts=4, base_delay=0.005, max_delay=0.05, seed=0)


def run(coro):
    return asyncio.run(coro)


async def booted(
    state_dir,
    protocol: str = "DA",
    processors=(1, 2, 3),
    scheme=SCHEME,
    primary=PRIMARY,
    snapshot_every: int = 64,
):
    spec = ClusterSpec(
        processors=tuple(processors),
        scheme=frozenset(scheme),
        protocol=protocol,
        primary=primary if protocol == "DA" else None,
        resilience=POLICY,
        state_dir=str(state_dir),
        snapshot_every=snapshot_every,
    )
    cluster = await start_local_cluster(spec)
    client = ClusterClient(cluster.addresses, timeout=10.0, retry=POLICY)
    return cluster, client


class TestFreshRejoin:
    def test_fresh_log_rejoins_with_zero_data_messages(self, tmp_path):
        async def scenario():
            cluster, client = await booted(tmp_path)
            repairer = SchemeRepairer(cluster, t=2)
            try:
                # A write lands copies at 1 and the primary; then the
                # outsider 3 joins node 1's join-list by reading.
                write = await client.execute(
                    1, "write", rid=1, version=ObjectVersion(1, 1)
                )
                assert write.ok
                read = await client.execute(3, "read", rid=2)
                assert read.ok and read.version.number == 1

                await cluster.crash(1)
                before = await cluster.aggregate_stats()

                # No writes happened while node 1 was down, so its log
                # is still fresh: tier 1, no repair round needed.
                reply, report = await repairer.recover_node(1)
                assert reply["tier"] == "log-fresh"
                assert report is None
                assert reply["version"]["number"] == 1
                assert reply["probe_peer"] == 2
                assert reply["peer_version"] == 1

                after = await cluster.aggregate_stats()
                metrics = await cluster.metrics()
                # ZERO data messages; exactly one control round trip
                # (the inquiry at node 1, the report at node 2); replay
                # charged as local reads, per the paper's c_io pricing.
                assert after.data_messages == before.data_messages
                assert after.control_messages == before.control_messages + 2
                assert after.io_reads >= before.io_reads + reply["replayed"]
                assert metrics[1].fresh_rejoins == 1
                assert durability_totals(metrics.values())["wal_replayed"] > 0

                # The journaled join-list came back too: the next write
                # at 1 invalidates outsider 3, whose next read returns
                # the new version instead of the stale copy.
                # (node 1 records the primary alongside the outsider:
                # both are non-core holders of its last write.)
                status = await cluster.status(1)
                assert status["join_list"] == [2, 3]
                assert status["holds_valid_copy"]
                write = await client.execute(
                    1, "write", rid=3, version=ObjectVersion(2, 1)
                )
                assert write.ok
                read = await client.execute(3, "read", rid=4)
                assert read.ok and read.version.number == 2
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestStaleFallback:
    def test_stale_log_takes_the_repair_copy_path(self, tmp_path):
        async def scenario():
            # A two-member core ({1, 2}): writes keep flowing with 1 down.
            cluster, client = await booted(
                tmp_path,
                processors=(1, 2, 3, 4),
                scheme={1, 2, 3},
                primary=3,
            )
            repairer = SchemeRepairer(cluster, t=3)
            try:
                write = await client.execute(
                    1, "write", rid=1, version=ObjectVersion(1, 1)
                )
                assert write.ok
                await cluster.crash(1)
                # The cluster moves on while 1 is down: its log is now
                # one version behind.
                write = await client.execute(
                    2, "write", rid=2, version=ObjectVersion(2, 2)
                )
                assert write.ok

                reply, report = await repairer.recover_node(1)
                assert reply["tier"] == "log-stale"
                assert reply["version"]["number"] == 1  # what the log held
                assert reply["peer_version"] == 2  # what the probe found
                assert report is not None
                assert 1 in {target for _, target, _ in report.repaired}
                assert not report.degraded

                read = await client.execute(1, "read", rid=3)
                assert read.ok and read.version.number == 2
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestDamagedLogs:
    def test_corrupt_tail_recovers_from_the_valid_prefix(self, tmp_path):
        async def scenario():
            cluster, client = await booted(tmp_path)
            repairer = SchemeRepairer(cluster, t=2)
            try:
                write = await client.execute(
                    1, "write", rid=1, version=ObjectVersion(1, 1)
                )
                assert write.ok
                await cluster.crash(1)
                # A partial fsync scribbled the last record (the commit
                # marker); the object record before it survives.
                assert inject_tail_corruption(
                    wal_path(str(tmp_path), 1), offset_from_end=1
                )

                reply, report = await repairer.recover_node(1)
                assert reply["damaged"]
                assert reply["truncated_bytes"] > 0
                # The valid prefix still proves freshness: no copy.
                assert reply["tier"] == "log-fresh"
                assert reply["version"]["number"] == 1
                assert report is None
                metrics = await cluster.metrics()
                assert metrics[1].wal_truncations == 1

                read = await client.execute(1, "read", rid=2)
                assert read.ok and read.version.number == 1
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())

    def test_fully_torn_log_falls_back_to_the_network(self, tmp_path):
        async def scenario():
            cluster, client = await booted(tmp_path)
            repairer = SchemeRepairer(cluster, t=2)
            try:
                write = await client.execute(
                    1, "write", rid=1, version=ObjectVersion(1, 1)
                )
                assert write.ok
                await cluster.crash(1)
                # Tear the whole log away: nothing durable survives.
                inject_torn_tail(wal_path(str(tmp_path), 1), 1 << 20)

                reply, report = await repairer.recover_node(1)
                assert reply["tier"] == "log-empty"
                assert reply["replayed"] == 0
                assert report is not None
                assert 1 in {target for _, target, _ in report.repaired}

                read = await client.execute(1, "read", rid=2)
                assert read.ok and read.version.number == 1
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestFaultFreeParity:
    def _stepped(self, protocol: str):
        if protocol == "SA":
            return StaticAllocation(SCHEME)
        return DynamicAllocation(SCHEME, primary=PRIMARY)

    def _parity(self, tmp_path, protocol: str):
        schedule = UniformWorkload((1, 2, 3), 80, 0.3).generate(11)

        async def scenario():
            cluster, client = await booted(tmp_path, protocol=protocol)
            try:
                result = await replay_schedule(client, schedule)
                result.raise_on_errors()
                metrics = await cluster.metrics()
                return await cluster.aggregate_stats(), metrics
            finally:
                await client.close()
                await cluster.stop()

        stats, metrics = run(scenario())
        stepped = self._stepped(protocol).run(schedule).total_breakdown()
        assert stats.breakdown() == stepped
        totals = durability_totals(metrics.values())
        # The WAL really ran — it just never touched a charged counter.
        assert totals["wal_appends"] > 0
        assert totals["fresh_rejoins"] == 0

    def test_da_replay_is_bit_identical_with_durability(self, tmp_path):
        self._parity(tmp_path, "DA")

    def test_sa_replay_is_bit_identical_with_durability(self, tmp_path):
        self._parity(tmp_path, "SA")


class TestSnapshots:
    def test_snapshot_compaction_bounds_replay(self, tmp_path):
        async def scenario():
            cluster, client = await booted(tmp_path, snapshot_every=4)
            try:
                for number in range(1, 10):
                    write = await client.execute(
                        1, "write", rid=number,
                        version=ObjectVersion(number, 1),
                    )
                    assert write.ok
                metrics = await cluster.metrics()
                assert durability_totals(metrics.values())[
                    "snapshots_written"
                ] >= 1

                await cluster.crash(1)
                reply = await cluster.recover(1)
                assert reply["tier"] == "log-fresh"
                # Replay folded the snapshot plus a short log suffix,
                # not one record per write since launch.
                assert reply["replayed"] < 9
                assert reply["version"]["number"] == 9
            finally:
                await client.close()
                await cluster.stop()

        run(scenario())


class TestProcessRestart:
    def test_restart_resumes_from_the_state_dir(self, tmp_path):
        async def first_life():
            cluster, client = await booted(tmp_path)
            try:
                write = await client.execute(
                    1, "write", rid=1, version=ObjectVersion(3, 1)
                )
                assert write.ok
            finally:
                await client.close()
                await cluster.stop()

        async def second_life():
            cluster, client = await booted(tmp_path)
            try:
                status = await cluster.status(1)
                metrics = await cluster.metrics()
                return status, metrics
            finally:
                await client.close()
                await cluster.stop()

        run(first_life())
        status, metrics = run(second_life())
        assert status["durable"]
        # The stored version survived the process boundary; the copy is
        # suspect (invalid) until a probe or repair revalidates it.
        assert status["version"]["number"] == 3
        assert not status["holds_valid_copy"]
        assert status["latest_commit"] == 3
        # Replay was charged as local reads at construction time.
        assert metrics[1].io_reads >= 1
        assert metrics[1].wal_replayed >= 1
