"""Integration tests for the quorum consensus protocol."""

from __future__ import annotations

import pytest

from repro.distsim.failures import FailureInjector
from repro.distsim.protocols.quorum import QuorumConsensusProtocol
from repro.distsim.runner import build_network
from repro.exceptions import ProtocolError
from repro.model.request import read, write
from repro.model.schedule import Schedule


def make_quorum(node_ids={1, 2, 3, 4, 5}, **kwargs):
    network = build_network(node_ids)
    protocol = QuorumConsensusProtocol(network, {1, 2}, **kwargs)
    return network, protocol


class TestNormalOperation:
    def test_reads_see_writes(self):
        _, protocol = make_quorum()
        protocol.execute(Schedule.parse("w3 r4 w2 r5 r1"))
        # execute() raises on stale reads; finishing is the assertion.
        assert protocol.latest_version.number == 2

    def test_write_reaches_a_write_quorum(self):
        network, protocol = make_quorum()
        protocol.execute_request(write(3))
        holders = [
            node.node_id
            for node in network.live_nodes()
            if node.database.peek_version().number == 1
        ]
        assert len(holders) >= protocol.write_quorum

    def test_read_costs_quorum_control_messages(self):
        network, protocol = make_quorum()
        protocol.execute_request(read(4))
        stats = network.stats
        # Reader polls (r-1) others: r-1 inquiries + r-1 reports, plus
        # the fetch (request + data) if the best holder is remote.
        assert stats.control_messages >= 2 * (protocol.read_quorum - 1)

    def test_quorum_dearer_than_da_in_normal_mode(self):
        # The justification for falling back only under failures.
        from repro.distsim.runner import run_protocol

        schedule = Schedule.parse("r3 w1 r4 r3 w2 r5")
        da_stats = run_protocol("DA", schedule, {1, 2}, primary=2)
        network, protocol = make_quorum(set(schedule.processors) | {1, 2})
        q_stats = protocol.execute(schedule)
        q_messages = q_stats.control_messages + q_stats.data_messages
        da_messages = da_stats.control_messages + da_stats.data_messages
        assert q_messages > da_messages


class TestQuorumSizing:
    def test_default_majority(self):
        _, protocol = make_quorum()
        assert protocol.read_quorum == 3
        assert protocol.write_quorum == 3

    def test_custom_quorums(self):
        _, protocol = make_quorum(read_quorum=2, write_quorum=4)
        assert protocol.read_quorum == 2

    def test_non_intersecting_quorums_rejected(self):
        with pytest.raises(ProtocolError):
            make_quorum(read_quorum=2, write_quorum=3)

    def test_out_of_range_quorums_rejected(self):
        with pytest.raises(ProtocolError):
            make_quorum(read_quorum=0, write_quorum=6)


class TestFailureTolerance:
    def test_survives_minority_crash(self):
        network, protocol = make_quorum()
        injector = FailureInjector(network, protocol)
        protocol.execute_request(write(3))
        injector.crash_now(1)
        injector.crash_now(2)
        # Majority (3, 4, 5) still live: reads and writes proceed.
        protocol.execute_request(write(4))
        protocol.execute_request(read(5))
        assert protocol.latest_version.number == 2

    def test_majority_crash_blocks_writes(self):
        network, protocol = make_quorum()
        injector = FailureInjector(network, protocol)
        for node_id in (1, 2, 3):
            injector.crash_now(node_id)
        with pytest.raises(ProtocolError):
            protocol.execute_request(write(4))

    def test_majority_crash_blocks_reads(self):
        network, protocol = make_quorum()
        injector = FailureInjector(network, protocol)
        for node_id in (1, 2, 3):
            injector.crash_now(node_id)
        with pytest.raises(ProtocolError):
            protocol.execute_request(read(4))

    def test_reads_stay_fresh_across_crash_and_recovery(self):
        network, protocol = make_quorum()
        injector = FailureInjector(network, protocol)
        protocol.execute_request(write(3))
        injector.crash_now(3)
        protocol.execute_request(write(4))  # node 3 misses this write
        injector.recover_now(3)
        # Node 3's copy is stale; quorum reads must still return v2.
        protocol.execute_request(read(3))
        protocol.execute_request(read(5))
        assert protocol.latest_version.number == 2
