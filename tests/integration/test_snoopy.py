"""Integration tests for snoopy caching on the bus (§5.2's architecture)."""

from __future__ import annotations

import pytest

from repro.distsim.bus import SharedBusNetwork
from repro.distsim.network import Network
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.snoopy import SnoopyCachingProtocol
from repro.distsim.simulator import Simulator
from repro.exceptions import ProtocolError
from repro.model.request import read, write
from repro.model.schedule import Schedule


def make_snoopy(nodes=frozenset(range(1, 8)), scheme=frozenset({1, 2})):
    bus = SharedBusNetwork(Simulator())
    bus.add_nodes(nodes)
    return bus, SnoopyCachingProtocol(bus, scheme)


class TestBusRequirement:
    def test_rejects_point_to_point_networks(self):
        network = Network(Simulator())
        network.add_nodes({1, 2})
        with pytest.raises(ProtocolError):
            SnoopyCachingProtocol(network, {1, 2})


class TestCorrectness:
    def test_reads_always_fresh(self):
        _, protocol = make_snoopy()
        protocol.execute(Schedule.parse("r5 w3 r5 r6 w6 r3 r4 w1 r7"))
        assert protocol.latest_version.number == 3

    def test_read_miss_caches_the_line(self):
        bus, protocol = make_snoopy()
        protocol.execute_request(read(5))
        assert bus.node(5).holds_valid_copy

    def test_write_invalidates_every_cache(self):
        bus, protocol = make_snoopy()
        protocol.execute(Schedule.parse("r5 r6 r7 w3"))
        for node_id in (5, 6, 7):
            assert not bus.node(node_id).holds_valid_copy
        assert bus.node(3).holds_valid_copy

    def test_availability_constraint_respected(self):
        bus, protocol = make_snoopy()
        protocol.execute_request(write(5))
        holders = [
            node_id for node_id in bus.node_ids
            if bus.node(node_id).holds_valid_copy
        ]
        assert len(holders) >= 2


class TestBroadcastEconomics:
    def test_one_invalidation_charge_regardless_of_sharers(self):
        """The §5.2 contrast, measured: DA pays per joiner, the bus
        broadcast pays once."""
        readers = "r4 r5 r6 r7"
        schedule = Schedule.parse(f"{readers} w3")

        bus, snoopy = make_snoopy()
        snoopy.execute(schedule)
        snoopy_ctrl = bus.stats.control_messages

        p2p_bus = SharedBusNetwork(Simulator())
        p2p_bus.add_nodes(range(1, 8))
        da = DynamicAllocationProtocol(p2p_bus, {1, 2}, primary=2)
        da.execute(schedule)
        da_ctrl = p2p_bus.stats.control_messages

        # Four read requests each (one control message per miss), but
        # the write differs: snoopy broadcasts one invalidation; DA
        # sends one per stale holder (4 joiners + evicted p = 5).
        assert snoopy_ctrl == 4 + 1
        assert da_ctrl == 4 + 5

    def test_broadcast_occupies_the_bus_once(self):
        bus, protocol = make_snoopy()
        protocol.execute(Schedule.parse("r4 r5 r6"))
        busy_before = bus.busy_time
        protocol.execute_request(write(3))
        # The write's bus occupancy: 1 invalidation broadcast + 1 data
        # transfer to the availability partner = 1 ctrl + 1 data slot.
        assert bus.busy_time - busy_before == pytest.approx(
            bus.control_latency + bus.data_latency
        )

    def test_empty_broadcast_completes_immediately(self):
        bus, protocol = make_snoopy()
        fired = []
        bus.broadcast([], on_complete=lambda: fired.append(True))
        assert fired == [True]

    def test_mixed_class_broadcast_rejected(self):
        from repro.distsim.messages import DataTransfer, Invalidate
        from repro.storage.versions import ObjectVersion

        bus, _ = make_snoopy()
        with pytest.raises(ProtocolError):
            bus.broadcast(
                [
                    Invalidate(1, 2),
                    DataTransfer(1, 3, version=ObjectVersion(0, 1)),
                ]
            )

    def test_multi_sender_broadcast_rejected(self):
        from repro.distsim.messages import Invalidate

        bus, _ = make_snoopy()
        with pytest.raises(ProtocolError):
            bus.broadcast([Invalidate(1, 2), Invalidate(3, 2)])
