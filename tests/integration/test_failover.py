"""Integration tests for the fault-tolerant DA driver (missing writes).

Reproduces the failure story of paper §2: DA in the normal mode, quorum
consensus while a member of ``F`` is down, missing-writes bookkeeping
for the transition back.
"""

from __future__ import annotations

import pytest

from repro.distsim.failures import FailureInjector
from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.missing_writes import FaultTolerantDAProtocol
from repro.distsim.runner import build_network
from repro.exceptions import ProtocolError
from repro.model.request import read, write
from repro.model.schedule import Schedule


def make_failover(node_ids={1, 2, 3, 4, 5}):
    network = build_network(node_ids)
    protocol = FaultTolerantDAProtocol(network, {1, 2}, primary=2)
    injector = FailureInjector(network, protocol)
    return network, protocol, injector


class TestPlainDAFailsUnderCoreCrash:
    def test_read_request_to_dead_core_raises(self):
        network = build_network({1, 2, 3})
        protocol = DynamicAllocationProtocol(network, {1, 2}, primary=2)
        network.node(1).crash()
        with pytest.raises(ProtocolError):
            protocol.execute_request(read(3))


class TestModeTransitions:
    def test_starts_in_da_mode(self):
        _, protocol, _ = make_failover()
        assert protocol.mode == "da"

    def test_core_crash_triggers_quorum(self):
        _, protocol, injector = make_failover()
        injector.crash_now(1)
        assert protocol.mode == "quorum"

    def test_primary_crash_triggers_quorum(self):
        # p's copy is part of the t-availability guarantee.
        _, protocol, injector = make_failover()
        injector.crash_now(2)
        assert protocol.mode == "quorum"

    def test_joiner_crash_stays_in_da(self):
        _, protocol, injector = make_failover()
        protocol.execute_request(read(5))  # 5 joins
        injector.crash_now(5)
        assert protocol.mode == "da"
        # The next write's invalidation to 5 is dropped, not fatal.
        protocol.execute_request(write(1))

    def test_recovery_returns_to_da(self):
        _, protocol, injector = make_failover()
        injector.crash_now(1)
        protocol.execute_request(write(3))
        injector.recover_now(1)
        assert protocol.mode == "da"
        assert protocol.mode_switches == ["quorum", "da"]


class TestServiceContinuity:
    def test_requests_serviced_through_the_outage(self):
        _, protocol, injector = make_failover()
        protocol.execute_request(read(3))
        protocol.execute_request(write(4))
        injector.crash_now(1)
        protocol.execute_request(write(5))
        protocol.execute_request(read(3))
        protocol.execute_request(read(4))
        injector.recover_now(1)
        protocol.execute_request(read(1))
        protocol.execute_request(write(2))
        protocol.execute_request(read(5))
        # execute_request raises on stale reads: surviving the whole
        # script is the freshness assertion.  Three writes happened
        # (w4, w5, w2) on top of the seeded version 0.
        assert protocol.latest_version.number == 3

    def test_da_invariants_restored_after_outage(self):
        network, protocol, injector = make_failover()
        injector.crash_now(1)
        protocol.execute_request(write(4))
        protocol.execute_request(write(5))
        injector.recover_now(1)
        # Core member 1 must hold a valid, latest copy again.
        node = network.node(1)
        assert node.holds_valid_copy
        assert node.database.peek_version().number == protocol.latest_version.number
        # And normal DA behaviour resumes: a foreign read is served and
        # recorded on a join-list.
        protocol.execute_request(read(5))
        assert 5 in protocol.recorded_holders()


class TestMissingWritesLog:
    def test_log_records_writes_during_outage(self):
        _, protocol, injector = make_failover()
        injector.crash_now(1)
        protocol.execute_request(write(3))
        protocol.execute_request(write(4))
        assert protocol.missing_writes[1] == [1, 2]

    def test_log_cleared_on_recovery(self):
        _, protocol, injector = make_failover()
        injector.crash_now(1)
        protocol.execute_request(write(3))
        injector.recover_now(1)
        assert 1 not in protocol.missing_writes

    def test_non_scheme_node_recovers_silently(self):
        network, protocol, injector = make_failover()
        protocol.execute_request(read(5))  # 5 holds a copy, then crashes
        injector.crash_now(5)
        protocol.execute_request(write(1))
        before = network.stats.snapshot()
        injector.recover_now(5)
        delta = network.stats.delta(before)
        # No catch-up traffic: 5's copy stays invalid; its next read
        # will be an ordinary saving-read.
        assert delta.data_messages == 0
        assert delta.control_messages == 0
        assert not network.node(5).holds_valid_copy

    def test_core_recovery_without_missed_writes_is_a_version_check(self):
        network, protocol, injector = make_failover()
        injector.crash_now(1)  # core: quorum mode + quorum establishment
        before = network.stats.snapshot()
        injector.recover_now(1)
        delta = network.stats.delta(before)
        # No writes were missed: one control round-trip, no data, no I/O.
        assert delta.data_messages == 0
        assert delta.io_ops == 0
        assert delta.control_messages == 2

    def test_core_recovery_with_missed_writes_ships_data(self):
        network, protocol, injector = make_failover()
        injector.crash_now(1)
        protocol.execute_request(write(3))
        before = network.stats.snapshot()
        injector.recover_now(1)
        delta = network.stats.delta(before)
        assert delta.data_messages >= 1
        assert delta.io_ops >= 1
        node = network.node(1)
        assert node.holds_valid_copy
        assert node.database.peek_version().number == 1


class TestInjectionDiscipline:
    def test_mid_request_recovery_rejected(self):
        network, protocol, injector = make_failover()
        injector.crash_now(1)
        protocol.execute_request(write(3))
        injector.schedule_recovery(1, delay=0.5)
        with pytest.raises(ProtocolError):
            protocol.execute_request(write(4))
