"""Golden message traces for the paper's worked examples.

The protocols are deterministic, so the exact conversation each example
produces can be written down once and asserted verbatim — the strongest
form of behavioural pinning this reproduction has.  If a protocol
change alters any message, these tests point at the first divergence.
"""

from __future__ import annotations

import pytest

from repro.distsim.protocols.da_protocol import DynamicAllocationProtocol
from repro.distsim.protocols.sa_protocol import StaticAllocationProtocol
from repro.distsim.runner import build_network
from repro.distsim.tracing import MessageLog
from repro.model.schedule import Schedule


def traced_protocol(protocol_cls, nodes, scheme, **kwargs):
    network = build_network(nodes)
    log = MessageLog(network)
    protocol = protocol_cls(network, scheme, **kwargs)
    return protocol, log


class TestIntroExampleTrace:
    """§1.3's r1 r1 r2 w2 r2 r2 r2 with scheme {1, 3} (t = 2)."""

    SCHEDULE = Schedule.parse("r1 r1 r2 w2 r2 r2 r2")

    def test_da_trace(self):
        protocol, log = traced_protocol(
            DynamicAllocationProtocol, {1, 2, 3}, {1, 3}, primary=3
        )
        protocol.execute(self.SCHEDULE)
        assert log.compact() == [
            # r1, r1: local at the core member 1 — no messages.
            # r2: foreign saving-read served by F = {1}.
            "ReadRequest(2->1)",
            "DataTransfer(1->2)",
            # w2: writer 2 is a data processor now? No — w2 by joiner 2:
            # X = F ∪ {2} = {1, 2}; invalidate the evicted primary 3,
            # ship to 1; 2 writes locally.
            "Invalidate(1->3)",
            "DataTransfer(2->1)",
            # r2 r2 r2: local at the writer — silence.
        ]

    def test_sa_trace(self):
        protocol, log = traced_protocol(
            StaticAllocationProtocol, {1, 2, 3}, {1, 3}
        )
        protocol.execute(self.SCHEDULE)
        assert log.compact() == [
            # r1 r1: local.
            # r2: fetched from the server (min Q = 1), never saved:
            "ReadRequest(2->1)",
            "DataTransfer(1->2)",
            # w2: write-all to Q = {1, 3}:
            "DataTransfer(2->1)",
            "DataTransfer(2->3)",
            # r2 r2 r2: three more fetches — SA's Proposition 1 tax.
            "ReadRequest(2->1)",
            "DataTransfer(1->2)",
            "ReadRequest(2->1)",
            "DataTransfer(1->2)",
            "ReadRequest(2->1)",
            "DataTransfer(1->2)",
        ]


class TestPaperSection31Trace:
    """§3.1's psi_0 = w2 r4 w3 r1 r2 with scheme {1, 2} under DA."""

    def test_da_trace(self):
        protocol, log = traced_protocol(
            DynamicAllocationProtocol, {1, 2, 3, 4}, {1, 2}, primary=2
        )
        protocol.execute(Schedule.parse("w2 r4 w3 r1 r2"))
        assert log.compact() == [
            # w2 (insider): ship to F = {1}; p = 2 writes locally.
            "DataTransfer(2->1)",
            # r4: foreign saving-read.
            "ReadRequest(4->1)",
            "DataTransfer(1->4)",
            # w3 (outsider): X = {1, 3}; invalidate evictees 2 and 4.
            "Invalidate(1->2)",
            "Invalidate(1->4)",
            "DataTransfer(3->1)",
            # r1: local at the core.
            # r2: 2 was evicted — foreign saving-read again.
            "ReadRequest(2->1)",
            "DataTransfer(1->2)",
        ]


class TestLogMachinery:
    def test_entries_record_class_and_time(self):
        protocol, log = traced_protocol(
            DynamicAllocationProtocol, {1, 2, 5}, {1, 2}, primary=2
        )
        protocol.execute(Schedule.parse("r5"))
        assert len(log) == 2
        request, transfer = log.entries
        assert request.message_class.value == "control"
        assert transfer.message_class.value == "data"
        assert transfer.time > request.time

    def test_filters(self):
        protocol, log = traced_protocol(
            DynamicAllocationProtocol, {1, 2, 5}, {1, 2}, primary=2
        )
        protocol.execute(Schedule.parse("r5 w1"))
        assert len(log.of_kind("Invalidate")) == 1
        assert len(log.between(5, 1)) == 1

    def test_detach_stops_recording(self):
        protocol, log = traced_protocol(
            DynamicAllocationProtocol, {1, 2, 5}, {1, 2}, primary=2
        )
        protocol.execute(Schedule.parse("r5"))
        recorded = len(log)
        log.detach()
        protocol.execute(Schedule.parse("r5 w1 r5"))
        assert len(log) == recorded

    def test_dump_is_readable(self):
        protocol, log = traced_protocol(
            DynamicAllocationProtocol, {1, 2, 5}, {1, 2}, primary=2
        )
        protocol.execute(Schedule.parse("r5"))
        dump = log.dump()
        assert "ReadRequest 5->1 [ctrl]" in dump
        assert "DataTransfer 1->5 [data]" in dump
