"""Setup shim for offline editable installs.

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) are unavailable.  With
this shim present and no ``[build-system]`` table in pyproject.toml,
``pip install -e .`` falls back to the legacy ``setup.py develop``
path, which works offline.  All project metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
