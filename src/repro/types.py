"""Shared type aliases used across the library.

The paper models a distributed system as a set of interconnected
processors, each holding a *local database* on stable storage.  We
identify processors by small non-negative integers throughout, matching
the paper's notation (``r1`` is a read issued by processor 1, ``w2`` a
write issued by processor 2, and so on).

Besides the set-based representation, the vectorized kernel
(:mod:`repro.kernel`) and the offline DP (:mod:`repro.core.
offline_optimal`) represent processor sets as **int bitmasks** over a
*universe*: a sorted tuple of the processor ids that can ever matter
for an instance.  Bit ``i`` of a mask stands for ``universe[i]`` (the
``i``-th smallest id), so masks are comparable across modules as long
as they share the universe.  :func:`processor_universe`,
:func:`mask_of` and :func:`set_of_mask` are the canonical round-trip
helpers; processor ids need not be contiguous.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence, Tuple

#: Identifier of a processor in the distributed system.
ProcessorId = int

#: An immutable set of processors.  Used for execution sets and
#: allocation schemes (the paper's ``X`` and ``Y``).
ProcessorSet = FrozenSet[ProcessorId]

#: The bit order shared by every mask of one instance: bit ``i`` of a
#: mask stands for ``universe[i]``.
ProcessorUniverse = Tuple[ProcessorId, ...]


def processor_set(processors) -> ProcessorSet:
    """Normalize any iterable of processor ids into a :data:`ProcessorSet`.

    >>> processor_set([2, 1, 2])
    frozenset({1, 2})
    """
    return frozenset(int(p) for p in processors)


def processor_universe(*collections: Iterable[ProcessorId]) -> ProcessorUniverse:
    """The sorted, deduplicated union of processor-id collections.

    This is the canonical bit order for masks: the ``i``-th smallest
    id maps to bit ``i``.

    >>> processor_universe([2, 9], [1, 2])
    (1, 2, 9)
    """
    members: set[ProcessorId] = set()
    for collection in collections:
        members.update(int(p) for p in collection)
    return tuple(sorted(members))


def mask_of(
    processors: Iterable[ProcessorId], universe: Sequence[ProcessorId]
) -> int:
    """Pack a set of processor ids into an int bitmask over ``universe``.

    Raises :class:`ValueError` for a processor outside the universe —
    a mask cannot represent it.

    >>> mask_of([9, 1], (1, 2, 9))
    5
    >>> mask_of([], (1, 2, 9))
    0
    """
    index_of = {int(p): i for i, p in enumerate(universe)}
    mask = 0
    for processor in processors:
        try:
            mask |= 1 << index_of[int(processor)]
        except KeyError:
            raise ValueError(
                f"processor {processor} is not in the universe "
                f"{tuple(universe)}"
            ) from None
    return mask


def set_of_mask(mask: int, universe: Sequence[ProcessorId]) -> ProcessorSet:
    """Unpack an int bitmask over ``universe`` into a :data:`ProcessorSet`.

    Raises :class:`ValueError` for a negative mask or one with bits
    beyond the universe — those bits name no processor.

    >>> sorted(set_of_mask(5, (1, 2, 9)))
    [1, 9]
    >>> set_of_mask(0, (1, 2, 9))
    frozenset()
    """
    if mask < 0:
        raise ValueError(f"masks are non-negative, got {mask}")
    if mask >> len(universe):
        raise ValueError(
            f"mask {mask:#x} has bits beyond the {len(universe)}-processor "
            "universe"
        )
    return frozenset(
        int(universe[position])
        for position in range(len(universe))
        if mask >> position & 1
    )
