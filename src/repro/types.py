"""Shared type aliases used across the library.

The paper models a distributed system as a set of interconnected
processors, each holding a *local database* on stable storage.  We
identify processors by small non-negative integers throughout, matching
the paper's notation (``r1`` is a read issued by processor 1, ``w2`` a
write issued by processor 2, and so on).
"""

from __future__ import annotations

from typing import FrozenSet

#: Identifier of a processor in the distributed system.
ProcessorId = int

#: An immutable set of processors.  Used for execution sets and
#: allocation schemes (the paper's ``X`` and ``Y``).
ProcessorSet = FrozenSet[ProcessorId]


def processor_set(processors) -> ProcessorSet:
    """Normalize any iterable of processor ids into a :data:`ProcessorSet`.

    >>> processor_set([2, 1, 2])
    frozenset({1, 2})
    """
    return frozenset(int(p) for p in processors)
