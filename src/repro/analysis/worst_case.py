"""Exhaustive worst-case search over small schedule spaces.

Paper §6.1 leaves a gap: DA's competitive factor is proven to lie
between 1.5 (Proposition 2) and ``2 + 2 c_c`` (Theorem 2), and *"this
gap is the subject of future research"*.  This module attacks the gap
empirically: it enumerates **every** schedule of a given length over a
small processor set, prices the algorithm against the exact offline
optimum, and returns the worst ratio together with the schedule that
achieves it.

Because every prefix of an enumerated schedule is itself a schedule,
the search evaluates all prefixes too (the offline DP is carried
incrementally through the DFS), so the result is the true worst
cost-ratio over *all* schedules up to the given length on that
universe.

Caveat on interpretation: competitiveness (§4.1) tolerates an additive
constant ``β``, so a bad ratio on one short schedule does not by itself
bound the competitive factor — the bad pattern must be *sustainable*
(repeatable with OPT's cost growing unboundedly).  The worst schedules
this search finds are exactly the seeds of such families: repeat them
with :func:`repro.workloads.adversarial.da_killer`-style constructions
to turn a worst prefix into a factor lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.core.base import OnlineDOM
from repro.exceptions import ConfigurationError
from repro.model.cost_model import CostModel
from repro.model.request import Request, read, write
from repro.model.schedule import Schedule
from repro.types import ProcessorId, processor_set


@dataclass(frozen=True)
class WorstCase:
    """The worst schedule found and its costs."""

    ratio: float
    schedule: Schedule
    algorithm_cost: float
    optimal_cost: float


class ExhaustiveSearch:
    """Enumerate all schedules up to ``max_length`` over ``processors``.

    The offline optimum is maintained incrementally as a DP table
    (scheme-mask -> cost) pushed and popped along the DFS, so each node
    costs ``O(states)`` for a read and ``O(states * targets)`` for a
    write.  Keep ``len(processors) <= 5`` and ``max_length <= 7`` —
    the schedule space is ``(2k)^L``.
    """

    def __init__(
        self,
        cost_model: CostModel,
        initial_scheme: Iterable[ProcessorId],
        processors: Sequence[ProcessorId],
        threshold: int = 2,
    ) -> None:
        self.cost_model = cost_model
        self.initial_scheme = processor_set(initial_scheme)
        self.processors = tuple(sorted(set(processors) | self.initial_scheme))
        if threshold < 2:
            raise ConfigurationError("t must be at least 2")
        if len(self.initial_scheme) < threshold:
            raise ConfigurationError("initial scheme smaller than t")
        if len(self.processors) > 6:
            raise ConfigurationError(
                "exhaustive search is limited to 6 processors"
            )
        self.threshold = threshold
        self._index = {p: i for i, p in enumerate(self.processors)}
        n = len(self.processors)
        self._targets = [
            mask for mask in range(1 << n) if mask.bit_count() >= threshold
        ]

    # -- incremental offline-optimal transitions --------------------------

    def _initial_dp(self) -> Dict[int, float]:
        mask = 0
        for member in self.initial_scheme:
            mask |= 1 << self._index[member]
        return {mask: 0.0}

    def _advance(self, dp: Dict[int, float], request: Request) -> Dict[int, float]:
        c_io = self.cost_model.c_io
        c_c = self.cost_model.c_c
        c_d = self.cost_model.c_d
        bit = 1 << self._index[request.processor]
        new_dp: Dict[int, float] = {}
        if request.is_read:
            fetch = c_c + c_io + c_d
            for mask, cost in dp.items():
                if mask & bit:
                    candidate = cost + c_io
                    if candidate < new_dp.get(mask, float("inf")):
                        new_dp[mask] = candidate
                else:
                    candidate = cost + fetch
                    if candidate < new_dp.get(mask, float("inf")):
                        new_dp[mask] = candidate
                    saved = mask | bit
                    candidate = cost + fetch + c_io
                    if candidate < new_dp.get(saved, float("inf")):
                        new_dp[saved] = candidate
            return new_dp
        for mask, cost in dp.items():
            for target in self._targets:
                stale = mask & ~target
                if target & bit:
                    step = (
                        stale.bit_count() * c_c
                        + (target.bit_count() - 1) * c_d
                        + target.bit_count() * c_io
                    )
                else:
                    step = (
                        (stale & ~bit).bit_count() * c_c
                        + target.bit_count() * (c_d + c_io)
                    )
                candidate = cost + step
                if candidate < new_dp.get(target, float("inf")):
                    new_dp[target] = candidate
        return new_dp

    # -- the search ----------------------------------------------------------

    def search(
        self,
        algorithm_factory: Callable[[], OnlineDOM],
        max_length: int,
        min_length: int = 1,
    ) -> WorstCase:
        """The worst ratio over every schedule with length in
        ``[min_length, max_length]``."""
        if max_length < min_length or min_length < 1:
            raise ConfigurationError("invalid length bracket")
        candidates = [read(p) for p in self.processors]
        candidates += [write(p) for p in self.processors]
        best: Optional[WorstCase] = None
        prefix: list[Request] = []

        def algorithm_cost() -> float:
            algorithm = algorithm_factory()
            allocation = algorithm.run(Schedule(tuple(prefix)))
            return self.cost_model.schedule_cost(allocation)

        def dfs(dp: Dict[int, float], depth: int) -> None:
            nonlocal best
            if depth >= min_length:
                optimal = min(dp.values())
                cost = algorithm_cost()
                if optimal > 0:
                    ratio = cost / optimal
                elif cost > 0:
                    ratio = float("inf")
                else:
                    ratio = 1.0
                if best is None or ratio > best.ratio:
                    best = WorstCase(
                        ratio, Schedule(tuple(prefix)), cost, optimal
                    )
            if depth == max_length:
                return
            for request in candidates:
                prefix.append(request)
                dfs(self._advance(dp, request), depth + 1)
                prefix.pop()

        dfs(self._initial_dp(), 0)
        assert best is not None  # min_length >= 1 guarantees a visit
        return best


def certified_worst_case(
    algorithm_factory: Callable[[], OnlineDOM],
    cost_model: CostModel,
    initial_scheme: Iterable[ProcessorId],
    extra_processors: Sequence[ProcessorId],
    max_length: int = 5,
) -> WorstCase:
    """Convenience wrapper: the certified worst cost-ratio over all
    schedules up to ``max_length`` on
    ``initial_scheme ∪ extra_processors`` (see the module caveat on
    turning this into a competitive-factor bound)."""
    search = ExhaustiveSearch(
        cost_model, initial_scheme, tuple(extra_processors)
    )
    return search.search(algorithm_factory, max_length)
