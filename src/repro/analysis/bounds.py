"""The paper's proven competitiveness bounds as executable functions.

Every theorem and proposition of §2/§4 is encoded here so benchmarks
can compare measured ratios against the claimed factors:

* Theorem 1  — SA is ``(1 + c_c + c_d)``-competitive (stationary).
* Proposition 1 — SA is not ``α``-competitive for ``α < 1 + c_c + c_d``
  (the Theorem 1 factor is tight).
* Theorem 2  — DA is ``(2 + 2 c_c)``-competitive (stationary).
* Theorem 3  — DA is ``(2 + c_c)``-competitive when ``c_d > 1``.
* Proposition 2 — DA is not ``α``-competitive for ``α < 1.5``.
* Proposition 3 — SA is not competitive in the mobile model.
* Theorem 4  — DA is ``(2 + 3 c_c / c_d)``-competitive (mobile), hence
  at most 5 because ``c_c <= c_d``.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError
from repro.model.cost_model import CostModel

#: Proposition 2: DA's competitive factor is at least this, in every model.
DA_LOWER_BOUND = 1.5

#: Theorem 4 corollary: DA's mobile factor never exceeds 5 (c_c <= c_d).
DA_MOBILE_CEILING = 5.0


def sa_competitive_factor(model: CostModel) -> float:
    """The best proven upper bound on SA's competitive factor.

    Theorem 1 for the stationary model; infinity for the mobile model,
    where Proposition 3 shows SA is not competitive at all.
    """
    if model.is_mobile:
        return math.inf
    normalized = model.normalized()
    return 1.0 + normalized.c_c + normalized.c_d


def sa_lower_bound(model: CostModel) -> float:
    """The proven lower bound on SA's competitive factor.

    Proposition 1 makes Theorem 1 tight in the stationary model;
    Proposition 3 makes the mobile factor unbounded.
    """
    return sa_competitive_factor(model)


def da_competitive_factor(model: CostModel) -> float:
    """The best proven upper bound on DA's competitive factor.

    Theorems 2 and 3 (stationary: ``2 + 2 c_c``, improved to
    ``2 + c_c`` when ``c_d > 1``) and Theorem 4 (mobile:
    ``2 + 3 c_c / c_d``).  A mobile model with ``c_d = 0`` makes every
    legal allocation schedule free, so any algorithm is trivially
    1-competitive there.
    """
    if model.is_mobile:
        if model.c_d == 0:
            return 1.0
        return 2.0 + 3.0 * model.c_c / model.c_d
    normalized = model.normalized()
    if normalized.c_d > 1.0:
        return 2.0 + normalized.c_c
    return 2.0 + 2.0 * normalized.c_c


def da_lower_bound(model: CostModel) -> float:
    """Proposition 2: DA is not ``α``-competitive for any ``α < 1.5``.

    The one degenerate exception: a mobile model with ``c_d = 0``
    (hence ``c_c = 0``) prices every legal allocation schedule at zero,
    so every algorithm is trivially 1-competitive.
    """
    if model.is_mobile and model.c_d == 0:
        return 1.0
    return DA_LOWER_BOUND


def sa_is_competitive(model: CostModel) -> bool:
    """Proposition 3: SA is competitive iff the model is stationary."""
    return model.is_stationary


def da_superior(model: CostModel) -> bool:
    """True where the paper *proves* DA superior to SA.

    Mobile model: always (Theorem 4 + Proposition 3).  Stationary
    model: when ``c_d > 1``, because then SA's tight factor
    ``1 + c_c + c_d`` exceeds DA's upper bound ``2 + c_c``.
    """
    if model.is_mobile:
        return model.c_d > 0 or model.c_c > 0
    normalized = model.normalized()
    return normalized.c_d > 1.0


def sa_superior(model: CostModel) -> bool:
    """True where the paper *proves* SA superior to DA.

    Stationary model with ``c_c + c_d < 0.5``: SA's tight factor
    ``1 + c_c + c_d`` is below DA's lower bound 1.5.  Never in the
    mobile model.
    """
    if model.is_mobile:
        return False
    normalized = model.normalized()
    return normalized.c_c + normalized.c_d < 0.5


def feasible(c_c: float, c_d: float) -> bool:
    """Figure 1/2 feasibility: a data message carries the object content
    on top of all control-message fields, so ``c_c <= c_d``."""
    return 0.0 <= c_c <= c_d


def check_bounds_consistency(model: CostModel) -> None:
    """Internal sanity: a proven lower bound must not exceed the proven
    upper bound.  Raises :class:`ConfigurationError` on violation
    (which would indicate a transcription mistake, not a paper error).
    """
    if sa_lower_bound(model) > sa_competitive_factor(model) + 1e-12:
        raise ConfigurationError("SA bounds inconsistent")
    if da_lower_bound(model) > da_competitive_factor(model) + 1e-12:
        raise ConfigurationError("DA bounds inconsistent")
