"""Parameter sweeps: measure algorithms across a parameter range.

Used by the ablation benchmarks: the ``t``-independence claim of §2
("these competitiveness factors are independent of the integer t"),
the read/write-mix crossover, and the convergent-vs-competitive
comparison all reduce to sweeping one knob and recording per-algorithm
costs and ratios.

Every sweep decomposes into one independent task per parameter value
and submits through the :class:`~repro.engine.runner.ExperimentEngine`
— serially by default, or across worker processes when the caller
passes an engine with ``max_workers > 1``.  The serial and parallel
paths execute the *same* per-point function, so their results are
bit-for-bit identical (asserted by the engine property suite).  With a
cache-equipped engine, re-runs and resumed grids skip completed
points.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro import kernel
from repro.core.base import OnlineDOM
from repro.core.competitive import CompetitivenessHarness
from repro.engine.keys import stable_key
from repro.engine.runner import ExperimentEngine, Task
from repro.exceptions import ConfigurationError
from repro.model.cost_model import CostModel
from repro.model.schedule import Schedule


@dataclass(frozen=True)
class SweepRow:
    """Measurements at one parameter value."""

    parameter: float
    max_ratios: Mapping[str, float]
    mean_ratios: Mapping[str, float]
    mean_costs: Mapping[str, float]

    def ratio_of(self, name: str) -> float:
        return self.max_ratios[name]


@dataclass(frozen=True)
class SweepResult:
    """All rows of one sweep, in parameter order."""

    parameter_name: str
    rows: tuple[SweepRow, ...]

    def series(self, algorithm: str) -> list[tuple[float, float]]:
        """(parameter, max ratio) pairs for one algorithm."""
        return [(row.parameter, row.max_ratios[algorithm]) for row in self.rows]

    def algorithms(self) -> list[str]:
        return sorted(self.rows[0].max_ratios) if self.rows else []


# -- per-point task functions (module-level: picklable for workers) ------


def _measure_point(
    parameter_name: str,
    value: float,
    model: CostModel,
    schedules: tuple[Schedule, ...],
    prototypes: dict[str, OnlineDOM],
    threshold: int,
    exact_limit: int,
) -> SweepRow:
    """Measure every algorithm at one parameter value.

    ``prototypes`` are never-run algorithm instances built in the
    parent process; each measurement deep-copies one so every schedule
    sees a fresh algorithm, exactly like the factory protocol of
    :meth:`~repro.core.competitive.CompetitivenessHarness.measure`.
    """
    harness = CompetitivenessHarness(model, threshold, exact_limit)
    max_ratios: dict[str, float] = {}
    mean_ratios: dict[str, float] = {}
    mean_costs: dict[str, float] = {}
    for name, prototype in prototypes.items():
        report = harness.measure(
            lambda: copy.deepcopy(prototype), schedules
        )
        max_ratios[name] = report.max_ratio
        mean_ratios[name] = report.mean_ratio
        mean_costs[name] = sum(
            obs.algorithm_cost for obs in report.observations
        ) / len(report.observations)
    return SweepRow(value, max_ratios, mean_ratios, mean_costs)


def _cost_point(
    parameter_name: str,
    value: float,
    model: CostModel,
    schedules: tuple[Schedule, ...],
    prototypes: dict[str, OnlineDOM],
) -> SweepRow:
    """The reference-free flavor: raw mean costs only.

    Kernel-supported algorithms (SA, DA) share one compiled batch per
    point — the suite is lowered to arrays once and each algorithm is
    evaluated in a single vectorized pass, bit-identical to stepping.
    Other algorithms run the stepped path on fresh deep copies.
    """
    supported = [p for p in prototypes.values() if kernel.supports(p)]
    batch = None
    if supported and schedules:
        extra: set[int] = set()
        for prototype in supported:
            extra |= prototype.initial_scheme
        batch = kernel.compile_batch(list(schedules), extra)
    mean_costs: dict[str, float] = {}
    for name, prototype in prototypes.items():
        if batch is not None and kernel.supports(prototype):
            costs = kernel.batch_costs(prototype, schedules, model, batch=batch)
        else:
            costs = []
            for schedule in schedules:
                algorithm = copy.deepcopy(prototype)
                allocation = algorithm.run(schedule)
                costs.append(model.schedule_cost(allocation))
        mean_costs[name] = sum(costs) / len(costs)
    return SweepRow(value, dict(mean_costs), dict(mean_costs), mean_costs)


def point_cache_key(
    kind: str,
    parameter_name: str,
    value: float,
    model: CostModel,
    schedules: Sequence[Schedule],
    prototypes: Mapping[str, OnlineDOM],
    threshold: Optional[int] = None,
    exact_limit: Optional[int] = None,
) -> str:
    """The stable cache key of one sweep point.

    Keys the full experimental content — cost-model parameters, the
    materialized workload (the schedules embed their generator's
    seed), the algorithm set including each prototype's configuration,
    and the reference parameters — so any perturbation misses.
    """
    return stable_key(
        {
            "kind": kind,
            "parameter": parameter_name,
            "value": value,
            "model": model,
            "schedules": [str(schedule) for schedule in schedules],
            "algorithms": dict(prototypes),
            "threshold": threshold,
            "exact_limit": exact_limit,
        }
    )


def _decompose(
    kind: str,
    parameter_name: str,
    parameter_values: Sequence[float],
    factories_for: Callable[[float], Mapping[str, Callable[[], OnlineDOM]]],
    schedules_for: Callable[[float], Sequence[Schedule]],
    model_for: Callable[[float], CostModel],
    threshold_for: Optional[Callable[[float], int]],
    exact_limit: Optional[int],
    engine: ExperimentEngine,
) -> list[Task]:
    """One engine task per parameter value.

    The ``*_for`` callables run in the parent process; only their
    *outputs* (cost model, schedules, algorithm prototypes — all plain
    picklable values) travel to workers.
    """
    tasks = []
    for value in parameter_values:
        model = model_for(value)
        schedules = tuple(schedules_for(value))
        prototypes = {
            name: factory() for name, factory in factories_for(value).items()
        }
        if kind == "sweep":
            threshold = threshold_for(value) if threshold_for else 2
            args: tuple = (
                parameter_name, value, model, schedules, prototypes,
                threshold, exact_limit,
            )
            fn: Callable = _measure_point
        else:
            threshold = None
            args = (parameter_name, value, model, schedules, prototypes)
            fn = _cost_point
        key = None
        if engine.cache is not None:
            key = point_cache_key(
                kind, parameter_name, value, model, schedules, prototypes,
                threshold, exact_limit,
            )
        tasks.append(Task(fn, args, key=key, label=f"{parameter_name}={value}"))
    return tasks


def sweep(
    parameter_name: str,
    parameter_values: Sequence[float],
    factories_for: Callable[[float], Mapping[str, Callable[[], OnlineDOM]]],
    schedules_for: Callable[[float], Sequence[Schedule]],
    model_for: Callable[[float], CostModel],
    threshold_for: Callable[[float], int] = lambda value: 2,
    exact_limit: int = 14,
    engine: Optional[ExperimentEngine] = None,
) -> SweepResult:
    """Generic sweep driver.

    For each parameter value, builds the cost model, the schedule suite
    and one prototype per algorithm, measures every algorithm on every
    schedule against the offline reference, and records max/mean ratios
    and mean costs.  Pass an :class:`ExperimentEngine` to parallelize
    and/or cache; the default runs serially in-process.
    """
    if not parameter_values:
        raise ConfigurationError("no parameter values to sweep")
    engine = engine or ExperimentEngine()
    tasks = _decompose(
        "sweep", parameter_name, parameter_values, factories_for,
        schedules_for, model_for, threshold_for, exact_limit, engine,
    )
    rows = engine.run(tasks)
    return SweepResult(parameter_name, tuple(rows))


def cost_sweep(
    parameter_name: str,
    parameter_values: Sequence[float],
    factories_for: Callable[[float], Mapping[str, Callable[[], OnlineDOM]]],
    schedules_for: Callable[[float], Sequence[Schedule]],
    model_for: Callable[[float], CostModel],
    engine: Optional[ExperimentEngine] = None,
) -> SweepResult:
    """A cheaper sweep that skips the offline reference (ratios are set
    to raw mean costs) — used when only *relative* algorithm costs
    matter, e.g. the read/write-mix crossover on long schedules."""
    if not parameter_values:
        raise ConfigurationError("no parameter values to sweep")
    engine = engine or ExperimentEngine()
    tasks = _decompose(
        "cost-sweep", parameter_name, parameter_values, factories_for,
        schedules_for, model_for, None, None, engine,
    )
    rows = engine.run(tasks)
    return SweepResult(parameter_name, tuple(rows))
