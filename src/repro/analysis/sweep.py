"""Parameter sweeps: measure algorithms across a parameter range.

Used by the ablation benchmarks: the ``t``-independence claim of §2
("these competitiveness factors are independent of the integer t"),
the read/write-mix crossover, and the convergent-vs-competitive
comparison all reduce to sweeping one knob and recording per-algorithm
costs and ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.base import OnlineDOM
from repro.core.competitive import CompetitivenessHarness
from repro.exceptions import ConfigurationError
from repro.model.cost_model import CostModel
from repro.model.schedule import Schedule


@dataclass(frozen=True)
class SweepRow:
    """Measurements at one parameter value."""

    parameter: float
    max_ratios: Mapping[str, float]
    mean_ratios: Mapping[str, float]
    mean_costs: Mapping[str, float]

    def ratio_of(self, name: str) -> float:
        return self.max_ratios[name]


@dataclass(frozen=True)
class SweepResult:
    """All rows of one sweep, in parameter order."""

    parameter_name: str
    rows: tuple[SweepRow, ...]

    def series(self, algorithm: str) -> list[tuple[float, float]]:
        """(parameter, max ratio) pairs for one algorithm."""
        return [(row.parameter, row.max_ratios[algorithm]) for row in self.rows]

    def algorithms(self) -> list[str]:
        return sorted(self.rows[0].max_ratios) if self.rows else []


def sweep(
    parameter_name: str,
    parameter_values: Sequence[float],
    factories_for: Callable[[float], Mapping[str, Callable[[], OnlineDOM]]],
    schedules_for: Callable[[float], Sequence[Schedule]],
    model_for: Callable[[float], CostModel],
    threshold_for: Callable[[float], int] = lambda value: 2,
    exact_limit: int = 12,
) -> SweepResult:
    """Generic sweep driver.

    For each parameter value, builds the cost model, the schedule suite
    and one factory per algorithm, measures every algorithm on every
    schedule against the offline reference, and records max/mean ratios
    and mean costs.
    """
    if not parameter_values:
        raise ConfigurationError("no parameter values to sweep")
    rows = []
    for value in parameter_values:
        model = model_for(value)
        schedules = schedules_for(value)
        harness = CompetitivenessHarness(
            model, threshold_for(value), exact_limit
        )
        max_ratios: dict[str, float] = {}
        mean_ratios: dict[str, float] = {}
        mean_costs: dict[str, float] = {}
        for name, factory in factories_for(value).items():
            report = harness.measure(factory, schedules)
            max_ratios[name] = report.max_ratio
            mean_ratios[name] = report.mean_ratio
            mean_costs[name] = sum(
                obs.algorithm_cost for obs in report.observations
            ) / len(report.observations)
        rows.append(SweepRow(value, max_ratios, mean_ratios, mean_costs))
    return SweepResult(parameter_name, tuple(rows))


def cost_sweep(
    parameter_name: str,
    parameter_values: Sequence[float],
    factories_for: Callable[[float], Mapping[str, Callable[[], OnlineDOM]]],
    schedules_for: Callable[[float], Sequence[Schedule]],
    model_for: Callable[[float], CostModel],
) -> SweepResult:
    """A cheaper sweep that skips the offline reference (ratios are set
    to raw mean costs) — used when only *relative* algorithm costs
    matter, e.g. the read/write-mix crossover on long schedules."""
    if not parameter_values:
        raise ConfigurationError("no parameter values to sweep")
    rows = []
    for value in parameter_values:
        model = model_for(value)
        schedules = schedules_for(value)
        mean_costs: dict[str, float] = {}
        for name, factory in factories_for(value).items():
            costs = []
            for schedule in schedules:
                algorithm = factory()
                allocation = algorithm.run(schedule)
                costs.append(model.schedule_cost(allocation))
            mean_costs[name] = sum(costs) / len(costs)
        rows.append(SweepRow(value, dict(mean_costs), dict(mean_costs), mean_costs))
    return SweepResult(parameter_name, tuple(rows))
