"""Availability analysis: why the paper constrains the scheme size.

Paper §1: the model *"accounts ... for limits on the minimum number of
copies of the object (to ensure availability)"*, and §2 prescribes
quorum consensus under failures.  This module quantifies both choices
for independent fail-stop nodes, each up with probability ``p``:

* **ROWA** (read-one-write-all — SA's regime, and DA's in the normal
  mode): a read succeeds iff *some* scheme member is up
  (``1 - (1-p)^t``), a write iff *all* are (``p^t``) — the classic
  asymmetry: more copies help reads and hurt writes.
* **Weighted-vote quorums**: an operation succeeds iff the live vote
  total reaches its quorum; computed exactly by dynamic programming
  over the vote-count distribution (no normal approximations).
* :func:`best_quorums` searches all intersecting ``(r, w)`` pairs for
  the pair maximizing availability under a given read/write mix —
  reproducing Gifford's observation that read-heavy mixes want small
  read quorums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"probability must be in [0, 1], got {p}")


# -- ROWA (SA, and DA's normal mode) ------------------------------------------


def rowa_read_availability(p: float, copies: int) -> float:
    """P[some replica is up] = 1 - (1-p)^copies."""
    _check_probability(p)
    if copies < 1:
        raise ConfigurationError("need at least one copy")
    return 1.0 - (1.0 - p) ** copies


def rowa_write_availability(p: float, copies: int) -> float:
    """P[every replica is up] = p^copies."""
    _check_probability(p)
    if copies < 1:
        raise ConfigurationError("need at least one copy")
    return p ** copies


def rowa_availability(
    p: float, copies: int, write_fraction: float
) -> float:
    """Mix-weighted ROWA availability."""
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must be in [0, 1]")
    return (1 - write_fraction) * rowa_read_availability(p, copies) + \
        write_fraction * rowa_write_availability(p, copies)


# -- weighted-vote quorums ------------------------------------------------------


def live_vote_distribution(
    p: float, votes: Sequence[int]
) -> List[float]:
    """Exact distribution of the live vote total.

    ``distribution[v]`` is the probability that exactly ``v`` votes are
    live, computed by convolving one Bernoulli factor per node.
    """
    _check_probability(p)
    for weight in votes:
        if weight < 0:
            raise ConfigurationError("vote weights must be non-negative")
    total = sum(votes)
    distribution = [0.0] * (total + 1)
    distribution[0] = 1.0
    for weight in votes:
        updated = [0.0] * (total + 1)
        for live_votes, probability in enumerate(distribution):
            if probability == 0.0:
                continue
            updated[live_votes] += probability * (1 - p)
            updated[live_votes + weight] += probability * p
        distribution = updated
    return distribution


def quorum_availability(
    p: float, votes: Sequence[int], quorum: int
) -> float:
    """P[live vote total >= quorum]."""
    distribution = live_vote_distribution(p, votes)
    if not 1 <= quorum <= len(distribution) - 1:
        raise ConfigurationError(
            f"quorum must be within [1, {len(distribution) - 1}]"
        )
    return sum(distribution[quorum:])


@dataclass(frozen=True)
class QuorumChoice:
    """One (read quorum, write quorum) configuration and its availability."""

    read_quorum: int
    write_quorum: int
    read_availability: float
    write_availability: float
    mixed_availability: float


def quorum_mixed_availability(
    p: float,
    votes: Sequence[int],
    read_quorum: int,
    write_quorum: int,
    write_fraction: float,
) -> QuorumChoice:
    """Availability of one quorum configuration under a request mix."""
    total = sum(votes)
    if read_quorum + write_quorum <= total:
        raise ConfigurationError(
            f"r={read_quorum} + w={write_quorum} must exceed the total "
            f"vote count {total}"
        )
    read_avail = quorum_availability(p, votes, read_quorum)
    write_avail = quorum_availability(p, votes, write_quorum)
    mixed = (1 - write_fraction) * read_avail + write_fraction * write_avail
    return QuorumChoice(
        read_quorum, write_quorum, read_avail, write_avail, mixed
    )


def best_quorums(
    p: float,
    votes: Sequence[int],
    write_fraction: float,
) -> QuorumChoice:
    """The intersecting ``(r, w)`` pair maximizing mixed availability.

    Ties break toward the smallest read quorum (cheapest reads) and
    then the smallest write quorum, so results are deterministic.
    """
    total = sum(votes)
    if total < 1:
        raise ConfigurationError("need at least one vote")
    best: Optional[QuorumChoice] = None
    for read_quorum in range(1, total + 1):
        write_quorum = total - read_quorum + 1
        if write_quorum < 1:
            continue
        choice = quorum_mixed_availability(
            p, votes, read_quorum, write_quorum, write_fraction
        )
        if (
            best is None
            or choice.mixed_availability > best.mixed_availability + 1e-15
        ):
            best = choice
    assert best is not None
    return best


# -- SA vs quorum comparisons ----------------------------------------------------


def availability_table(
    p: float,
    n: int,
    thresholds: Iterable[int],
    write_fraction: float,
) -> List[Tuple[int, float, float, float]]:
    """Rows of (t, ROWA read, ROWA write, majority-quorum mixed
    availability over n one-vote nodes) — the data behind the
    availability benchmark."""
    votes = [1] * n
    majority = n // 2 + 1
    quorum = quorum_mixed_availability(
        p, votes, majority, majority, write_fraction
    )
    rows = []
    for t in thresholds:
        rows.append(
            (
                t,
                rowa_read_availability(p, t),
                rowa_write_availability(p, t),
                quorum.mixed_availability,
            )
        )
    return rows
