"""Plain-text report formatting for benchmark output.

The benchmark harness prints the paper's artifacts as aligned text
tables (the environment has no plotting libraries).  These helpers keep
all formatting in one place so every bench prints consistently.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.exceptions import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned text table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to the content.
    """
    if not headers:
        raise ConfigurationError("a table needs headers")

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(widths[index]) for index, cell in enumerate(cells)
        )

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_mapping(
    mapping: Mapping[str, object], title: Optional[str] = None
) -> str:
    """Render a key/value mapping as a two-column table."""
    rows = [(key, value) for key, value in mapping.items()]
    return format_table(["key", "value"], rows, title=title)


def format_ratio_check(
    name: str,
    measured: float,
    bound: float,
    kind: str = "upper",
) -> str:
    """One-line PASS/FAIL summary comparing a measurement to a bound."""
    if kind == "upper":
        ok = measured <= bound + 1e-9
        relation = "<="
    elif kind == "lower":
        ok = measured >= bound - 1e-9
        relation = ">="
    else:
        raise ConfigurationError(f"unknown bound kind {kind!r}")
    status = "PASS" if ok else "FAIL"
    return (
        f"[{status}] {name}: measured {measured:.4f} {relation} "
        f"bound {bound:.4f}"
    )


def bullet_list(items: Iterable[str]) -> str:
    return "\n".join(f"  - {item}" for item in items)
