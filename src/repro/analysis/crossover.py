"""Crossover location: where two algorithms trade places.

The paper's Figure 1 places the SA/DA boundary analytically
(``c_c + c_d = 0.5`` and ``c_d = 1``).  Empirically, the crossover also
shows up along *workload* axes — e.g. the write fraction at which SA's
mean cost drops below DA's.  :func:`find_crossover` locates such a
point by bisection on a monotone(ish) cost-difference function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Crossover:
    """A bracketed crossover of a scalar function."""

    parameter: float
    low: float
    high: float
    difference_low: float
    difference_high: float


def find_crossover(
    difference: Callable[[float], float],
    low: float,
    high: float,
    tolerance: float = 1e-3,
    max_iterations: int = 60,
) -> Optional[Crossover]:
    """Bisect for a sign change of ``difference`` on ``[low, high]``.

    Returns ``None`` when the endpoints have the same sign (no
    crossover inside the bracket).  ``difference`` is typically
    ``cost_A(x) - cost_B(x)`` over a deterministic workload.
    """
    if low >= high:
        raise ConfigurationError(f"invalid bracket [{low}, {high}]")
    value_low = difference(low)
    value_high = difference(high)
    if value_low == 0.0:
        return Crossover(low, low, low, value_low, value_low)
    if value_high == 0.0:
        return Crossover(high, high, high, value_high, value_high)
    if (value_low > 0) == (value_high > 0):
        return None
    lo, hi = low, high
    for _ in range(max_iterations):
        if hi - lo <= tolerance:
            break
        mid = (lo + hi) / 2.0
        value_mid = difference(mid)
        if value_mid == 0.0:
            return Crossover(mid, lo, hi, value_low, value_high)
        if (value_mid > 0) == (value_low > 0):
            lo, value_low = mid, value_mid
        else:
            hi, value_high = mid, value_mid
    mid = (lo + hi) / 2.0
    return Crossover(mid, lo, hi, value_low, value_high)
