"""Calibration: from hardware numbers to the paper's cost parameters.

The model's ``(c_io, c_c, c_d)`` are abstract ratios; a deployment has
concrete numbers — message sizes, link bandwidth, round-trip latency,
disk service times, per-message tariffs.  This module converts:

* **Stationary** (§3.2): a message's cost is the resource time it
  occupies, ``rtt/2 + bytes / bandwidth``; an I/O's is the disk service
  time.  Normalizing by the I/O time yields ``c_c`` and ``c_d`` with
  ``c_io = 1`` — ready for :func:`repro.model.cost_model.stationary`.
* **Mobile** (§3.3): the user is billed per message; with a per-message
  fee plus a per-byte rate, ``c_c`` and ``c_d`` are the charges
  themselves and ``c_io = 0``.

The classifier functions then say, straight from Figure 1/2, which
algorithm the calibrated point favours — the end-to-end "what should I
deploy" question the paper answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.regions import Region, classify_mobile, classify_stationary
from repro.exceptions import ConfigurationError
from repro.model.cost_model import CostModel, mobile, stationary


@dataclass(frozen=True)
class StationaryHardware:
    """A wired deployment's parameters."""

    control_bytes: float = 64.0
    object_bytes: float = 8192.0
    bandwidth_bytes_per_ms: float = 12_500.0  # 100 Mbit/s
    one_way_latency_ms: float = 0.5
    io_service_ms: float = 8.0

    def __post_init__(self) -> None:
        for name in (
            "control_bytes", "object_bytes", "bandwidth_bytes_per_ms",
            "one_way_latency_ms", "io_service_ms",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.object_bytes < self.control_bytes:
            raise ConfigurationError(
                "the object (plus headers) cannot be smaller than a "
                "control message — Figure 1's feasibility constraint"
            )

    def message_ms(self, payload_bytes: float) -> float:
        return self.one_way_latency_ms + payload_bytes / self.bandwidth_bytes_per_ms


@dataclass(frozen=True)
class MobileTariff:
    """A wireless provider's billing parameters."""

    per_message_fee: float = 0.05
    per_kilobyte_fee: float = 0.01
    control_bytes: float = 64.0
    object_bytes: float = 8192.0

    def __post_init__(self) -> None:
        if self.per_message_fee < 0 or self.per_kilobyte_fee < 0:
            raise ConfigurationError("fees must be non-negative")
        if self.per_message_fee == 0 and self.per_kilobyte_fee == 0:
            raise ConfigurationError("a tariff must charge something")
        if self.object_bytes < self.control_bytes:
            raise ConfigurationError("the object cannot be smaller than a header")

    def message_charge(self, payload_bytes: float) -> float:
        return self.per_message_fee + self.per_kilobyte_fee * payload_bytes / 1024.0


def calibrate_stationary(hardware: StationaryHardware) -> CostModel:
    """The SC model point (``c_io = 1``) for a wired deployment."""
    c_c = hardware.message_ms(hardware.control_bytes) / hardware.io_service_ms
    c_d = hardware.message_ms(hardware.object_bytes) / hardware.io_service_ms
    return stationary(c_c, c_d)


def calibrate_mobile(tariff: MobileTariff) -> CostModel:
    """The MC model point (``c_io = 0``) for a wireless tariff."""
    c_c = tariff.message_charge(tariff.control_bytes)
    c_d = tariff.message_charge(tariff.object_bytes)
    return mobile(c_c, c_d)


@dataclass(frozen=True)
class DeploymentAdvice:
    """The calibrated point and what Figure 1/2 says about it."""

    model: CostModel
    region: Region

    @property
    def recommendation(self) -> str:
        if self.region is Region.DA_SUPERIOR:
            return (
                "dynamic allocation (DA): the object is expensive to ship "
                "relative to I/O, so saved copies pay for themselves"
            )
        if self.region is Region.SA_SUPERIOR:
            return (
                "static allocation (SA): communication is nearly free, so "
                "dynamic joins are wasted work"
            )
        return (
            "contested regime: the proven bounds do not decide it — "
            "measure with your workload (repro.analysis.expected_cost "
            "or the competitiveness harness)"
        )


def advise_stationary(hardware: StationaryHardware) -> DeploymentAdvice:
    model = calibrate_stationary(hardware)
    return DeploymentAdvice(model, classify_stationary(model.c_c, model.c_d))


def advise_mobile(tariff: MobileTariff) -> DeploymentAdvice:
    model = calibrate_mobile(tariff)
    return DeploymentAdvice(model, classify_mobile(model.c_c, model.c_d))
