"""Average-case (expected) cost analysis under an i.i.d. workload.

The paper argues by worst case and remarks that worst-case superiority
"is usually" reflected on average (§2).  This module makes the average
case exact for the simplest stochastic workload — each request is,
independently, a write with probability ``w`` and is issued by a
processor chosen uniformly among ``n`` — so the benchmark harness can
compare the analytic crossover against simulation.

* :func:`sa_expected_cost` — closed form.  SA's scheme is static, so
  requests are i.i.d. in cost:

  ``E[read]  = c_io + (1 - t/n) (c_c + c_d)``
  ``E[write] = t c_io + (t - t/n) c_d``

* :class:`DAExpectedCost` — exact long-run average via the Markov chain
  on DA's scheme.  With uniform issuers, the scheme is ``F ∪ M`` where
  ``M`` is the set of non-core copy holders; ``M`` is a Markov chain on
  the non-empty subsets of the ``n - t + 1`` non-core processors:

  - a read by a holder costs ``c_io`` and leaves ``M`` unchanged;
  - a read by a non-holder costs ``c_c + 2 c_io + c_d`` (the
    saving-read) and adds the reader to ``M``;
  - a write by ``j`` resets ``M`` to ``{p}`` (if ``j ∈ F ∪ {p}``) or
    ``{j}``, costing ``|M \\ {m}| c_c + (t-1) c_d + t c_io`` where
    ``m`` is the surviving non-core holder.

  The stationary distribution is computed with numpy; the state space
  is ``2^(n-t+1) - 1``, fine for ``n ≤ 12``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.engine.keys import stable_key
from repro.engine.runner import ExperimentEngine, Task
from repro.exceptions import ConfigurationError
from repro.kernel.compile import popcount
from repro.model.cost_model import CostModel


def _validate(n: int, threshold: int, write_fraction: float) -> None:
    if threshold < 2:
        raise ConfigurationError("t must be at least 2")
    if n <= threshold:
        raise ConfigurationError(
            "need more processors than t (otherwise every write is "
            "trivially write-all, paper §3.1)"
        )
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must be in [0, 1]")


def sa_expected_cost(
    model: CostModel,
    n: int,
    threshold: int,
    write_fraction: float,
) -> float:
    """Exact expected per-request cost of SA under the i.i.d. workload."""
    _validate(n, threshold, write_fraction)
    t = threshold
    member = t / n
    expected_read = model.c_io + (1 - member) * (model.c_c + model.c_d)
    expected_write = t * model.c_io + (t - member) * model.c_d
    return (
        (1 - write_fraction) * expected_read
        + write_fraction * expected_write
    )


@dataclass(frozen=True)
class DAExpectedResult:
    """The chain's answer: long-run average cost and scheme size."""

    expected_cost: float
    expected_scheme_size: float


class DAExpectedCost:
    """Exact long-run average per-request cost of DA (Markov chain)."""

    def __init__(
        self,
        model: CostModel,
        n: int,
        threshold: int,
        write_fraction: float,
    ) -> None:
        _validate(n, threshold, write_fraction)
        self.model = model
        self.n = n
        self.threshold = threshold
        self.write_fraction = write_fraction
        #: Non-core processors: p plus everyone outside the initial scheme.
        self.non_core = n - (threshold - 1)
        if self.non_core > 12:
            raise ConfigurationError(
                "the exact chain is limited to n - t + 1 <= 12 non-core "
                "processors"
            )

    def solve(self) -> DAExpectedResult:
        n, t, w = self.n, self.threshold, self.write_fraction
        c_io, c_c, c_d = self.model.c_io, self.model.c_c, self.model.c_d
        nc = self.non_core  # non-core processors, index 0 is p
        # State ``mask`` (the non-empty subsets of non-core holders)
        # lives at row ``mask - 1``; everything below is vectorized
        # over all states at once, looping only over the nc issuers.
        masks = np.arange(1, 1 << nc, dtype=np.int64)
        rows = masks - 1
        size = masks.shape[0]
        transition = np.zeros((size, size))
        cost = np.zeros(size)

        read_probability = (1 - w) / n
        write_probability = w / n
        local_read = c_io
        saving_read = c_c + 2 * c_io + c_d
        write_base = (t - 1) * c_d + t * c_io

        # Reads by core members (t-1 of them) and by holders: local.
        local_readers = (t - 1) + popcount(masks)
        transition[rows, rows] += local_readers * read_probability
        cost += local_readers * read_probability * local_read
        for reader in range(nc):
            # Reads by each non-holder: saving-read, the reader joins.
            bit = 1 << reader
            non_holder = (masks & bit) == 0
            source = rows[non_holder]
            joined = (masks[non_holder] | bit) - 1
            transition[source, joined] += read_probability
            cost[source] += read_probability * saving_read
        # Writes by core members or p: M resets to {p}.
        insiders = t  # (t-1) core members plus p
        survivor = 1  # p's bit
        stale = popcount(masks & ~survivor)
        transition[rows, survivor - 1] += insiders * write_probability
        cost += insiders * write_probability * (write_base + stale * c_c)
        for writer in range(1, nc):
            # Writes by each non-core, non-p processor j: M resets to {j}.
            bit = 1 << writer
            stale = popcount(masks & ~bit)
            transition[rows, bit - 1] += write_probability
            cost += write_probability * (write_base + stale * c_c)

        stationary = self._stationary(transition)
        expected_cost = float(stationary @ cost)
        sizes = (t - 1) + popcount(masks).astype(float)
        expected_size = float(stationary @ sizes)
        return DAExpectedResult(expected_cost, expected_size)

    @staticmethod
    def _stationary(transition: np.ndarray) -> np.ndarray:
        """Stationary distribution of a row-stochastic matrix.

        Solved as the null space of ``(P^T - I)`` with the normalization
        constraint appended; least-squares keeps absorbing chains (the
        ``w = 0`` case) well-behaved.
        """
        size = transition.shape[0]
        a = np.vstack([transition.T - np.eye(size), np.ones((1, size))])
        b = np.zeros(size + 1)
        b[-1] = 1.0
        solution, *_ = np.linalg.lstsq(a, b, rcond=None)
        solution = np.clip(solution, 0.0, None)
        total = solution.sum()
        if total <= 0:
            raise ConfigurationError("stationary solve failed")
        return solution / total


def da_expected_cost(
    model: CostModel,
    n: int,
    threshold: int,
    write_fraction: float,
) -> float:
    """Convenience wrapper around :class:`DAExpectedCost`."""
    return DAExpectedCost(model, n, threshold, write_fraction).solve().expected_cost


def _expected_point(
    model: CostModel, n: int, threshold: int, write_fraction: float
) -> tuple[float, float, float]:
    """(w, SA expected cost, DA expected cost) at one write fraction."""
    return (
        write_fraction,
        sa_expected_cost(model, n, threshold, write_fraction),
        da_expected_cost(model, n, threshold, write_fraction),
    )


def _expected_key(
    model: CostModel, n: int, threshold: int, write_fraction: float
) -> str:
    return stable_key(
        {
            "kind": "expected-point",
            "model": model,
            "n": n,
            "threshold": threshold,
            "write_fraction": write_fraction,
        }
    )


def expected_cost_table(
    model: CostModel,
    n: int,
    threshold: int,
    write_fractions: Sequence[float],
    engine: Optional[ExperimentEngine] = None,
) -> list[tuple[float, float, float]]:
    """(w, SA, DA) expected-cost rows over a write-fraction grid.

    Each row is an independent Markov-chain solve, so the grid runs
    through the experiment engine (serial by default); rows come back
    in grid order regardless of worker scheduling.
    """
    engine = engine or ExperimentEngine()
    tasks = [
        Task(
            _expected_point,
            (model, n, threshold, w),
            key=(
                _expected_key(model, n, threshold, w)
                if engine.cache is not None
                else None
            ),
            label=f"w={w}",
        )
        for w in write_fractions
    ]
    return engine.run(tasks)


def analytic_crossover_write_fraction(
    model: CostModel,
    n: int,
    threshold: int = 2,
    resolution: int = 400,
    engine: Optional[ExperimentEngine] = None,
) -> float | None:
    """The smallest write fraction at which SA's expected cost drops to
    DA's (scanning ``[0, 1]``); ``None`` if DA never loses."""
    grid = [step / resolution for step in range(resolution + 1)]
    if engine is None or engine.max_workers <= 1:
        # Serial path: scan lazily, stopping at the first sign change.
        previous_sign = None
        for w in grid:
            difference = da_expected_cost(model, n, threshold, w) - \
                sa_expected_cost(model, n, threshold, w)
            sign = difference > 0
            if previous_sign is not None and sign != previous_sign:
                return w
            previous_sign = sign
        return None
    # Parallel path: evaluate the whole grid, then scan.  The first
    # sign change is the same either way.
    rows = expected_cost_table(model, n, threshold, grid, engine)
    previous_sign = None
    for w, sa_cost, da_cost in rows:
        sign = (da_cost - sa_cost) > 0
        if previous_sign is not None and sign != previous_sign:
            return w
        previous_sign = sign
    return None
