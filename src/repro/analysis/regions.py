"""Region maps on the (c_d, c_c) plane — Figures 1 and 2 of the paper.

Figure 1 (stationary model) partitions the feasible half-plane
(``c_c <= c_d``) into:

* **SA superior** — ``c_c + c_d < 0.5``: SA's tight factor
  ``1 + c_c + c_d`` is below DA's proven lower bound 1.5;
* **DA superior** — ``c_d > 1``: SA's tight factor exceeds DA's upper
  bound ``2 + c_c``;
* **Unknown** — the remaining wedge, where the gap between DA's upper
  and lower bounds leaves the comparison open;
* **Cannot be true** — ``c_c > c_d``.

Figure 2 (mobile model) has only two regions: *Cannot be true* above
the diagonal and *DA superior* everywhere else (SA is not competitive
at all in the mobile model).

:class:`RegionMap` evaluates the classification over a grid, both
*theoretically* (straight from the bounds) and *empirically* (worst
measured ratio of each algorithm over a schedule suite, the winner
being the algorithm with the smaller worst case).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.analysis.bounds import (
    da_competitive_factor,
    da_lower_bound,
    feasible,
    sa_lower_bound,
)
from repro.core.competitive import CompetitivenessHarness
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.engine.keys import stable_key
from repro.engine.runner import ExperimentEngine, Task
from repro.exceptions import ConfigurationError
from repro.model.cost_model import mobile, stationary
from repro.model.schedule import Schedule
from repro.types import processor_set


class Region(enum.Enum):
    """Classification of one point of the (c_d, c_c) plane."""

    SA_SUPERIOR = "SA"
    DA_SUPERIOR = "DA"
    UNKNOWN = "??"
    INFEASIBLE = "XX"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def classify_stationary(c_c: float, c_d: float) -> Region:
    """Figure 1's theoretical classification of one point."""
    if not feasible(c_c, c_d):
        return Region.INFEASIBLE
    model = stationary(c_c, c_d)
    if sa_lower_bound(model) < da_lower_bound(model):
        return Region.SA_SUPERIOR
    if sa_lower_bound(model) > da_competitive_factor(model):
        return Region.DA_SUPERIOR
    return Region.UNKNOWN


def classify_mobile(c_c: float, c_d: float) -> Region:
    """Figure 2's theoretical classification of one point."""
    if not feasible(c_c, c_d):
        return Region.INFEASIBLE
    if c_d == 0.0:
        # Everything is free: the comparison is vacuous.
        return Region.UNKNOWN
    return Region.DA_SUPERIOR


@dataclass(frozen=True)
class GridPoint:
    """One evaluated grid cell."""

    c_c: float
    c_d: float
    region: Region
    sa_ratio: Optional[float] = None
    da_ratio: Optional[float] = None


@dataclass(frozen=True)
class RegionMap:
    """A rectangular grid of classified (c_d, c_c) points."""

    c_d_values: tuple[float, ...]
    c_c_values: tuple[float, ...]
    points: tuple[GridPoint, ...]
    mobile: bool

    def at(self, c_c: float, c_d: float) -> GridPoint:
        for point in self.points:
            if point.c_c == c_c and point.c_d == c_d:
                return point
        raise KeyError((c_c, c_d))

    def rows(self) -> list[list[GridPoint]]:
        """Points grouped by ``c_c`` (descending, like the figures'
        y-axis) with ``c_d`` ascending inside each row."""
        grouped: dict[float, list[GridPoint]] = {}
        for point in self.points:
            grouped.setdefault(point.c_c, []).append(point)
        rows = []
        for c_c in sorted(grouped, reverse=True):
            rows.append(sorted(grouped[c_c], key=lambda p: p.c_d))
        return rows


def grid(
    c_d_max: float = 2.0, c_c_max: float = 2.0, steps: int = 9
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """An evenly spaced evaluation grid for the two figures."""
    if steps < 2:
        raise ConfigurationError("need at least two grid steps")
    c_d_values = tuple(
        round(c_d_max * index / (steps - 1), 10) for index in range(steps)
    )
    c_c_values = tuple(
        round(c_c_max * index / (steps - 1), 10) for index in range(steps)
    )
    return c_d_values, c_c_values


def theoretical_map(
    mobile_model: bool = False,
    c_d_max: float = 2.0,
    c_c_max: float = 2.0,
    steps: int = 9,
) -> RegionMap:
    """The straight-from-the-theorems region map (Figure 1 or 2)."""
    c_d_values, c_c_values = grid(c_d_max, c_c_max, steps)
    classify = classify_mobile if mobile_model else classify_stationary
    points = tuple(
        GridPoint(c_c, c_d, classify(c_c, c_d))
        for c_c in c_c_values
        for c_d in c_d_values
    )
    return RegionMap(c_d_values, c_c_values, points, mobile_model)


def empirical_winner(
    c_c: float,
    c_d: float,
    schedules: Sequence[Schedule],
    initial_scheme: Iterable[int],
    mobile_model: bool = False,
    threshold: int = 2,
    margin: float = 1e-9,
) -> GridPoint:
    """Classify one feasible point by measured worst-case ratios.

    The winner is the algorithm whose worst ratio over ``schedules`` is
    smaller; ties (within ``margin``) are reported as UNKNOWN.
    """
    if not feasible(c_c, c_d):
        return GridPoint(c_c, c_d, Region.INFEASIBLE)
    scheme = processor_set(initial_scheme)
    model = mobile(c_c, c_d) if mobile_model else stationary(c_c, c_d)
    harness = CompetitivenessHarness(model, threshold)
    sa_report = harness.measure(lambda: StaticAllocation(scheme), schedules)
    da_report = harness.measure(lambda: DynamicAllocation(scheme), schedules)
    sa_ratio = sa_report.max_ratio
    da_ratio = da_report.max_ratio
    if sa_ratio < da_ratio - margin:
        region = Region.SA_SUPERIOR
    elif da_ratio < sa_ratio - margin:
        region = Region.DA_SUPERIOR
    else:
        region = Region.UNKNOWN
    return GridPoint(c_c, c_d, region, sa_ratio, da_ratio)


def _point_cache_key(
    c_c: float,
    c_d: float,
    schedules: Sequence[Schedule],
    scheme,
    mobile_model: bool,
    threshold: int,
) -> str:
    """Stable cache key for one empirical grid point."""
    return stable_key(
        {
            "kind": "region-point",
            "c_c": c_c,
            "c_d": c_d,
            "schedules": [str(schedule) for schedule in schedules],
            "scheme": scheme,
            "mobile": mobile_model,
            "threshold": threshold,
        }
    )


def empirical_map(
    schedules: Sequence[Schedule],
    initial_scheme: Iterable[int],
    mobile_model: bool = False,
    c_d_max: float = 2.0,
    c_c_max: float = 2.0,
    steps: int = 9,
    threshold: int = 2,
    engine: Optional[ExperimentEngine] = None,
) -> RegionMap:
    """Measured region map over a grid (the empirical Figure 1 / 2).

    Each grid point is an independent measurement, so the map is
    submitted point-by-point through the experiment engine: serial by
    default, process-parallel (and optionally cached) when the caller
    provides an engine.  Output is identical either way.
    """
    c_d_values, c_c_values = grid(c_d_max, c_c_max, steps)
    engine = engine or ExperimentEngine()
    scheme = processor_set(initial_scheme)
    schedules = tuple(schedules)
    tasks = []
    for c_c in c_c_values:
        for c_d in c_d_values:
            key = None
            if engine.cache is not None:
                key = _point_cache_key(
                    c_c, c_d, schedules, scheme, mobile_model, threshold
                )
            tasks.append(
                Task(
                    empirical_winner,
                    (c_c, c_d, schedules, scheme, mobile_model, threshold),
                    key=key,
                    label=f"c_c={c_c}, c_d={c_d}",
                )
            )
    points = engine.run(tasks)
    return RegionMap(c_d_values, c_c_values, tuple(points), mobile_model)
