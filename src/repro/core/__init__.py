"""The paper's primary contribution: DOM algorithms and their analysis.

* :class:`~repro.core.base.OnlineDOM` — the online-step interface of §3.4
* :class:`~repro.core.static_allocation.StaticAllocation` — SA (§4.2.1)
* :class:`~repro.core.dynamic_allocation.DynamicAllocation` — DA (§4.2.2)
* :class:`~repro.core.offline_optimal.OfflineOptimal` — the exact
  offline optimum used as the competitiveness yardstick (§4.1)
* :class:`~repro.core.competitive.CompetitivenessHarness` — empirical
  ratio measurement
* Baselines: :class:`~repro.core.cddr.SkiRentalReplication`,
  :class:`~repro.core.convergent.ConvergentAllocation`,
  :class:`~repro.core.caching.WriteInvalidationCaching` (§5)
* :mod:`repro.core.versioning` — the append-only model of §6.2
"""

from repro.core.base import OnlineDOM, run_algorithm
from repro.core.beam_optimal import BeamOptimal, OptimalSandwich, optimal_sandwich
from repro.core.caching import WriteInvalidationCaching
from repro.core.cddr import SkiRentalReplication
from repro.core.competitive import (
    CompetitivenessHarness,
    RatioObservation,
    RatioReport,
    compare_algorithms,
    cost_of,
    measure_ratios,
)
from repro.core.convergent import ConvergentAllocation
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.factory import ALGORITHM_NAMES, algorithm_factory, make_algorithm
from repro.core.heterogeneous_optimal import HeterogeneousOfflineOptimal
from repro.core.multi import ObjectDirectory, ObjectRequest, interleave
from repro.core.nearest import NearestServerDynamic, NearestServerStatic
from repro.core.offline_bounds import optimal_cost_lower_bound
from repro.core.offline_optimal import (
    OfflineOptimal,
    OptimalResult,
    optimal_allocation,
    optimal_cost,
)
from repro.core.static_allocation import StaticAllocation

__all__ = [
    "ALGORITHM_NAMES",
    "BeamOptimal",
    "CompetitivenessHarness",
    "OptimalSandwich",
    "optimal_sandwich",
    "ConvergentAllocation",
    "DynamicAllocation",
    "HeterogeneousOfflineOptimal",
    "NearestServerDynamic",
    "NearestServerStatic",
    "ObjectDirectory",
    "ObjectRequest",
    "OfflineOptimal",
    "OnlineDOM",
    "OptimalResult",
    "RatioObservation",
    "RatioReport",
    "SkiRentalReplication",
    "StaticAllocation",
    "WriteInvalidationCaching",
    "algorithm_factory",
    "compare_algorithms",
    "cost_of",
    "interleave",
    "make_algorithm",
    "measure_ratios",
    "optimal_allocation",
    "optimal_cost",
    "optimal_cost_lower_bound",
    "run_algorithm",
]
