"""Multi-object allocation: a directory of independent DOM instances.

Paper §3.1 scopes the analysis to a single object: *"In this paper we
address the allocation of a single object."*  A real distributed
database manages many objects, each with its own access pattern and its
own allocation scheme — and because the paper's cost function is a sum
of independent per-request costs, per-object DOM instances compose
without interference: the total cost of a multi-object trace is the sum
of the single-object costs, and every per-object guarantee (legality,
``t``-availability, the competitive factors) carries over object by
object.

:class:`ObjectDirectory` packages that composition: it owns one
:class:`~repro.core.base.OnlineDOM` per object id (created lazily from
a factory), routes a multi-object request stream, and aggregates costs
per object and in total.  It is the natural entry point for a library
user who has more than one hot object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, Optional

from repro.core.base import OnlineDOM
from repro.exceptions import ConfigurationError
from repro.model.accounting import CostBreakdown, total
from repro.model.allocation import AllocationSchedule
from repro.model.cost_model import CostModel
from repro.model.costs import request_breakdown
from repro.model.request import ExecutedRequest, Request

#: Anything hashable can name an object (string keys, ints, tuples...).
ObjectId = Hashable


@dataclass(frozen=True, slots=True)
class ObjectRequest:
    """A read or write of one named object."""

    object_id: ObjectId
    request: Request

    def __str__(self) -> str:
        return f"{self.request}@{self.object_id!r}"


class ObjectDirectory:
    """Routes a multi-object request stream to per-object DOM instances.

    Parameters
    ----------
    algorithm_factory:
        Called with the object id whenever a new object appears; must
        return a fresh :class:`OnlineDOM` (e.g. a
        :class:`~repro.core.dynamic_allocation.DynamicAllocation` with
        that object's preferred core).
    """

    def __init__(
        self,
        algorithm_factory: Callable[[ObjectId], OnlineDOM],
    ) -> None:
        self._factory = algorithm_factory
        self._instances: Dict[ObjectId, OnlineDOM] = {}
        self._breakdowns: Dict[ObjectId, CostBreakdown] = {}

    # -- routing ---------------------------------------------------------

    def instance(self, object_id: ObjectId) -> OnlineDOM:
        """The DOM instance managing ``object_id`` (created on first use)."""
        if object_id not in self._instances:
            algorithm = self._factory(object_id)
            if not isinstance(algorithm, OnlineDOM):
                raise ConfigurationError(
                    f"factory returned {algorithm!r}, not an OnlineDOM"
                )
            algorithm.reset()
            self._instances[object_id] = algorithm
            self._breakdowns[object_id] = CostBreakdown()
        return self._instances[object_id]

    def submit(self, object_request: ObjectRequest) -> ExecutedRequest:
        """Run one online step on the owning object's DOM instance."""
        algorithm = self.instance(object_request.object_id)
        scheme_before = algorithm.current_scheme
        executed = algorithm.online_step(object_request.request)
        step = request_breakdown(executed, scheme_before)
        self._breakdowns[object_request.object_id] = (
            self._breakdowns[object_request.object_id] + step
        )
        return executed

    def run(self, stream: Iterable[ObjectRequest]) -> None:
        """Route a whole stream."""
        for object_request in stream:
            self.submit(object_request)

    # -- inspection -----------------------------------------------------------

    @property
    def object_ids(self) -> list:
        return sorted(self._instances, key=repr)

    def allocation_schedule(self, object_id: ObjectId) -> AllocationSchedule:
        return self.instance(object_id).allocation_schedule()

    def scheme(self, object_id: ObjectId):
        return self.instance(object_id).current_scheme

    # -- costs ------------------------------------------------------------------

    def breakdown(self, object_id: ObjectId) -> CostBreakdown:
        """Accumulated cost breakdown of one object."""
        if object_id not in self._breakdowns:
            raise ConfigurationError(f"unknown object {object_id!r}")
        return self._breakdowns[object_id]

    def total_breakdown(self) -> CostBreakdown:
        """Accumulated breakdown across all objects."""
        return total(self._breakdowns.values())

    def cost(self, model: CostModel, object_id: Optional[ObjectId] = None) -> float:
        """Priced cost of one object (or of everything)."""
        if object_id is not None:
            return model.price(self.breakdown(object_id))
        return model.price(self.total_breakdown())

    def per_object_costs(self, model: CostModel) -> Dict[ObjectId, float]:
        return {
            object_id: model.price(breakdown)
            for object_id, breakdown in self._breakdowns.items()
        }


def interleave(streams: Dict[ObjectId, Iterable[Request]]) -> list[ObjectRequest]:
    """Round-robin interleaving of per-object request sequences into one
    multi-object stream — handy for building directory workloads from
    the single-object generators."""
    iterators = {
        object_id: iter(requests) for object_id, requests in streams.items()
    }
    stream: list[ObjectRequest] = []
    while iterators:
        exhausted = []
        for object_id in sorted(iterators, key=repr):
            try:
                request = next(iterators[object_id])
            except StopIteration:
                exhausted.append(object_id)
                continue
            stream.append(ObjectRequest(object_id, request))
        for object_id in exhausted:
            del iterators[object_id]
    return stream
