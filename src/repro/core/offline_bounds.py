"""Sound lower bounds on the offline-optimal cost for large instances.

The exact DP of :mod:`repro.core.offline_optimal` is exponential in the
number of processors.  For larger instances the competitiveness
harness needs a *sound* (never exceeding OPT) lower bound; ratios
computed against it are then upper bounds on the true empirical ratio.

The bound charges, independently:

* every read at least one I/O (``c_io``) — any legal read inputs the
  object from at least one local database;
* every write at least ``t·c_io + (t-1)·c_d`` — its execution set has
  at least ``t`` members, all perform output I/O, and at least
  ``|X| - 1`` data messages carry the object to them;
* per *write-free segment*, the distinct readers that cannot have been
  scheme members for free.  After a write, the scheme is exactly the
  write's execution set, whose first ``t`` members are already paid
  for; each additional distinct reader in the segment pays at least
  ``min(c_c + c_d, c_d + c_io)`` extra — either an on-demand fetch
  (request message + data message beyond the local-read I/O) or
  membership in the preceding write's execution set (one extra data
  message and one extra output I/O).  Before the first write, readers
  outside the initial scheme must fetch, paying at least
  ``c_c + c_d`` extra.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import ConfigurationError
from repro.model.cost_model import CostModel
from repro.model.schedule import Schedule
from repro.types import ProcessorId, processor_set


def optimal_cost_lower_bound(
    schedule: Schedule,
    initial_scheme: Iterable[ProcessorId],
    cost_model: CostModel,
    threshold: int = 2,
) -> float:
    """A lower bound on ``COST_OPT(I, psi)`` computable in linear time."""
    if threshold < 2:
        raise ConfigurationError(
            f"the availability threshold t must be at least 2, got {threshold}"
        )
    initial = processor_set(initial_scheme)
    c_io, c_c, c_d = cost_model.c_io, cost_model.c_c, cost_model.c_d

    per_write = threshold * c_io + (threshold - 1) * c_d
    join_extra = min(c_c + c_d, c_d + c_io)

    bound = 0.0
    segment_readers: set[ProcessorId] = set()
    first_segment = True
    for request in schedule:
        if request.is_read:
            bound += c_io
            segment_readers.add(request.processor)
        else:
            bound += per_write
            bound += _segment_extra(
                segment_readers, first_segment, initial,
                threshold, c_c + c_d, join_extra,
            )
            segment_readers = set()
            first_segment = False
    bound += _segment_extra(
        segment_readers, first_segment, initial,
        threshold, c_c + c_d, join_extra,
    )
    return bound


def _segment_extra(
    readers: set[ProcessorId],
    first_segment: bool,
    initial,
    threshold: int,
    fetch_extra: float,
    join_extra: float,
) -> float:
    """Extra cost forced by the distinct readers of one segment."""
    if not readers:
        return 0.0
    if first_segment:
        return len(readers - initial) * fetch_extra
    return max(0, len(readers) - threshold) * join_extra
