"""A write-invalidation caching baseline (CDVM-style, paper §5.2).

Paper §5.2 relates DA to *caching and distributed virtual memory*
(CDVM): on a read miss the page is fetched and cached locally, and a
write invalidates all other cached copies.  The key differences the
paper lists are (a) CDVM has no minimum-copies threshold and (b) caches
are capacity-limited, forcing replacement (LRU and friends).

This baseline transplants the CDVM policy into the paper's model as
closely as the ``t``-available constraint allows:

* reads cache aggressively (every foreign read is a saving-read, served
  by the *lowest-id* current replica, not necessarily a core member —
  caches have no notion of a core set);
* each processor has a bounded "cache slot" budget: when more than
  ``capacity`` processors hold replicas, the write that next shrinks
  the scheme keeps only the writer, the most-recently-used readers and
  enough members to honour ``t`` — mimicking LRU replacement;
* a write keeps the writer plus the ``t - 1`` most recently used other
  replicas (instead of DA's fixed core ``F``), so the scheme drifts
  with the access pattern.

The benchmark harness runs this baseline beside DA.  Under the paper's
homogeneous cost model the drift is rarely punished (any core of size
``t`` prices the same), so the measured difference from DA is modest —
consistent with §5.2's position that the essential difference between
CDVM methods and replicated data is the availability threshold and the
I/O accounting, not the replacement policy.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.base import OnlineDOM
from repro.exceptions import ConfigurationError
from repro.model.request import ExecutedRequest, Request
from repro.types import ProcessorId


class WriteInvalidationCaching(OnlineDOM):
    """LRU-retention write-invalidation caching baseline."""

    name = "CACHE"

    def __init__(
        self,
        initial_scheme: Iterable[ProcessorId],
        capacity: Optional[int] = None,
        threshold: Optional[int] = None,
    ) -> None:
        super().__init__(initial_scheme, threshold)
        if capacity is None:
            capacity = len(self.initial_scheme)
        if capacity < self.threshold:
            raise ConfigurationError(
                f"capacity {capacity} cannot be below t={self.threshold}"
            )
        self.capacity = capacity
        # Most-recently-used order of replica holders (most recent last).
        self._mru: list[ProcessorId] = sorted(self.initial_scheme)

    def _touch(self, processor: ProcessorId) -> None:
        if processor in self._mru:
            self._mru.remove(processor)
        self._mru.append(processor)

    def decide(self, request: Request) -> ExecutedRequest:
        if request.is_read:
            if request.processor in self.current_scheme:
                return ExecutedRequest(request, frozenset({request.processor}))
            server = min(self.current_scheme)
            return ExecutedRequest(
                request, frozenset({server}), saving=True
            )
        # Write: keep the writer plus the most recently used replicas,
        # up to `capacity` members but never fewer than `t`.
        keep: list[ProcessorId] = [request.processor]
        for processor in reversed(self._mru):
            if len(keep) >= self.capacity:
                break
            if processor != request.processor:
                keep.append(processor)
        while len(keep) < self.threshold:
            # Pad from the current scheme if MRU data is too thin.
            for processor in sorted(self.current_scheme):
                if processor not in keep:
                    keep.append(processor)
                    break
            else:  # pragma: no cover - scheme always has >= t members
                break
        return ExecutedRequest(request, frozenset(keep))

    def observe(self, executed: ExecutedRequest) -> None:
        if executed.is_write:
            self._mru = [
                p for p in self._mru if p in executed.execution_set
            ]
            if executed.processor not in self._mru:
                self._mru.append(executed.processor)
            self._touch(executed.processor)
        else:
            self._touch(executed.processor)

    def _reset_extra_state(self) -> None:
        self._mru = sorted(self.initial_scheme)
