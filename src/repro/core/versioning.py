"""The append-only distributed-database model of paper §6.2.

Paper §6.2: the results apply verbatim to an append-only model — a set
``S`` of stations, a sequence of objects (e.g. satellite images), each
*generated* by some station, and stations reading the *latest* object
at arbitrary points in time.  Every object must be stored at ``t`` or
more processors for reliability.

The translation to the base model is:

* generating the next object in the sequence  ==  a write request;
* reading the latest object                   ==  a read request;
* SA  ==  a fixed set of ``t`` stations holding *permanent standing
  orders* for every new object; everyone else reads on demand;
* DA  ==  ``t - 1`` permanent standing orders; a station that needs the
  latest version places a *temporary standing order* (the saving-read /
  join-list mechanism), cancelled (invalidated) when the next object in
  the sequence arrives.

:class:`AppendOnlyFeed` builds a schedule from feed events and runs any
DOM algorithm over it, tracking which station stores which sequence
number so tests can assert the reliability property (every generated
object is stored at ``>= t`` stations at generation time).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.core.base import OnlineDOM
from repro.exceptions import ConfigurationError
from repro.model.allocation import AllocationSchedule
from repro.model.cost_model import CostModel
from repro.model.costs import next_scheme
from repro.model.request import read, write
from repro.model.schedule import Schedule
from repro.types import ProcessorId, ProcessorSet, processor_set


class FeedEventKind(enum.Enum):
    """The two event kinds of the append-only model."""

    GENERATE = "generate"
    READ_LATEST = "read_latest"


@dataclass(frozen=True, slots=True)
class FeedEvent:
    """One event of the append-only feed."""

    kind: FeedEventKind
    station: ProcessorId

    def __str__(self) -> str:
        verb = "gen" if self.kind is FeedEventKind.GENERATE else "read"
        return f"{verb}@{self.station}"


def generate(station: ProcessorId) -> FeedEvent:
    return FeedEvent(FeedEventKind.GENERATE, station)


def read_latest(station: ProcessorId) -> FeedEvent:
    return FeedEvent(FeedEventKind.READ_LATEST, station)


@dataclass(frozen=True)
class StoredCopy:
    """A station's stored copy of one object of the sequence."""

    station: ProcessorId
    sequence_number: int


class AppendOnlyFeed:
    """An append-only object sequence over a set of stations."""

    def __init__(self, events: Iterable[FeedEvent]) -> None:
        self.events: tuple[FeedEvent, ...] = tuple(events)
        for event in self.events:
            if not isinstance(event, FeedEvent):
                raise ConfigurationError(f"not a feed event: {event!r}")

    @property
    def stations(self) -> ProcessorSet:
        return processor_set(event.station for event in self.events)

    @property
    def object_count(self) -> int:
        """How many objects the feed generates."""
        return sum(
            1 for event in self.events
            if event.kind is FeedEventKind.GENERATE
        )

    def to_schedule(self) -> Schedule:
        """The base-model schedule corresponding to the feed (§6.2)."""
        requests = []
        for event in self.events:
            if event.kind is FeedEventKind.GENERATE:
                requests.append(write(event.station))
            else:
                requests.append(read(event.station))
        return Schedule(tuple(requests))


@dataclass(frozen=True)
class FeedRunResult:
    """Outcome of running a DOM algorithm over an append-only feed."""

    allocation: AllocationSchedule
    cost: float
    #: For every generated object: the stations storing it at generation
    #: time (the write's execution set).
    storage_map: tuple[ProcessorSet, ...]

    def reliability_satisfied(self, threshold: int) -> bool:
        """True iff every object was stored at >= ``threshold`` stations."""
        return all(len(stored) >= threshold for stored in self.storage_map)


def run_feed(
    feed: AppendOnlyFeed,
    algorithm: OnlineDOM,
    cost_model: CostModel,
) -> FeedRunResult:
    """Run a DOM algorithm (SA = permanent standing orders, DA =
    temporary standing orders) over the feed and collect storage facts."""
    schedule = feed.to_schedule()
    allocation = algorithm.run(schedule)
    cost = cost_model.schedule_cost(allocation)
    storage_map = tuple(
        step.execution_set for step in allocation if step.is_write
    )
    return FeedRunResult(allocation, cost, storage_map)


def standing_order_stations(
    allocation: AllocationSchedule,
) -> list[ProcessorSet]:
    """The evolving set of stations holding the latest object after each
    event — i.e. the stations whose standing order (permanent or
    temporary) was satisfied."""
    schemes: list[ProcessorSet] = []
    scheme = allocation.initial_scheme
    for step in allocation:
        scheme = next_scheme(step, scheme)
        schemes.append(scheme)
    return schemes
