"""A convergent (adaptive) allocation baseline.

Paper §5.1 distinguishes *competitive* online algorithms (worst-case
guarantees, appropriate for chaotic access patterns) from *convergent*
ones (Wolfson & Jajodia [27, 28]) that move toward the optimal static
allocation scheme for the recent read-write pattern, and notes that a
convergent algorithm "may unboundedly diverge from the optimum when the
read-write pattern is irregular".

This module implements such a convergent baseline so the benchmark
harness can reproduce that qualitative comparison.  The algorithm keeps
a sliding window of the last ``window`` requests.  At every write —
the only moment the model lets the allocation scheme shrink or move —
it recomputes the scheme that minimizes the *expected* per-request cost
of the window's read/write mix:

* a processor with ``r_i`` window reads and the window holding ``w``
  writes should hold a replica iff the saved read cost
  ``r_i · (c_c + c_d)`` exceeds the replication cost it adds to every
  write, ``w · (c_d + c_io)`` (plus an invalidation it may force);
* the scheme is padded to size ``t`` with the heaviest readers.

Between writes, foreign reads are served on demand and **not** saved —
that is what makes the algorithm converge to (rather than chase) the
window's optimum, and what makes it diverge on adversarial patterns.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Iterable, Optional

from repro.core.base import OnlineDOM
from repro.exceptions import ConfigurationError
from repro.model.cost_model import CostModel
from repro.model.request import ExecutedRequest, Request
from repro.types import ProcessorId


class ConvergentAllocation(OnlineDOM):
    """Sliding-window adaptive replication (convergent baseline)."""

    name = "CONV"

    def __init__(
        self,
        initial_scheme: Iterable[ProcessorId],
        cost_model: CostModel,
        window: int = 32,
        threshold: Optional[int] = None,
    ) -> None:
        super().__init__(initial_scheme, threshold)
        if window < 1:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.cost_model = cost_model
        self.window = window
        self._history: Deque[Request] = deque(maxlen=window)

    # -- window statistics ---------------------------------------------------

    def _window_reads(self) -> Counter:
        reads: Counter = Counter()
        for request in self._history:
            if request.is_read:
                reads[request.processor] += 1
        return reads

    def _window_writes(self) -> int:
        return sum(1 for request in self._history if request.is_write)

    def _target_scheme(self, writer: ProcessorId) -> frozenset:
        """The scheme the window statistics recommend, always including
        the writer's fresh copy and at least ``t`` members."""
        reads = self._window_reads()
        writes = max(1, self._window_writes())
        c = self.cost_model
        replica_benefit = c.c_c + c.c_d  # saved per local read
        replica_cost = c.c_d + c.c_io + c.c_c  # added per write (+invalidate)
        members = {
            processor
            for processor, count in reads.items()
            if count * replica_benefit > writes * replica_cost
        }
        members.add(writer)
        if len(members) < self.threshold:
            # Pad with the heaviest readers, then with current members.
            by_weight = [p for p, _ in reads.most_common() if p not in members]
            for processor in by_weight:
                if len(members) >= self.threshold:
                    break
                members.add(processor)
            for processor in sorted(self.current_scheme):
                if len(members) >= self.threshold:
                    break
                members.add(processor)
        return frozenset(members)

    # -- the online step --------------------------------------------------------

    def decide(self, request: Request) -> ExecutedRequest:
        if request.is_read:
            if request.processor in self.current_scheme:
                return ExecutedRequest(request, frozenset({request.processor}))
            server = min(self.current_scheme)
            return ExecutedRequest(request, frozenset({server}))
        return ExecutedRequest(request, self._target_scheme(request.processor))

    def observe(self, executed: ExecutedRequest) -> None:
        self._history.append(executed.request)

    def _reset_extra_state(self) -> None:
        self._history = deque(maxlen=self.window)
