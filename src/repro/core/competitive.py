"""Empirical competitiveness measurement.

Paper §4.1: a ``t``-available constrained DOM algorithm ``A`` is
``α``-competitive if ``COST_A(I, psi) <= α · COST_OPT(I, psi) + β`` for
all initial schemes ``I`` and schedules ``psi``.  This module measures
the ratio ``COST_A / COST_OPT`` over suites of schedules — the maximum
observed ratio is an *empirical lower bound* on the true competitive
factor, and comparing it with the paper's proven upper bounds is how
the benchmark harness validates Theorems 1-4.

For instances too large for the exact DP, ratios can be computed
against the sound lower bound of :mod:`repro.core.offline_bounds`; the
resulting "ratio" is then an upper bound on the true ratio.

Algorithm costs route through the vectorized kernel
(:mod:`repro.kernel`) whenever the algorithm is one the kernel
evaluates exactly (SA and DA); kernel costs are bit-identical to the
stepped path, so measured ratios are unchanged.  Pass
``use_kernel=False`` to force the stepped reference path everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import kernel
from repro.core.base import OnlineDOM
from repro.core.beam_optimal import BeamOptimal
from repro.core.offline_bounds import optimal_cost_lower_bound
from repro.core.offline_optimal import OfflineOptimal
from repro.exceptions import ConfigurationError
from repro.model.cost_model import CostModel
from repro.model.schedule import Schedule
from repro.types import ProcessorSet


def cost_of(
    algorithm: OnlineDOM,
    schedule: Schedule,
    cost_model: CostModel,
    use_kernel: bool = True,
) -> float:
    """COST_A(I, psi): the online algorithm's cost on the schedule.

    Kernel-supported algorithms (SA, DA) are evaluated in closed form
    without stepping; everything else runs the stepped reference path.
    Both paths return bit-identical costs.
    """
    if use_kernel and kernel.supports(algorithm):
        return kernel.schedule_cost(algorithm, schedule, cost_model)
    allocation = algorithm.run(schedule)
    return cost_model.schedule_cost(allocation)


@dataclass(frozen=True)
class RatioObservation:
    """One (schedule, algorithm-cost, reference-cost) measurement.

    ``reference_cost`` is OPT's cost when ``exact_reference`` is true,
    otherwise a sound *lower* bound on it; ``reference_upper`` (when
    set) is a sound *upper* bound — so inexact observations carry a
    ratio interval (:attr:`ratio_lower`, :attr:`ratio`) instead of a
    point.
    """

    schedule: Schedule
    algorithm_cost: float
    reference_cost: float
    exact_reference: bool
    #: Optional sound upper bound on OPT (beam search); equals
    #: ``reference_cost`` for exact observations.
    reference_upper: float | None = None

    @staticmethod
    def _divide(cost: float, reference: float) -> float:
        if reference > 0:
            return cost / reference
        if cost == 0:
            return 1.0
        return math.inf

    @property
    def ratio(self) -> float:
        """Cost ratio against the reference (an *upper* bound on the
        true ratio when the reference is a lower bound); infinite when
        the reference cost is zero but the algorithm still pays (the
        signature of a non-competitive algorithm in the mobile model)."""
        return self._divide(self.algorithm_cost, self.reference_cost)

    @property
    def ratio_lower(self) -> float:
        """A sound lower bound on the true ratio: the cost against the
        reference *upper* bound (== :attr:`ratio` when exact)."""
        upper = (
            self.reference_upper
            if self.reference_upper is not None
            else self.reference_cost
        )
        return self._divide(self.algorithm_cost, upper)


@dataclass(frozen=True)
class RatioReport:
    """Aggregate of ratio observations for one algorithm."""

    algorithm_name: str
    observations: tuple[RatioObservation, ...]

    def __post_init__(self) -> None:
        if not self.observations:
            raise ConfigurationError("a ratio report needs >= 1 observation")

    @property
    def max_ratio(self) -> float:
        return max(obs.ratio for obs in self.observations)

    @property
    def mean_ratio(self) -> float:
        return sum(obs.ratio for obs in self.observations) / len(
            self.observations
        )

    @property
    def worst(self) -> RatioObservation:
        return max(self.observations, key=lambda obs: obs.ratio)

    def within(self, bound: float, slack: float = 1e-9) -> bool:
        """True iff every observed ratio is at most ``bound`` (+slack)."""
        return self.max_ratio <= bound + slack


class CompetitivenessHarness:
    """Measures empirical competitive ratios against the offline optimum.

    Parameters
    ----------
    cost_model:
        Pricing shared by the algorithm and the reference.
    threshold:
        Availability threshold ``t`` used by the offline reference.
    exact_limit:
        Instances whose DP universe exceeds this many processors fall
        back to the linear-time lower bound (making measured ratios
        upper bounds on the truth).  The vectorized DP makes 14
        practical (the previous per-state implementation capped at 12).
    use_kernel:
        Evaluate kernel-supported algorithms (SA, DA) through the
        vectorized kernel — bit-identical costs, far faster on long
        schedules and batches.
    """

    def __init__(
        self,
        cost_model: CostModel,
        threshold: int = 2,
        exact_limit: int = 14,
        beam_width: int = 0,
        use_kernel: bool = True,
    ) -> None:
        self.cost_model = cost_model
        self.threshold = threshold
        self.exact_limit = exact_limit
        #: When positive, instances beyond ``exact_limit`` also get a
        #: beam-search *upper* bound on OPT, so their observations carry
        #: a ratio interval instead of a one-sided bound.
        self.beam_width = beam_width
        self.use_kernel = use_kernel
        self._solver = OfflineOptimal(cost_model, threshold, exact_limit)

    def reference_cost(
        self, schedule: Schedule, initial_scheme: ProcessorSet
    ) -> tuple[float, bool]:
        """OPT's cost (exact when feasible) and an exactness flag."""
        universe = initial_scheme | schedule.processors
        if len(universe) <= self.exact_limit:
            return self._solver.optimal_cost(schedule, initial_scheme), True
        bound = optimal_cost_lower_bound(
            schedule, initial_scheme, self.cost_model, self.threshold
        )
        return bound, False

    def observe(
        self, algorithm: OnlineDOM, schedule: Schedule
    ) -> RatioObservation:
        """Measure one schedule."""
        algorithm_cost = cost_of(
            algorithm, schedule, self.cost_model, use_kernel=self.use_kernel
        )
        return self._record(schedule, algorithm_cost, algorithm.initial_scheme)

    def _record(
        self,
        schedule: Schedule,
        algorithm_cost: float,
        initial_scheme: ProcessorSet,
    ) -> RatioObservation:
        """Pair an already-computed algorithm cost with the reference."""
        reference, exact = self.reference_cost(schedule, initial_scheme)
        reference_upper = None
        if not exact and self.beam_width > 0:
            beam = BeamOptimal(
                self.cost_model, self.threshold, self.beam_width
            )
            reference_upper = beam.solve(schedule, initial_scheme).cost
        return RatioObservation(
            schedule, algorithm_cost, reference, exact, reference_upper
        )

    def measure(
        self,
        make_algorithm: Callable[[], OnlineDOM],
        schedules: Sequence[Schedule],
    ) -> RatioReport:
        """Measure a suite of schedules with fresh algorithm instances.

        When the factory produces a kernel-supported algorithm, the
        whole suite compiles into one batch and every algorithm cost is
        evaluated in a single vectorized pass (bit-identical to
        stepping each schedule through a fresh instance).
        """
        if not schedules:
            raise ConfigurationError("no schedules to measure")
        probe = make_algorithm()
        name = probe.name
        if self.use_kernel and kernel.supports(probe):
            costs = kernel.batch_costs(probe, list(schedules), self.cost_model)
            observations = [
                self._record(schedule, cost, probe.initial_scheme)
                for schedule, cost in zip(schedules, costs)
            ]
        else:
            observations = [
                self.observe(make_algorithm(), schedule)
                for schedule in schedules
            ]
        return RatioReport(name or "unknown", tuple(observations))


def measure_ratios(
    make_algorithm: Callable[[], OnlineDOM],
    schedules: Sequence[Schedule],
    cost_model: CostModel,
    threshold: int = 2,
    exact_limit: int = 14,
) -> RatioReport:
    """One-shot convenience wrapper around :class:`CompetitivenessHarness`."""
    harness = CompetitivenessHarness(cost_model, threshold, exact_limit)
    return harness.measure(make_algorithm, schedules)


def compare_algorithms(
    factories: dict[str, Callable[[], OnlineDOM]],
    schedules: Sequence[Schedule],
    cost_model: CostModel,
    threshold: int = 2,
    exact_limit: int = 14,
) -> dict[str, RatioReport]:
    """Measure several algorithms on the same schedule suite."""
    harness = CompetitivenessHarness(cost_model, threshold, exact_limit)
    return {
        name: harness.measure(factory, schedules)
        for name, factory in factories.items()
    }
