"""The Dynamic Allocation (DA) algorithm of the paper.

Paper §2 / §4.2.2.  DA selects a priori a set ``F`` of ``t - 1``
processors and a processor ``p`` outside ``F``; the initial allocation
scheme is ``F ∪ {p}``.  At any point in time the processors of ``F``
hold the latest version of the object.

* A read by a *data processor* (a member of the current allocation
  scheme) executes locally.
* A read by a non-data processor ``q`` is served by a member ``u`` of
  ``F`` and is turned into a **saving-read**: ``q`` stores the object
  in its local database and joins the allocation scheme, and ``u``
  records ``q`` in its *join-list*.
* A write by ``j ∈ F ∪ {p}`` has execution set ``F ∪ {p}``; a write by
  any other ``j`` has execution set ``F ∪ {j}``.  Either way the write
  invalidates every other copy (the scheme collapses to the execution
  set); the invalidate control messages travel along the join-lists.

Theorems 2-4: DA is ``(2 + 2 c_c)``-competitive in the stationary
model, ``(2 + c_c)``-competitive when ``c_d > 1``, and
``(2 + 3 c_c / c_d)``-competitive in the mobile model — in which SA is
not competitive at all.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.base import OnlineDOM
from repro.exceptions import ConfigurationError
from repro.model.request import ExecutedRequest, Request
from repro.types import ProcessorId, ProcessorSet, processor_set


class DynamicAllocation(OnlineDOM):
    """Save-on-read / invalidate-on-write dynamic replication.

    Parameters
    ----------
    initial_scheme:
        The initial allocation scheme ``F ∪ {p}`` (size ``t``).
    primary:
        The distinguished processor ``p``.  Defaults to the largest id
        in the initial scheme; every other member forms ``F``.  In a
        mobile-computing deployment ``F`` is naturally the base-station
        processor and ``p`` a mobile host (paper §2).
    """

    name = "DA"

    def __init__(
        self,
        initial_scheme: Iterable[ProcessorId],
        primary: Optional[ProcessorId] = None,
        threshold: Optional[int] = None,
    ) -> None:
        super().__init__(initial_scheme, threshold)
        scheme = self.initial_scheme
        if primary is None:
            primary = max(scheme)
        if primary not in scheme:
            raise ConfigurationError(
                f"primary processor {primary} is not in the initial "
                f"scheme {sorted(scheme)}"
            )
        self._primary: ProcessorId = primary
        self._core: ProcessorSet = scheme - {primary}
        if not self._core:
            raise ConfigurationError(
                "F would be empty; the initial scheme must have at least "
                "two processors (t >= 2)"
            )
        self._server: ProcessorId = min(self._core)
        self._join_lists: dict[ProcessorId, set[ProcessorId]] = {
            member: set() for member in self._core
        }

    # -- structural accessors -------------------------------------------------

    @property
    def core(self) -> ProcessorSet:
        """The permanent replica set ``F`` (size ``t - 1``)."""
        return self._core

    @property
    def primary(self) -> ProcessorId:
        """The distinguished processor ``p``."""
        return self._primary

    def join_list(self, member: ProcessorId) -> ProcessorSet:
        """The join-list of a member of ``F``."""
        if member not in self._core:
            raise ConfigurationError(f"{member} is not a member of F")
        return processor_set(self._join_lists[member])

    # -- the online step ------------------------------------------------------

    def decide(self, request: Request) -> ExecutedRequest:
        if request.is_read:
            if request.processor in self.current_scheme:
                return ExecutedRequest(request, frozenset({request.processor}))
            return ExecutedRequest(
                request, frozenset({self._server}), saving=True
            )
        if request.processor in self._core | {self._primary}:
            execution_set = self._core | {self._primary}
        else:
            execution_set = self._core | {request.processor}
        return ExecutedRequest(request, execution_set)

    def observe(self, executed: ExecutedRequest) -> None:
        if executed.is_saving_read:
            # The serving core member (the execution set is a singleton
            # inside F) records the joiner on its join-list.
            (server,) = executed.execution_set
            self._join_lists[server].add(executed.processor)
        elif executed.is_write:
            for join_list in self._join_lists.values():
                join_list.clear()

    def _reset_extra_state(self) -> None:
        self._join_lists = {member: set() for member in self._core}
