"""Beam-search bound on the offline optimum for large instances.

The exact DP of :mod:`repro.core.offline_optimal` keeps *every*
reachable allocation scheme — exponential in the processor count.  For
instances beyond its limit, this module keeps only the ``beam_width``
cheapest schemes after each request.  Restricting the state space can
only discard optimal continuations, so the result is a **sound upper
bound** on OPT's cost, produced together with the witness allocation
schedule that achieves it (a real, legal, t-available schedule — i.e.
also a concrete offline strategy).

Two restrictions keep each step near-linear: the beam itself, and a
*structured* write-target set (keep the scheme, join the writer, shrink
to the writer plus fillers, or replicate everywhere on tiny universes)
instead of all ``2^n`` execution sets — shapes that contain the
homogeneous optimum's moves on typical schedules, but not provably
always, which is exactly why the result is only an upper bound.

Combined with the linear-time lower bound of
:mod:`repro.core.offline_bounds`, large instances get a two-sided
sandwich::

    optimal_cost_lower_bound(...)  <=  OPT  <=  BeamOptimal(...).cost

and the harness can report ratio *intervals* instead of single points
when exactness is out of reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.core.offline_bounds import optimal_cost_lower_bound
from repro.core.offline_optimal import OptimalResult
from repro.exceptions import ConfigurationError
from repro.model.allocation import AllocationSchedule
from repro.model.cost_model import CostModel
from repro.model.request import ExecutedRequest
from repro.model.schedule import Schedule
from repro.types import ProcessorSet, processor_set


@dataclass(frozen=True)
class OptimalSandwich:
    """Two-sided bounds on OPT for one instance."""

    lower: float
    upper: float
    witness: AllocationSchedule

    def contains(self, value: float, slack: float = 1e-9) -> bool:
        return self.lower - slack <= value <= self.upper + slack


class BeamOptimal:
    """Beam-limited offline DP: an upper bound on OPT with a witness."""

    def __init__(
        self,
        cost_model: CostModel,
        threshold: int = 2,
        beam_width: int = 64,
        max_processors: int = 24,
    ) -> None:
        if threshold < 2:
            raise ConfigurationError("t must be at least 2")
        if beam_width < 1:
            raise ConfigurationError("beam width must be positive")
        self.cost_model = cost_model
        self.threshold = threshold
        self.beam_width = beam_width
        self.max_processors = max_processors

    def solve(
        self, schedule: Schedule, initial_scheme: Iterable[int]
    ) -> OptimalResult:
        initial = processor_set(initial_scheme)
        if len(initial) < self.threshold:
            raise ConfigurationError("initial scheme smaller than t")
        universe = sorted(initial | schedule.processors)
        if len(universe) > self.max_processors:
            raise ConfigurationError(
                f"universe of {len(universe)} processors exceeds "
                f"{self.max_processors}"
            )
        index = {proc: i for i, proc in enumerate(universe)}
        n = len(universe)
        t = self.threshold
        c_io, c_c, c_d = (
            self.cost_model.c_io,
            self.cost_model.c_c,
            self.cost_model.c_d,
        )

        def set_of(mask: int) -> ProcessorSet:
            return frozenset(universe[i] for i in range(n) if mask >> i & 1)

        initial_mask = 0
        for member in initial:
            initial_mask |= 1 << index[member]

        dp: Dict[int, float] = {initial_mask: 0.0}
        parents: List[Dict[int, tuple[int, ExecutedRequest]]] = []

        for request in schedule:
            new_dp: Dict[int, float] = {}
            step_parents: Dict[int, tuple[int, ExecutedRequest]] = {}
            bit = 1 << index[request.processor]
            if request.is_read:
                for mask, cost in dp.items():
                    if mask & bit:
                        executed = ExecutedRequest(
                            request, frozenset({request.processor})
                        )
                        self._relax(
                            new_dp, step_parents, mask,
                            cost + c_io, mask, executed,
                        )
                    else:
                        server = min(set_of(mask))
                        fetch = c_c + c_io + c_d
                        executed = ExecutedRequest(request, frozenset({server}))
                        self._relax(
                            new_dp, step_parents, mask,
                            cost + fetch, mask, executed,
                        )
                        saving = ExecutedRequest(
                            request, frozenset({server}), saving=True
                        )
                        self._relax(
                            new_dp, step_parents, mask | bit,
                            cost + fetch + c_io, mask, saving,
                        )
            else:
                # Beam write transitions: instead of all 2^n targets,
                # consider structured candidates — keep / shrink-to-best
                # around the writer — which contain the homogeneous
                # optimum's shapes.
                for mask, cost in dp.items():
                    for target in self._write_targets(mask, bit, n, t):
                        stale = mask & ~target
                        if target & bit:
                            step = (
                                stale.bit_count() * c_c
                                + (target.bit_count() - 1) * c_d
                                + target.bit_count() * c_io
                            )
                        else:
                            step = (
                                (stale & ~bit).bit_count() * c_c
                                + target.bit_count() * (c_d + c_io)
                            )
                        self._relax(
                            new_dp, step_parents, target, cost + step, mask,
                            ExecutedRequest(request, set_of(target)),
                        )
            dp = self._prune(new_dp)
            step_parents = {
                state: parent
                for state, parent in step_parents.items()
                if state in dp
            }
            parents.append(step_parents)

        best_mask = min(dp, key=lambda mask: (dp[mask], mask))
        steps: List[ExecutedRequest] = []
        mask = best_mask
        for step_parents in reversed(parents):
            prev, executed = step_parents[mask]
            steps.append(executed)
            mask = prev
        steps.reverse()
        allocation = AllocationSchedule(initial, tuple(steps))
        return OptimalResult(dp[best_mask], allocation)

    def _write_targets(self, mask: int, writer_bit: int, n: int, t: int):
        """Candidate execution sets for a write from scheme ``mask``.

        Structured shapes covering the homogeneous optimum's moves:
        keep the scheme (±writer), shrink to the writer plus the
        lowest-bit fillers, or the full universe when small.
        """
        full = (1 << n) - 1
        candidates = set()

        def pad(base: int) -> int:
            padded = base
            position = 0
            while padded.bit_count() < t and position < n:
                padded |= 1 << position
                position += 1
            return padded

        candidates.add(pad(mask | writer_bit))          # join the scheme
        candidates.add(pad(writer_bit))                  # shrink to writer
        candidates.add(pad(mask))                        # keep as-is
        if n <= 6:
            candidates.add(full)                         # replicate everywhere
        return [
            candidate for candidate in candidates
            if candidate.bit_count() >= t
        ]

    def _prune(self, dp: Dict[int, float]) -> Dict[int, float]:
        if len(dp) <= self.beam_width:
            return dp
        kept = sorted(dp.items(), key=lambda item: (item[1], item[0]))
        return dict(kept[: self.beam_width])

    @staticmethod
    def _relax(new_dp, step_parents, state, cost, prev_state, executed):
        bound = new_dp.get(state)
        if bound is None or cost < bound:
            new_dp[state] = cost
            step_parents[state] = (prev_state, executed)


def optimal_sandwich(
    schedule: Schedule,
    initial_scheme: Iterable[int],
    cost_model: CostModel,
    threshold: int = 2,
    beam_width: int = 64,
) -> OptimalSandwich:
    """Two-sided OPT bounds for instances of any size."""
    beam = BeamOptimal(cost_model, threshold, beam_width)
    result = beam.solve(schedule, initial_scheme)
    lower = optimal_cost_lower_bound(
        schedule, initial_scheme, cost_model, threshold
    )
    return OptimalSandwich(lower, result.cost, result.allocation)
