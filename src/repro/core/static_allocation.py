"""The Static Allocation (SA) algorithm: read-one-write-all.

Paper §2 / §4.2.1: *"At all times, SA keeps a fixed allocation scheme
Q, which is of size t, and SA performs read-one-write-all."*

* A read by a processor in ``Q`` executes locally (execution set
  ``{i}``).
* A read by a processor outside ``Q`` is served by some member of ``Q``
  (execution set is a singleton inside ``Q``); the read is **not**
  turned into a saving-read, so the scheme never changes.
* Every write is propagated to all of ``Q`` (execution set ``Q``).

Theorem 1: SA is ``(1 + c_c + c_d)``-competitive in the stationary
model, and this factor is tight (Proposition 1).  Proposition 3: in the
mobile model SA is not competitive at all.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.base import OnlineDOM
from repro.model.request import ExecutedRequest, Request
from repro.types import ProcessorId


class StaticAllocation(OnlineDOM):
    """Read-one-write-all over a fixed allocation scheme ``Q``.

    The member of ``Q`` that serves foreign reads is chosen
    deterministically (the smallest id) so runs are reproducible; the
    paper allows an arbitrary member and the cost model is homogeneous,
    so the choice does not affect any cost.
    """

    name = "SA"

    def __init__(
        self,
        initial_scheme: Iterable[ProcessorId],
        threshold: Optional[int] = None,
    ) -> None:
        super().__init__(initial_scheme, threshold)
        self._server: ProcessorId = min(self.initial_scheme)

    @property
    def scheme(self):
        """The fixed scheme ``Q`` (alias for the initial scheme)."""
        return self.initial_scheme

    def decide(self, request: Request) -> ExecutedRequest:
        if request.is_read:
            if request.processor in self.initial_scheme:
                return ExecutedRequest(request, frozenset({request.processor}))
            return ExecutedRequest(request, frozenset({self._server}))
        return ExecutedRequest(request, self.initial_scheme)
