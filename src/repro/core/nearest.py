"""SA and DA variants for heterogeneous networks (paper §6 extension).

In a homogeneous system, *which* member of the scheme serves a foreign
read is irrelevant; with per-link prices it matters.  These variants
keep the paper's policies but make every server choice price-aware:

* :class:`NearestServerStatic` — read-one-write-all where each reader
  fetches from its cheapest member of ``Q``;
* :class:`NearestServerDynamic` — DA where each foreign reader is
  served (and recorded) by its cheapest member of ``F``.

Both degenerate to the originals under constant prices (tested), so the
competitive guarantees carry over to that special case; under genuinely
heterogeneous prices they are natural heuristics whose cost the
heterogeneous offline optimum
(:mod:`repro.core.heterogeneous_optimal`) can audit.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.model.heterogeneous import HeterogeneousCostModel
from repro.model.request import ExecutedRequest, Request
from repro.types import ProcessorId


class NearestServerStatic(StaticAllocation):
    """SA with price-aware server selection."""

    name = "SA-nearest"

    def __init__(
        self,
        initial_scheme: Iterable[ProcessorId],
        costs: HeterogeneousCostModel,
        threshold: Optional[int] = None,
    ) -> None:
        super().__init__(initial_scheme, threshold)
        self.costs = costs

    def decide(self, request: Request) -> ExecutedRequest:
        if request.is_read and request.processor not in self.initial_scheme:
            server = self.costs.nearest_server(
                request.processor, self.initial_scheme
            )
            return ExecutedRequest(request, frozenset({server}))
        return super().decide(request)


class NearestServerDynamic(DynamicAllocation):
    """DA with price-aware core-server selection for saving-reads."""

    name = "DA-nearest"

    def __init__(
        self,
        initial_scheme: Iterable[ProcessorId],
        costs: HeterogeneousCostModel,
        primary: Optional[ProcessorId] = None,
        threshold: Optional[int] = None,
    ) -> None:
        super().__init__(initial_scheme, primary, threshold)
        self.costs = costs

    def decide(self, request: Request) -> ExecutedRequest:
        if request.is_read and request.processor not in self.current_scheme:
            server = self.costs.nearest_server(request.processor, self.core)
            return ExecutedRequest(
                request, frozenset({server}), saving=True
            )
        return super().decide(request)
