"""Algorithm registry: build DOM algorithms by name.

The benchmark harness and the examples refer to algorithms by short
names (``"SA"``, ``"DA"``, ``"CDDR"``, ``"CONV"``, ``"CACHE"``); this
module centralizes construction so parameter conventions stay in one
place.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.base import OnlineDOM
from repro.core.caching import WriteInvalidationCaching
from repro.core.cddr import SkiRentalReplication
from repro.core.convergent import ConvergentAllocation
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.model.cost_model import CostModel
from repro.types import ProcessorId

AlgorithmFactory = Callable[[], OnlineDOM]


def make_algorithm(
    name: str,
    initial_scheme: Iterable[ProcessorId],
    cost_model: Optional[CostModel] = None,
    **options,
) -> OnlineDOM:
    """Construct a DOM algorithm by its short name.

    ``cost_model`` is required only by algorithms whose policy consults
    prices (currently the convergent baseline).
    """
    key = name.strip().upper()
    scheme = frozenset(initial_scheme)
    if key == "SA":
        return StaticAllocation(scheme, **options)
    if key == "DA":
        return DynamicAllocation(scheme, **options)
    if key == "CDDR":
        return SkiRentalReplication(scheme, **options)
    if key == "CACHE":
        return WriteInvalidationCaching(scheme, **options)
    if key == "CONV":
        if cost_model is None:
            raise ConfigurationError(
                "the convergent baseline needs a cost model"
            )
        return ConvergentAllocation(scheme, cost_model, **options)
    raise ConfigurationError(
        f"unknown algorithm {name!r}; known: SA, DA, CDDR, CACHE, CONV"
    )


def algorithm_factory(
    name: str,
    initial_scheme: Iterable[ProcessorId],
    cost_model: Optional[CostModel] = None,
    **options,
) -> AlgorithmFactory:
    """A zero-argument factory producing fresh instances (the
    competitiveness harness builds one instance per schedule)."""
    scheme = frozenset(initial_scheme)

    def build() -> OnlineDOM:
        return make_algorithm(name, scheme, cost_model, **options)

    return build


ALGORITHM_NAMES: tuple[str, ...] = ("SA", "DA", "CDDR", "CACHE", "CONV")
