"""Exact offline optimum under heterogeneous prices.

The same dynamic program as :mod:`repro.core.offline_optimal`, with the
per-pair/per-node prices of
:class:`~repro.model.heterogeneous.HeterogeneousCostModel`:

* a foreign read fetches from the *cheapest* scheme member (per-reader,
  per-server prices make the choice real);
* write transitions price each execution set member and each
  invalidated node individually, using per-writer prefix tables over
  bitmasks so a transition still costs ``O(1)`` after ``O(n 2^n)``
  precomputation per writer.

Under constant prices the result equals the homogeneous solver's
(tested), so this is a strict generalization.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.offline_optimal import OptimalResult
from repro.exceptions import ConfigurationError
from repro.model.allocation import AllocationSchedule
from repro.model.heterogeneous import HeterogeneousCostModel
from repro.model.request import ExecutedRequest
from repro.model.schedule import Schedule
from repro.types import ProcessorSet, processor_set


class HeterogeneousOfflineOptimal:
    """Minimum-cost offline DOM under per-link / per-node prices."""

    def __init__(
        self,
        costs: HeterogeneousCostModel,
        threshold: int = 2,
        max_processors: int = 10,
    ) -> None:
        if threshold < 2:
            raise ConfigurationError("t must be at least 2")
        self.costs = costs
        self.threshold = threshold
        self.max_processors = max_processors

    def solve(
        self, schedule: Schedule, initial_scheme: Iterable[int]
    ) -> OptimalResult:
        initial = processor_set(initial_scheme)
        if len(initial) < self.threshold:
            raise ConfigurationError("initial scheme smaller than t")
        universe = sorted(initial | schedule.processors)
        n = len(universe)
        if n > self.max_processors:
            raise ConfigurationError(
                f"universe of {n} processors exceeds the limit "
                f"{self.max_processors}"
            )
        index = {proc: i for i, proc in enumerate(universe)}
        t = self.threshold
        costs = self.costs

        def set_of(mask: int) -> ProcessorSet:
            return frozenset(
                universe[i] for i in range(n) if mask >> i & 1
            )

        targets = [m for m in range(1 << n) if m.bit_count() >= t]
        io_sum = self._mask_sums([costs.io(p) for p in universe], n)

        dp: Dict[int, float] = {
            sum(1 << index[p] for p in initial): 0.0
        }
        parents: List[Dict[int, tuple[int, ExecutedRequest]]] = []

        for request in schedule:
            new_dp: Dict[int, float] = {}
            step_parents: Dict[int, tuple[int, ExecutedRequest]] = {}
            if request.is_read:
                self._reads(
                    request, dp, new_dp, step_parents, universe, index
                )
            else:
                self._writes(
                    request, dp, new_dp, step_parents,
                    universe, index, targets, io_sum, set_of,
                )
            dp = new_dp
            parents.append(step_parents)

        best_mask = min(dp, key=lambda mask: (dp[mask], mask))
        steps: List[ExecutedRequest] = []
        mask = best_mask
        for step_parents in reversed(parents):
            prev, executed = step_parents[mask]
            steps.append(executed)
            mask = prev
        steps.reverse()
        allocation = AllocationSchedule(initial, tuple(steps))
        return OptimalResult(dp[best_mask], allocation)

    def optimal_cost(
        self, schedule: Schedule, initial_scheme: Iterable[int]
    ) -> float:
        return self.solve(schedule, initial_scheme).cost

    # -- transitions -----------------------------------------------------------

    @staticmethod
    def _mask_sums(values: List[float], n: int) -> List[float]:
        """sums[mask] = sum of values over the set bits of mask."""
        sums = [0.0] * (1 << n)
        for mask in range(1, 1 << n):
            low = mask & -mask
            sums[mask] = sums[mask ^ low] + values[low.bit_length() - 1]
        return sums

    def _reads(self, request, dp, new_dp, step_parents, universe, index):
        costs = self.costs
        reader = request.processor
        reader_bit = 1 << index[reader]
        relax = self._relax
        for mask, cost in dp.items():
            if mask & reader_bit:
                executed = ExecutedRequest(request, frozenset({reader}))
                relax(
                    new_dp, step_parents, mask,
                    cost + costs.io(reader), mask, executed,
                )
                continue
            members = [
                universe[i] for i in range(len(universe)) if mask >> i & 1
            ]
            server = costs.nearest_server(reader, members)
            fetch = costs.fetch_cost(reader, server)
            executed = ExecutedRequest(request, frozenset({server}))
            relax(new_dp, step_parents, mask, cost + fetch, mask, executed)
            saving = ExecutedRequest(request, frozenset({server}), saving=True)
            relax(
                new_dp, step_parents, mask | reader_bit,
                cost + fetch + costs.io(reader), mask, saving,
            )

    def _writes(
        self, request, dp, new_dp, step_parents,
        universe, index, targets, io_sum, set_of,
    ):
        costs = self.costs
        writer = request.processor
        writer_bit = 1 << index[writer]
        n = len(universe)
        data_from_writer = self._mask_sums(
            [
                0.0 if p == writer else costs.data(writer, p)
                for p in universe
            ],
            n,
        )
        control_from_writer = self._mask_sums(
            [
                0.0 if p == writer else costs.control(writer, p)
                for p in universe
            ],
            n,
        )
        relax = self._relax
        for mask, cost in dp.items():
            for target in targets:
                stale = mask & ~target & ~writer_bit
                step_cost = (
                    io_sum[target]
                    + data_from_writer[target]
                    + control_from_writer[stale]
                )
                candidate = cost + step_cost
                bound = new_dp.get(target)
                if bound is None or candidate < bound:
                    executed = ExecutedRequest(request, set_of(target))
                    relax(
                        new_dp, step_parents, target, candidate, mask, executed
                    )

    @staticmethod
    def _relax(new_dp, step_parents, state, cost, prev_state, executed):
        bound = new_dp.get(state)
        if bound is None or cost < bound:
            new_dp[state] = cost
            step_parents[state] = (prev_state, executed)
