"""Exact offline-optimal DOM via a vectorized bitmask dynamic program.

Paper §4.1 defines competitiveness against *"an offline t-available
constrained DOM algorithm that produces the minimum cost legal
allocation schedule for any input"*.  The paper never spells this
algorithm out (it exists only inside the omitted proofs); we realize it
exactly, for moderate processor counts, by dynamic programming over
allocation schemes:

* **State** — the allocation scheme (a subset of processors of size at
  least ``t``) after a prefix of the schedule, encoded as an int
  bitmask over the instance's universe (bit ``i`` stands for the
  ``i``-th smallest id — :func:`repro.types.mask_of`).
* **Read transition** — a non-saving read keeps the scheme and
  optimally uses a singleton execution set (``{i}`` if the reader is a
  data processor, else any single data processor: enlarging the
  execution set only adds cost under non-negative prices).  A
  saving-read additionally stores the object at the reader (one extra
  I/O) and moves to ``scheme ∪ {reader}``.
* **Write transition** — the new scheme equals the write's execution
  set, which may be *any* subset of size at least ``t``.  Naively this
  is ``O(4^n)`` per write (every mask to every target); we instead
  compute ``min over M of dp[M] + c_c·|M∖T|`` for *all* targets at
  once with an ``O(n·2^n)`` bit-at-a-time min-transform over dense
  numpy arrays, plus memoized per-target base costs (the
  write-formula terms that do not couple to the predecessor state).

Two further devices keep the DP honest and fast:

* **Lower-bound prune** — SA's cost (evaluated in closed form by the
  vectorized kernel, :mod:`repro.kernel`) is a sound upper bound on
  OPT, and every remaining request costs at least ``c_io`` (read) or
  ``t·c_io + (t-1)·c_d`` (write); states whose prefix cost plus the
  remaining lower bound exceed the upper bound can never complete an
  optimal schedule and are dropped.
* **Deterministic witness** — every argmin breaks cost ties toward
  the numerically smallest bitmask (and, for reads, toward the
  saving-read's smaller predecessor), so the witness allocation
  schedule is a pure function of the input rather than an artifact of
  dict iteration order.

Only processors that appear in the schedule or the initial scheme can
ever be useful scheme members (membership helps only local reads and
costs invalidations otherwise, and the cost model is homogeneous), so
the DP universe is ``initial_scheme ∪ schedule.processors``.  The state
space is exponential in that universe; a guard refuses universes above
``max_processors`` (default 14 — the vectorized transform runs a
14-processor universe in well under a second; the old per-state python
loops capped out at 12).  Cost-only solves (:meth:`optimal_cost`) keep
one ``2^n`` float array; witness solves additionally store one such
array per request for the backward reconstruction pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.kernel.compile import compile_schedule, popcount
from repro.kernel.evaluate import sa_request_costs
from repro.model.allocation import AllocationSchedule
from repro.model.cost_model import CostModel
from repro.model.request import ExecutedRequest, Request
from repro.model.schedule import Schedule
from repro.types import ProcessorSet, mask_of, processor_set, set_of_mask

#: Absolute slack added to the prune's upper bound so float noise can
#: never discard a state on the true optimal path.
_PRUNE_SLACK = 1e-9


@dataclass(frozen=True)
class OptimalResult:
    """Outcome of the offline DP: minimum cost and a witness schedule."""

    cost: float
    allocation: AllocationSchedule

    @property
    def schedule(self) -> Schedule:
        return self.allocation.schedule()


class OfflineOptimal:
    """Exact minimum-cost offline DOM algorithm (the paper's OPT).

    Parameters
    ----------
    cost_model:
        The pricing under which cost is minimized.
    threshold:
        The availability threshold ``t >= 2``.
    max_processors:
        Upper limit on the DP universe size; the state space is
        ``O(2^n)`` and each write transition ``O(n·2^n)``.
    prune:
        Apply the SA-upper-bound / suffix-lower-bound prune (on by
        default; it never changes the optimal cost, only discards
        provably hopeless states).
    """

    def __init__(
        self,
        cost_model: CostModel,
        threshold: int = 2,
        max_processors: int = 14,
        prune: bool = True,
    ) -> None:
        if threshold < 2:
            raise ConfigurationError(
                f"the availability threshold t must be at least 2, got {threshold}"
            )
        self.cost_model = cost_model
        self.threshold = threshold
        self.max_processors = max_processors
        self.prune = prune

    # -- public API -----------------------------------------------------------

    def solve(
        self,
        schedule: Schedule,
        initial_scheme: Iterable[int],
    ) -> OptimalResult:
        """Minimum cost and a witness legal, t-available allocation schedule."""
        initial, universe = self._check(schedule, initial_scheme)
        cost, allocation = self._solve(
            schedule, initial, universe, want_witness=True
        )
        assert allocation is not None
        return OptimalResult(cost, allocation)

    def optimal_cost(
        self, schedule: Schedule, initial_scheme: Iterable[int]
    ) -> float:
        """COST_OPT(I, psi): the minimum cost only (no witness memory)."""
        initial, universe = self._check(schedule, initial_scheme)
        cost, _ = self._solve(schedule, initial, universe, want_witness=False)
        return cost

    def _check(
        self, schedule: Schedule, initial_scheme: Iterable[int]
    ) -> tuple[ProcessorSet, list[int]]:
        initial = processor_set(initial_scheme)
        if len(initial) < self.threshold:
            raise ConfigurationError(
                f"initial scheme {sorted(initial)} is smaller than "
                f"t={self.threshold}"
            )
        universe = sorted(initial | schedule.processors)
        if len(universe) > self.max_processors:
            raise ConfigurationError(
                f"DP universe has {len(universe)} processors; the exact "
                f"offline optimum is limited to {self.max_processors} "
                "(use repro.core.offline_bounds for larger instances)"
            )
        return initial, universe

    # -- dynamic programming ---------------------------------------------------

    def _solve(
        self,
        schedule: Schedule,
        initial: ProcessorSet,
        universe: list[int],
        want_witness: bool,
    ) -> tuple[float, Optional[AllocationSchedule]]:
        n = len(universe)
        t = self.threshold
        c_io = self.cost_model.c_io
        c_c = self.cost_model.c_c
        c_d = self.cost_model.c_d
        fetch = c_c + c_io + c_d

        size = 1 << n
        masks = np.arange(size, dtype=np.int64)
        pop = popcount(masks)
        invalid_target = pop < t
        # Write base costs, memoized once per instance: the |X|-coupled
        # terms of the §3.2/§3.3 write formula for a writer inside /
        # outside the execution set.  Only the invalidation term
        # (|stale|·c_c) couples to the predecessor state.
        base_in = pop * c_io + (pop - 1) * c_d
        base_out = pop * (c_io + c_d)

        suffix_bound, upper_bound = self._prune_bounds(schedule, initial)

        initial_mask = mask_of(initial, universe)
        dp = np.full(size, np.inf)
        dp[initial_mask] = 0.0
        history: List[np.ndarray] = []

        for step, request in enumerate(schedule):
            if want_witness:
                history.append(dp)
            bit_index = universe.index(request.processor)
            bit = 1 << bit_index
            if request.is_read:
                dp = self._read_step(dp, masks, bit, c_io, fetch)
            else:
                dp = self._write_step(
                    dp, masks, bit, n, c_c, base_in, base_out, invalid_target
                )
            if self.prune and np.isfinite(upper_bound):
                hopeless = (
                    dp + suffix_bound[step + 1] > upper_bound + _PRUNE_SLACK
                )
                dp = np.where(hopeless, np.inf, dp)

        best_mask = int(np.argmin(dp))  # first minimum == smallest mask
        best_cost = float(dp[best_mask])
        if not want_witness:
            return best_cost, None
        steps = self._reconstruct(
            schedule, history, best_mask, universe, masks,
            c_io, c_c, fetch, base_in, base_out,
        )
        allocation = AllocationSchedule(initial, tuple(steps))
        return best_cost, allocation

    def _prune_bounds(
        self, schedule: Schedule, initial: ProcessorSet
    ) -> tuple[np.ndarray, float]:
        """Suffix lower bounds per position and SA's cost as an upper bound.

        ``suffix_bound[k]`` under-approximates the cheapest possible
        cost of requests ``k..end`` from *any* state: a read costs at
        least one local I/O and a write at least ``t`` I/Os plus
        ``t - 1`` data messages (execution sets have size >= t).  SA
        over the full initial scheme is legal and t-available, so its
        closed-form kernel cost bounds OPT from above.
        """
        t = self.threshold
        c_io, c_d = self.cost_model.c_io, self.cost_model.c_d
        lb_read = c_io
        lb_write = t * c_io + (t - 1) * c_d
        suffix = np.zeros(len(schedule) + 1)
        running = 0.0
        for position in range(len(schedule) - 1, -1, -1):
            running += lb_write if schedule[position].is_write else lb_read
            suffix[position] = running
        if not self.prune or len(schedule) == 0:
            return suffix, np.inf
        batch = compile_schedule(schedule, initial)
        costs = sa_request_costs(batch, initial, self.cost_model, t)
        return suffix, float(costs.sum())

    @staticmethod
    def _read_step(
        dp: np.ndarray, masks: np.ndarray, bit: int, c_io: float, fetch: float
    ) -> np.ndarray:
        has_reader = (masks & bit) != 0
        # Member: local read.  Non-member: on-demand non-saving fetch.
        new_dp = np.where(has_reader, dp + c_io, dp + fetch)
        # Saving-read: mask -> mask | bit at one extra I/O.  Sources
        # map injectively onto targets, so a plain minimum suffices.
        sources = ~has_reader
        targets = masks[sources] | bit
        saving = (dp[sources] + fetch) + c_io
        new_dp[targets] = np.minimum(new_dp[targets], saving)
        return new_dp

    @staticmethod
    def _write_step(
        dp: np.ndarray,
        masks: np.ndarray,
        bit: int,
        n: int,
        c_c: float,
        base_in: np.ndarray,
        base_out: np.ndarray,
        invalid_target: np.ndarray,
    ) -> np.ndarray:
        """All write transitions at once via the O(n·2^n) min-transform.

        ``transform[T] = min over M of dp[M] + c_c·|M ∖ T|`` — bits of
        the predecessor outside the target each cost one invalidation.
        Processing one bit position at a time: a target containing bit
        ``b`` absorbs predecessors with or without ``b`` for free; a
        target without it pays ``c_c`` to absorb predecessors with it.
        A writer outside the target is never invalidated, which is the
        same as reading the transform at ``T | writer_bit``.
        """
        transform = dp.copy()
        for position in range(n):
            shaped = transform.reshape(-1, 2, 1 << position)
            low = shaped[:, 0, :]
            high = shaped[:, 1, :]
            new_low = np.minimum(low, high + c_c)
            new_high = np.minimum(high, low)
            transform = np.stack([new_low, new_high], axis=1).reshape(-1)
        writer_in_target = (masks & bit) != 0
        new_dp = np.where(
            writer_in_target,
            transform + base_in,
            transform[masks | bit] + base_out,
        )
        new_dp[invalid_target] = np.inf
        return new_dp

    # -- witness reconstruction ------------------------------------------------

    def _reconstruct(
        self,
        schedule: Schedule,
        history: List[np.ndarray],
        final_mask: int,
        universe: list[int],
        masks: np.ndarray,
        c_io: float,
        c_c: float,
        fetch: float,
        base_in: np.ndarray,
        base_out: np.ndarray,
    ) -> List[ExecutedRequest]:
        """Walk backward from the best final mask, recomputing each
        step's candidate costs and taking deterministic argmins
        (smallest predecessor mask on ties)."""
        steps: List[ExecutedRequest] = []
        mask = final_mask
        for position in range(len(schedule) - 1, -1, -1):
            request = schedule[position]
            dp_prev = history[position]
            mask, executed = self._reconstruct_step(
                request, dp_prev, mask, universe, masks,
                c_io, c_c, fetch, base_in, base_out,
            )
            steps.append(executed)
        steps.reverse()
        return steps

    def _reconstruct_step(
        self,
        request: Request,
        dp_prev: np.ndarray,
        mask: int,
        universe: list[int],
        masks: np.ndarray,
        c_io: float,
        c_c: float,
        fetch: float,
        base_in: np.ndarray,
        base_out: np.ndarray,
    ) -> tuple[int, ExecutedRequest]:
        bit = 1 << universe.index(request.processor)
        if request.is_read:
            reader = request.processor
            if mask & bit:
                saving_pred = mask & ~bit
                saving_value = (dp_prev[saving_pred] + fetch) + c_io
                local_value = dp_prev[mask] + c_io
                # Tie-break toward the smaller predecessor mask — the
                # saving-read's source (mask minus the reader's bit).
                if saving_value <= local_value:
                    server = min(set_of_mask(saving_pred, universe))
                    executed = ExecutedRequest(
                        request, frozenset({server}), saving=True
                    )
                    return saving_pred, executed
                executed = ExecutedRequest(request, frozenset({reader}))
                return mask, executed
            server = min(set_of_mask(mask, universe))
            executed = ExecutedRequest(request, frozenset({server}))
            return mask, executed
        # Write: the scheme after the request IS the execution set; any
        # predecessor is possible, priced by the invalidation count.
        if mask & bit:
            stale = popcount(masks & ~mask)
            candidates = dp_prev + (base_in[mask] + stale * c_c)
        else:
            stale = popcount(masks & ~mask & ~bit)
            candidates = dp_prev + (base_out[mask] + stale * c_c)
        predecessor = int(np.argmin(candidates))  # smallest mask on ties
        executed = ExecutedRequest(request, set_of_mask(mask, universe))
        return predecessor, executed


def optimal_cost(
    schedule: Schedule,
    initial_scheme: Iterable[int],
    cost_model: CostModel,
    threshold: int = 2,
    max_processors: int = 14,
) -> float:
    """Convenience wrapper: COST of the optimal offline DOM algorithm."""
    solver = OfflineOptimal(cost_model, threshold, max_processors)
    return solver.optimal_cost(schedule, initial_scheme)


def optimal_allocation(
    schedule: Schedule,
    initial_scheme: Iterable[int],
    cost_model: CostModel,
    threshold: int = 2,
    max_processors: int = 14,
) -> AllocationSchedule:
    """Convenience wrapper: a witness optimal allocation schedule."""
    solver = OfflineOptimal(cost_model, threshold, max_processors)
    return solver.solve(schedule, initial_scheme).allocation
