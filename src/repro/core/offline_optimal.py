"""Exact offline-optimal DOM via dynamic programming.

Paper §4.1 defines competitiveness against *"an offline t-available
constrained DOM algorithm that produces the minimum cost legal
allocation schedule for any input"*.  The paper never spells this
algorithm out (it exists only inside the omitted proofs); we realize it
exactly, for moderate processor counts, by dynamic programming over
allocation schemes:

* **State** — the allocation scheme (a subset of processors of size at
  least ``t``) after a prefix of the schedule.
* **Read transition** — a non-saving read keeps the scheme and
  optimally uses a singleton execution set (``{i}`` if the reader is a
  data processor, else any single data processor: enlarging the
  execution set only adds cost under non-negative prices).  A
  saving-read additionally stores the object at the reader (one extra
  I/O) and moves to ``scheme ∪ {reader}``.
* **Write transition** — the new scheme equals the write's execution
  set, which may be *any* subset of size at least ``t``; we enumerate
  all of them, pricing the §3.2/§3.3 write formula.

Only processors that appear in the schedule or the initial scheme can
ever be useful scheme members (membership helps only local reads and
costs invalidations otherwise, and the cost model is homogeneous), so
the DP universe is ``initial_scheme ∪ schedule.processors``.  The state
space is exponential in that universe; a guard refuses universes above
``max_processors`` (default 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import ConfigurationError
from repro.model.allocation import AllocationSchedule
from repro.model.cost_model import CostModel
from repro.model.request import ExecutedRequest
from repro.model.schedule import Schedule
from repro.types import ProcessorSet, processor_set


@dataclass(frozen=True)
class OptimalResult:
    """Outcome of the offline DP: minimum cost and a witness schedule."""

    cost: float
    allocation: AllocationSchedule

    @property
    def schedule(self) -> Schedule:
        return self.allocation.schedule()


class OfflineOptimal:
    """Exact minimum-cost offline DOM algorithm (the paper's OPT).

    Parameters
    ----------
    cost_model:
        The pricing under which cost is minimized.
    threshold:
        The availability threshold ``t >= 2``.
    max_processors:
        Upper limit on the DP universe size; the state space is
        ``O(2^n)`` and each write transition is ``O(4^n)``.
    """

    def __init__(
        self,
        cost_model: CostModel,
        threshold: int = 2,
        max_processors: int = 12,
    ) -> None:
        if threshold < 2:
            raise ConfigurationError(
                f"the availability threshold t must be at least 2, got {threshold}"
            )
        self.cost_model = cost_model
        self.threshold = threshold
        self.max_processors = max_processors

    # -- public API -----------------------------------------------------------

    def solve(
        self,
        schedule: Schedule,
        initial_scheme: Iterable[int],
    ) -> OptimalResult:
        """Minimum cost and a witness legal, t-available allocation schedule."""
        initial = processor_set(initial_scheme)
        if len(initial) < self.threshold:
            raise ConfigurationError(
                f"initial scheme {sorted(initial)} is smaller than "
                f"t={self.threshold}"
            )
        universe = sorted(initial | schedule.processors)
        if len(universe) > self.max_processors:
            raise ConfigurationError(
                f"DP universe has {len(universe)} processors; the exact "
                f"offline optimum is limited to {self.max_processors} "
                "(use repro.core.offline_bounds for larger instances)"
            )
        return self._solve(schedule, initial, universe)

    def optimal_cost(
        self, schedule: Schedule, initial_scheme: Iterable[int]
    ) -> float:
        """COST_OPT(I, psi): the minimum cost only."""
        return self.solve(schedule, initial_scheme).cost

    # -- dynamic programming -------------------------------------------------------

    def _solve(
        self,
        schedule: Schedule,
        initial: ProcessorSet,
        universe: list[int],
    ) -> OptimalResult:
        index_of = {proc: pos for pos, proc in enumerate(universe)}
        n = len(universe)
        t = self.threshold
        c_io = self.cost_model.c_io
        c_c = self.cost_model.c_c
        c_d = self.cost_model.c_d

        def mask_of(members: Iterable[int]) -> int:
            mask = 0
            for member in members:
                mask |= 1 << index_of[member]
            return mask

        def set_of(mask: int) -> ProcessorSet:
            return frozenset(
                universe[pos] for pos in range(n) if mask >> pos & 1
            )

        initial_mask = mask_of(initial)
        targets = [
            mask for mask in range(1 << n) if mask.bit_count() >= t
        ]
        # Cost of a write execution set X, excluding the invalidation
        # (state-coupled) term, for a writer inside / outside X.
        base_in = {
            mask: mask.bit_count() * c_io + (mask.bit_count() - 1) * c_d
            for mask in targets
        }
        base_out = {
            mask: mask.bit_count() * (c_io + c_d) for mask in targets
        }

        # dp maps scheme-mask -> best cost of the processed prefix;
        # parents[step][mask] = (previous mask, executed request).
        dp: dict[int, float] = {initial_mask: 0.0}
        parents: list[dict[int, tuple[int, ExecutedRequest]]] = []

        for request in schedule:
            new_dp: dict[int, float] = {}
            step_parents: dict[int, tuple[int, ExecutedRequest]] = {}
            if request.is_read:
                self._read_transitions(
                    request, dp, new_dp, step_parents,
                    index_of, set_of, c_io, c_c, c_d,
                )
            else:
                self._write_transitions(
                    request, dp, new_dp, step_parents,
                    index_of, set_of, targets, base_in, base_out, c_c,
                )
            dp = new_dp
            parents.append(step_parents)

        best_mask = min(dp, key=lambda mask: (dp[mask], mask))
        best_cost = dp[best_mask]
        steps = self._reconstruct(parents, best_mask)
        allocation = AllocationSchedule(initial, tuple(steps))
        return OptimalResult(best_cost, allocation)

    def _read_transitions(
        self, request, dp, new_dp, step_parents,
        index_of, set_of, c_io, c_c, c_d,
    ) -> None:
        reader = request.processor
        reader_bit = 1 << index_of[reader]
        for mask, cost in dp.items():
            if mask & reader_bit:
                executed = ExecutedRequest(request, frozenset({reader}))
                self._relax(
                    new_dp, step_parents, mask, cost + c_io, mask, executed
                )
            else:
                server = min(set_of(mask))
                fetch = c_c + c_io + c_d
                executed = ExecutedRequest(request, frozenset({server}))
                self._relax(
                    new_dp, step_parents, mask, cost + fetch, mask, executed
                )
                saving = ExecutedRequest(
                    request, frozenset({server}), saving=True
                )
                self._relax(
                    new_dp,
                    step_parents,
                    mask | reader_bit,
                    cost + fetch + c_io,
                    mask,
                    saving,
                )

    def _write_transitions(
        self, request, dp, new_dp, step_parents,
        index_of, set_of, targets, base_in, base_out, c_c,
    ) -> None:
        writer = request.processor
        writer_bit = 1 << index_of[writer]
        for mask, cost in dp.items():
            for target in targets:
                stale = mask & ~target
                if target & writer_bit:
                    step_cost = base_in[target] + stale.bit_count() * c_c
                else:
                    step_cost = (
                        base_out[target]
                        + (stale & ~writer_bit).bit_count() * c_c
                    )
                candidate = cost + step_cost
                bound = new_dp.get(target)
                if bound is None or candidate < bound:
                    executed = ExecutedRequest(request, set_of(target))
                    self._relax(
                        new_dp, step_parents, target, candidate, mask, executed
                    )

    @staticmethod
    def _relax(new_dp, step_parents, state, cost, prev_state, executed) -> None:
        bound = new_dp.get(state)
        if bound is None or cost < bound:
            new_dp[state] = cost
            step_parents[state] = (prev_state, executed)

    @staticmethod
    def _reconstruct(parents, final_mask) -> list[ExecutedRequest]:
        steps: list[ExecutedRequest] = []
        mask = final_mask
        for step_parents in reversed(parents):
            prev_mask, executed = step_parents[mask]
            steps.append(executed)
            mask = prev_mask
        steps.reverse()
        return steps


def optimal_cost(
    schedule: Schedule,
    initial_scheme: Iterable[int],
    cost_model: CostModel,
    threshold: int = 2,
    max_processors: int = 12,
) -> float:
    """Convenience wrapper: COST of the optimal offline DOM algorithm."""
    solver = OfflineOptimal(cost_model, threshold, max_processors)
    return solver.optimal_cost(schedule, initial_scheme)


def optimal_allocation(
    schedule: Schedule,
    initial_scheme: Iterable[int],
    cost_model: CostModel,
    threshold: int = 2,
    max_processors: int = 12,
) -> AllocationSchedule:
    """Convenience wrapper: a witness optimal allocation schedule."""
    solver = OfflineOptimal(cost_model, threshold, max_processors)
    return solver.solve(schedule, initial_scheme).allocation
