"""A CDDR-style competitive dynamic replication baseline.

Paper §5.1 contrasts DA with the authors' earlier CDDR algorithm
("A Competitive Dynamic Data Replication Algorithm", ICDE 1993), which
was designed for a model *without* I/O costs or availability
constraints.  The exact CDDR is not specified in this paper; we
implement a faithful-in-spirit baseline built on the classic ski-rental
idea that underlies competitive caching:

* a non-data processor joins the allocation scheme (saving-read) only
  after its ``rent_limit``-th consecutive foreign read since the last
  write — renting (on-demand fetches) before buying (a replica that a
  future write must invalidate);
* a write collapses the scheme to the core ``F ∪ {writer}`` exactly as
  DA does, so the ``t``-available constraint is respected.

With ``rent_limit = 1`` the algorithm degenerates to DA.  The baseline
exists to let the benchmark harness explore whether delaying the save
helps in the region of Figure 1 where neither SA nor DA provably wins
(the "Unknown" wedge).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.base import OnlineDOM
from repro.exceptions import ConfigurationError
from repro.model.request import ExecutedRequest, Request
from repro.types import ProcessorId, ProcessorSet


class SkiRentalReplication(OnlineDOM):
    """Join-after-k-reads dynamic replication (CDDR-flavoured baseline)."""

    name = "CDDR"

    def __init__(
        self,
        initial_scheme: Iterable[ProcessorId],
        rent_limit: int = 2,
        primary: Optional[ProcessorId] = None,
        threshold: Optional[int] = None,
    ) -> None:
        super().__init__(initial_scheme, threshold)
        if rent_limit < 1:
            raise ConfigurationError(
                f"rent_limit must be at least 1, got {rent_limit}"
            )
        scheme = self.initial_scheme
        if primary is None:
            primary = max(scheme)
        if primary not in scheme:
            raise ConfigurationError(
                f"primary processor {primary} is not in the initial scheme"
            )
        self.rent_limit = rent_limit
        self._primary = primary
        self._core: ProcessorSet = scheme - {primary}
        self._server = min(self._core)
        self._foreign_reads: dict[ProcessorId, int] = {}

    @property
    def core(self) -> ProcessorSet:
        return self._core

    @property
    def primary(self) -> ProcessorId:
        return self._primary

    def decide(self, request: Request) -> ExecutedRequest:
        if request.is_read:
            if request.processor in self.current_scheme:
                return ExecutedRequest(request, frozenset({request.processor}))
            count = self._foreign_reads.get(request.processor, 0) + 1
            saving = count >= self.rent_limit
            return ExecutedRequest(
                request, frozenset({self._server}), saving=saving
            )
        if request.processor in self._core | {self._primary}:
            execution_set = self._core | {self._primary}
        else:
            execution_set = self._core | {request.processor}
        return ExecutedRequest(request, execution_set)

    def observe(self, executed: ExecutedRequest) -> None:
        if executed.is_write:
            self._foreign_reads.clear()
        elif executed.is_saving_read:
            self._foreign_reads.pop(executed.processor, None)
        elif executed.execution_set != frozenset({executed.processor}):
            # A non-saving read served remotely: the reader rented.
            self._foreign_reads[executed.processor] = (
                self._foreign_reads.get(executed.processor, 0) + 1
            )

    def _reset_extra_state(self) -> None:
        self._foreign_reads = {}
