"""Distributed object management (DOM) algorithms: the online interface.

Paper §3.4: a DOM algorithm maps a schedule and an initial allocation
scheme to a corresponding *legal* allocation schedule.  An **online**
DOM algorithm does so through a sequence of *online steps*: each step
receives the next request, associates an execution set with it (and,
for reads, possibly turns it into a saving-read), and appends it to the
allocation schedule produced so far — without knowledge of future
requests.

:class:`OnlineDOM` is the abstract base class.  Concrete algorithms
(:class:`~repro.core.static_allocation.StaticAllocation`,
:class:`~repro.core.dynamic_allocation.DynamicAllocation`, and the
baselines) implement :meth:`OnlineDOM.decide`; the base class maintains
the current allocation scheme, validates each step's legality, and
enforces the ``t``-available constraint.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional

from repro.exceptions import (
    AvailabilityViolationError,
    ConfigurationError,
    IllegalScheduleError,
)
from repro.model.allocation import AllocationSchedule
from repro.model.costs import next_scheme
from repro.model.request import ExecutedRequest, Request
from repro.model.schedule import Schedule
from repro.types import ProcessorSet, processor_set


class OnlineDOM(abc.ABC):
    """An online, ``t``-available constrained DOM algorithm.

    Parameters
    ----------
    initial_scheme:
        The set of processors holding the object before the schedule
        begins.  Following paper §4, the algorithm is ``t``-available
        constrained with ``t = len(initial_scheme)`` unless an explicit
        ``threshold`` is given.
    threshold:
        The availability threshold ``t`` (paper §2: "the allocation
        scheme must be of size which is at least t", with ``t >= 2``).
    """

    #: Short machine-readable identifier, overridden by subclasses.
    name: str = "abstract"

    def __init__(
        self,
        initial_scheme: Iterable[int],
        threshold: Optional[int] = None,
    ) -> None:
        scheme = processor_set(initial_scheme)
        if threshold is None:
            threshold = len(scheme)
        if threshold < 2:
            raise ConfigurationError(
                f"the availability threshold t must be at least 2, got {threshold}"
            )
        if len(scheme) < threshold:
            raise ConfigurationError(
                f"initial scheme {sorted(scheme)} is smaller than t={threshold}"
            )
        self._initial_scheme: ProcessorSet = scheme
        self._threshold = threshold
        self._scheme: ProcessorSet = scheme
        self._steps: list[ExecutedRequest] = []

    # -- read-only state ---------------------------------------------------

    @property
    def initial_scheme(self) -> ProcessorSet:
        return self._initial_scheme

    @property
    def threshold(self) -> int:
        """The availability threshold ``t``."""
        return self._threshold

    @property
    def current_scheme(self) -> ProcessorSet:
        """The allocation scheme after the steps executed so far."""
        return self._scheme

    @property
    def steps_taken(self) -> int:
        return len(self._steps)

    # -- the online protocol ----------------------------------------------

    @abc.abstractmethod
    def decide(self, request: Request) -> ExecutedRequest:
        """Map ``request`` to an executed request (the *online step*).

        Implementations may consult :attr:`current_scheme` and any
        internal state accumulated from earlier steps, but never future
        requests.  They must not mutate algorithm state here; state
        transitions driven by the chosen execution happen in
        :meth:`observe`.
        """

    def observe(self, executed: ExecutedRequest) -> None:
        """Hook called after a step is validated and committed.

        Subclasses that keep state beyond the allocation scheme (e.g.
        join-lists, statistics windows) update it here.
        """

    def online_step(self, request: Request) -> ExecutedRequest:
        """Run one online step: decide, validate, commit, return."""
        executed = self.decide(request)
        if executed.request != request:
            raise IllegalScheduleError(
                f"{self.name} answered {executed.request} to request {request}"
            )
        if executed.is_read and not (executed.execution_set & self._scheme):
            raise IllegalScheduleError(
                f"{self.name} produced an illegal read: execution set "
                f"{sorted(executed.execution_set)} misses the scheme "
                f"{sorted(self._scheme)}"
            )
        new_scheme = next_scheme(executed, self._scheme)
        if len(new_scheme) < self._threshold:
            raise AvailabilityViolationError(
                f"{self.name} would shrink the scheme to "
                f"{sorted(new_scheme)} (< t={self._threshold})"
            )
        self._steps.append(executed)
        self._scheme = new_scheme
        self.observe(executed)
        return executed

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Restore the algorithm to its initial state."""
        self._scheme = self._initial_scheme
        self._steps = []
        self._reset_extra_state()

    def _reset_extra_state(self) -> None:
        """Overridden by subclasses with extra state (join-lists etc.)."""

    # -- batch execution ------------------------------------------------------

    def run(self, schedule: Schedule) -> AllocationSchedule:
        """Produce the algorithm's allocated schedule ``las_A(psi)``.

        Resets the algorithm, feeds every request of ``schedule``
        through :meth:`online_step`, and returns the resulting legal
        allocation schedule.
        """
        self.reset()
        for request in schedule:
            self.online_step(request)
        return self.allocation_schedule()

    def allocation_schedule(self) -> AllocationSchedule:
        """The allocation schedule produced by the steps so far."""
        return AllocationSchedule(self._initial_scheme, tuple(self._steps))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} t={self._threshold} "
            f"scheme={sorted(self._scheme)}>"
        )


def run_algorithm(
    algorithm: OnlineDOM, schedule: Schedule
) -> AllocationSchedule:
    """Functional wrapper around :meth:`OnlineDOM.run`."""
    return algorithm.run(schedule)
