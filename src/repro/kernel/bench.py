"""Timing harness: stepped object path vs the vectorized kernel.

Produces the numbers behind ``BENCH_kernel.json``: requests/second of
the stepped :class:`~repro.core.base.OnlineDOM` path and of the kernel
on the same batch (SA and DA separately, costs cross-checked for exact
equality), plus the wall time of the rewritten offline-optimal DP on a
full-width universe.  The CI perf-smoke job runs the same harness in
``smoke`` mode (small batch, 10-processor DP) and fails the build if
the kernel is ever *slower* than stepping; the full-size run lives in
``benchmarks/perf/`` and asserts the 5x bar.

Timings include batch compilation — the kernel's python loop over
requests is part of its cost, so the speedups reported here are
end-to-end, not eval-only.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Dict, List

from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.offline_optimal import OfflineOptimal
from repro.core.static_allocation import StaticAllocation
from repro.kernel.compile import compile_batch
from repro.kernel.dispatch import request_costs
from repro.kernel.evaluate import schedule_totals
from repro.model.cost_model import CostModel, stationary
from repro.model.request import read, write
from repro.model.schedule import Schedule
from repro.workloads.uniform import UniformWorkload

#: Full-size configuration: the acceptance batch (10k requests x 32
#: replications) and the 14-processor DP the rewrite makes practical.
FULL = {
    "batch_size": 32,
    "length": 10_000,
    "processors": 16,
    "dp_processors": 14,
    "dp_requests": 60,
}

#: Smoke configuration for CI: same shape, seconds not minutes.
SMOKE = {
    "batch_size": 8,
    "length": 400,
    "processors": 8,
    "dp_processors": 10,
    "dp_requests": 30,
}


def _dp_schedule(processors: int, requests: int, seed: int) -> Schedule:
    """A schedule whose universe is exactly ``processors`` wide: one
    read per processor up front, then a random 25%-write tail."""
    rng = random.Random(seed)
    items = [read(p) for p in range(1, processors + 1)]
    while len(items) < requests:
        issuer = rng.randint(1, processors)
        items.append(write(issuer) if rng.random() < 0.25 else read(issuer))
    return Schedule(tuple(items))


def _time_stepped(
    make_algorithm, schedules: List[Schedule], model: CostModel
) -> tuple[float, List[float]]:
    start = time.perf_counter()
    costs = [
        model.schedule_cost(make_algorithm().run(schedule))
        for schedule in schedules
    ]
    return time.perf_counter() - start, costs


def _time_kernel(
    algorithm, schedules: List[Schedule], model: CostModel
) -> tuple[float, List[float]]:
    start = time.perf_counter()
    batch = compile_batch(schedules, algorithm.initial_scheme)
    costs = schedule_totals(request_costs(algorithm, batch, model), batch.lengths)
    return time.perf_counter() - start, costs


def run_kernel_bench(
    smoke: bool = False,
    seed: int = 0,
    write_fraction: float = 0.2,
    model: CostModel | None = None,
) -> Dict:
    """Time stepped vs kernel on one batch, and the DP on a full universe.

    Returns a JSON-ready dict; ``check_passed`` is True iff the kernel
    beat the stepped path on both algorithms and all costs matched
    exactly.
    """
    config = dict(SMOKE if smoke else FULL)
    config.update(
        {"smoke": smoke, "seed": seed, "write_fraction": write_fraction}
    )
    model = model or stationary(0.2, 1.5)
    generator = UniformWorkload(
        range(1, config["processors"] + 1), config["length"], write_fraction
    )
    schedules = list(
        generator.batch_independent(config["batch_size"], root_seed=seed)
    )
    scheme = frozenset({1, 2})
    total_requests = sum(len(schedule) for schedule in schedules)

    result: Dict = {"config": config, "model": str(model), "algorithms": {}}
    all_match = True
    all_faster = True
    for name, factory in (
        ("SA", lambda: StaticAllocation(scheme)),
        ("DA", lambda: DynamicAllocation(scheme)),
    ):
        stepped_seconds, stepped_costs = _time_stepped(
            factory, schedules, model
        )
        kernel_seconds, kernel_costs = _time_kernel(
            factory(), schedules, model
        )
        match = stepped_costs == kernel_costs
        speedup = (
            stepped_seconds / kernel_seconds if kernel_seconds > 0 else float("inf")
        )
        all_match = all_match and match
        all_faster = all_faster and speedup >= 1.0
        result["algorithms"][name] = {
            "stepped_seconds": stepped_seconds,
            "kernel_seconds": kernel_seconds,
            "stepped_requests_per_second": total_requests / stepped_seconds,
            "kernel_requests_per_second": total_requests / kernel_seconds,
            "speedup": speedup,
            "costs_match": match,
        }

    dp_schedule = _dp_schedule(
        config["dp_processors"], config["dp_requests"], seed
    )
    solver = OfflineOptimal(model, max_processors=config["dp_processors"])
    start = time.perf_counter()
    dp_cost = solver.optimal_cost(dp_schedule, scheme)
    dp_seconds = time.perf_counter() - start
    result["dp"] = {
        "processors": config["dp_processors"],
        "requests": config["dp_requests"],
        "seconds": dp_seconds,
        "cost": dp_cost,
    }
    result["total_requests"] = total_requests
    result["min_speedup"] = min(
        entry["speedup"] for entry in result["algorithms"].values()
    )
    result["check_passed"] = all_match and all_faster
    return result


def write_result(result: Dict, path: str | Path) -> None:
    """Write a bench result as pretty-printed JSON."""
    Path(path).write_text(json.dumps(result, indent=2) + "\n")


def format_result(result: Dict) -> str:
    """Human-readable summary of a bench result."""
    lines = [
        f"kernel bench ({'smoke' if result['config']['smoke'] else 'full'}): "
        f"{result['config']['batch_size']} x {result['config']['length']} "
        f"requests, model {result['model']}"
    ]
    for name, entry in result["algorithms"].items():
        lines.append(
            f"  {name}: stepped {entry['stepped_requests_per_second']:,.0f} req/s, "
            f"kernel {entry['kernel_requests_per_second']:,.0f} req/s "
            f"({entry['speedup']:.1f}x, costs "
            f"{'match' if entry['costs_match'] else 'MISMATCH'})"
        )
    dp = result["dp"]
    lines.append(
        f"  DP: {dp['processors']}-processor universe, {dp['requests']} "
        f"requests in {dp['seconds']:.3f}s"
    )
    lines.append(
        f"  check {'PASSED' if result['check_passed'] else 'FAILED'} "
        f"(min speedup {result['min_speedup']:.1f}x)"
    )
    return "\n".join(lines)
