"""The trace compiler: lower schedules into flat numpy arrays.

The object model steps one :class:`~repro.model.request.Request` at a
time through python dispatch — ideal for validation and introspection,
hopeless as a hot path.  The kernel instead *compiles* a schedule (or
a whole batch of generated replications) into three arrays:

* ``procs``     — ``(B, T)`` int32, the **bit index** of the issuing
  processor within the shared universe (see below);
* ``is_write``  — ``(B, T)`` bool, the request kind;
* ``lengths``   — ``(B,)`` int64, the true length of each trace.

``B`` is the batch size and ``T`` the *horizon* (the longest trace);
shorter traces are padded with ``procs = 0`` / ``is_write = False``
and masked out by ``lengths``.  Padding never contributes cost.

**Universe and bit order.**  All traces of a batch share one
*universe*: the sorted union of every processor appearing in any trace
plus the caller's ``extra_processors`` (initial schemes, primaries).
Bit ``i`` stands for ``universe[i]`` — the convention of
:func:`repro.types.mask_of` / :func:`repro.types.set_of_mask`, so the
kernel's masks and the offline DP's masks are directly comparable.
Processor ids need not be contiguous; compilation maps them to dense
bit indices.

The compiled form is immutable and picklable, so engine workers can
receive compiled batches instead of object traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.model.schedule import Schedule
from repro.types import (
    ProcessorId,
    ProcessorUniverse,
    processor_universe,
)

#: Sanity cap on the universe: the DA evaluator materializes a
#: ``(B, T, n)`` membership tensor, so enormous universes signal a
#: mis-use (the stepped path has no such limit).
MAX_UNIVERSE = 1024


def popcount(array: np.ndarray) -> np.ndarray:
    """Per-element population count of a non-negative integer array.

    Uses :func:`numpy.bitwise_count` when available (numpy >= 2.0) and
    falls back to a byte-table sum otherwise.
    """
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(array).astype(np.int64)
    table = np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1).sum(
        axis=1
    )
    view = np.ascontiguousarray(array.astype(np.int64)).view(np.uint8)
    return table[view].reshape(*array.shape, 8).sum(axis=-1).astype(np.int64)


@dataclass(frozen=True)
class CompiledBatch:
    """A batch of schedules lowered into flat arrays.

    Instances come from :func:`compile_batch` / :func:`compile_schedule`
    and are consumed by :mod:`repro.kernel.evaluate`.
    """

    universe: ProcessorUniverse
    procs: np.ndarray
    is_write: np.ndarray
    lengths: np.ndarray

    # -- shape accessors ---------------------------------------------------

    @property
    def batch_size(self) -> int:
        return self.procs.shape[0]

    @property
    def horizon(self) -> int:
        """The padded trace length ``T`` (the longest trace)."""
        return self.procs.shape[1]

    @property
    def request_count(self) -> int:
        """Total non-padding requests across the batch."""
        return int(self.lengths.sum())

    def valid(self) -> np.ndarray:
        """``(B, T)`` bool: True at real requests, False at padding."""
        return np.arange(self.horizon)[None, :] < self.lengths[:, None]

    # -- universe mapping ---------------------------------------------------

    def bit_index(self, processor: ProcessorId) -> int:
        """The bit index of a processor id within the universe."""
        try:
            return self.universe.index(processor)
        except ValueError:
            raise ConfigurationError(
                f"processor {processor} is not in the compiled universe "
                f"{self.universe}"
            ) from None

    def bit_flags(self, processors: Iterable[ProcessorId]) -> np.ndarray:
        """``(n,)`` bool: membership of each universe bit in ``processors``."""
        flags = np.zeros(len(self.universe), dtype=bool)
        for processor in processors:
            flags[self.bit_index(processor)] = True
        return flags


def compile_batch(
    schedules: Sequence[Schedule],
    extra_processors: Iterable[ProcessorId] = (),
) -> CompiledBatch:
    """Compile a batch of schedules onto one shared universe.

    ``extra_processors`` widens the universe with ids that issue no
    request but matter to the evaluators (initial allocation schemes,
    DA's primary).  Traces of different lengths are padded to the
    longest; padding is masked by ``lengths``.
    """
    if not schedules:
        raise ConfigurationError("cannot compile an empty batch")
    universe = processor_universe(
        extra_processors, *(schedule.processors for schedule in schedules)
    )
    if len(universe) > MAX_UNIVERSE:
        raise ConfigurationError(
            f"compiled universe has {len(universe)} processors; the kernel "
            f"is limited to {MAX_UNIVERSE}"
        )
    index_of = {processor: index for index, processor in enumerate(universe)}
    batch = len(schedules)
    horizon = max(len(schedule) for schedule in schedules)
    procs = np.zeros((batch, horizon), dtype=np.int32)
    is_write = np.zeros((batch, horizon), dtype=bool)
    lengths = np.zeros(batch, dtype=np.int64)
    for row, schedule in enumerate(schedules):
        lengths[row] = len(schedule)
        for column, request in enumerate(schedule.requests):
            procs[row, column] = index_of[request.processor]
            is_write[row, column] = request.is_write
    procs.setflags(write=False)
    is_write.setflags(write=False)
    lengths.setflags(write=False)
    return CompiledBatch(universe, procs, is_write, lengths)


def compile_schedule(
    schedule: Schedule,
    extra_processors: Iterable[ProcessorId] = (),
) -> CompiledBatch:
    """Compile a single schedule (a batch of one)."""
    return compile_batch([schedule], extra_processors)
