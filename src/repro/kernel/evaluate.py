"""Vectorized SA and DA cost evaluation over compiled batches.

Both evaluators return a ``(B, T)`` float64 array of **per-request
costs** (zero at padding) that is *bit-identical*, element for
element, to pricing the stepped algorithm's allocation schedule with
:meth:`repro.model.cost_model.CostModel.request_costs` — the property
suite in ``tests/properties/test_prop_kernel.py`` asserts exact
(``==``) equality, not approximate.  That works because every
per-request price reduces to one of a handful of closed forms, each
evaluated with the *same* sequence of IEEE-754 operations as
``CostBreakdown.priced`` (``io*c_io + control*c_c + data*c_d``, left
to right).

**SA** is a pure closed form: the scheme ``Q`` never moves, so each
request's cost depends only on (kind, issuer-in-``Q``) — four scalars
selected per position.

**DA** needs the scheme at every request.  Its evolution is a
*segmented cumulative bitmask*: a write by ``j`` resets the scheme to
``F ∪ {p}`` (if ``j ∈ F ∪ {p}``) or ``F ∪ {j}``, and every read OR-s
the reader's bit in (a saving-read joins the scheme; a read by a
member is already in).  Hence the scheme before request ``i`` is::

    base(segment of i)  |  OR of reader bits in the segment before i

where segments are delimited by writes.  We evaluate this without
stepping: for every universe bit, the position of its last read and
the position of the last write are ``maximum.accumulate`` scans, and
the bit is a member iff it is in the segment base or its last read
came after the last write.  Everything is vectorized over the whole
batch; the only python loop is over the (small) universe.

The stepped path (:class:`~repro.core.base.OnlineDOM`) remains the
reference implementation — it validates legality/availability per
step and supports every algorithm; the kernel handles exactly SA and
DA (see :mod:`repro.kernel.dispatch`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.kernel.compile import CompiledBatch
from repro.model.cost_model import CostModel
from repro.types import ProcessorId, ProcessorSet, processor_set


def _check_scheme(
    batch: CompiledBatch, scheme: ProcessorSet, threshold: Optional[int]
) -> int:
    """Mirror :class:`OnlineDOM`'s constructor validation; return ``t``."""
    if threshold is None:
        threshold = len(scheme)
    if threshold < 2:
        raise ConfigurationError(
            f"the availability threshold t must be at least 2, got {threshold}"
        )
    if len(scheme) < threshold:
        raise ConfigurationError(
            f"initial scheme {sorted(scheme)} is smaller than t={threshold}"
        )
    for processor in scheme:
        batch.bit_index(processor)  # raises on a foreign id
    return threshold


def sa_request_costs(
    batch: CompiledBatch,
    initial_scheme: Iterable[ProcessorId],
    model: CostModel,
    threshold: Optional[int] = None,
) -> np.ndarray:
    """Per-request SA costs (read-one-write-all over the fixed ``Q``).

    Pure closed form: with ``q = |Q|`` the price of a request is

    ======================  =============================================
    read by a member        ``c_io``
    read by a non-member    ``c_io + c_c + c_d``  (singleton server set)
    write by a member       ``q*c_io + (q-1)*c_d``
    write by a non-member   ``q*c_io + q*c_d``
    ======================  =============================================
    """
    scheme = processor_set(initial_scheme)
    _check_scheme(batch, scheme, threshold)
    q = len(scheme)
    c_io, c_c, c_d = model.c_io, model.c_c, model.c_d

    # The four scalars, each priced exactly like CostBreakdown.priced.
    read_member = 1 * c_io + 0 * c_c + 0 * c_d
    read_foreign = 1 * c_io + 1 * c_c + 1 * c_d
    write_member = q * c_io + 0 * c_c + (q - 1) * c_d
    write_foreign = q * c_io + 0 * c_c + q * c_d

    in_q = batch.bit_flags(scheme)
    member = in_q[batch.procs]
    costs = np.where(
        batch.is_write,
        np.where(member, write_member, write_foreign),
        np.where(member, read_member, read_foreign),
    )
    return np.where(batch.valid(), costs, 0.0)


def _da_membership(
    batch: CompiledBatch,
    scheme: ProcessorSet,
    primary: ProcessorId,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """DA scheme membership before every request.

    Returns ``(member, x_now, in_fp)`` where ``member`` is the
    ``(B, T, n)`` bool tensor of scheme membership *before* request
    ``(b, i)``, ``x_now`` is the ``(B, T)`` bit index of the non-core
    member of the execution set a write at that position would use
    (``p`` for core/primary writers, the writer otherwise), and
    ``in_fp`` is the ``(n,)`` membership table of ``F ∪ {p}``.
    """
    core = scheme - {primary}
    n = len(batch.universe)
    procs, is_write = batch.procs, batch.is_write
    batch_size, horizon = procs.shape
    if horizon == 0:
        # A batch of empty traces: no requests, no membership to track.
        return (
            np.empty((batch_size, 0, n), dtype=bool),
            np.empty((batch_size, 0), dtype=np.int64),
            batch.bit_flags(scheme),
        )
    position = np.arange(horizon, dtype=np.int64)[None, :]

    # Last write strictly before each position (-1: none yet).
    write_positions = np.where(is_write, position, -1)
    last_write = np.empty_like(write_positions)
    last_write[:, 0] = -1
    if horizon > 1:
        last_write[:, 1:] = np.maximum.accumulate(
            write_positions, axis=1
        )[:, :-1]
    has_write_before = last_write >= 0

    # The non-core execution-set member chosen by the *previous* write
    # (defines the segment base) and by a write *at* each position.
    p_idx = batch.bit_index(primary)
    in_fp = batch.bit_flags(scheme)  # F ∪ {p} == the initial scheme
    writer_before = np.take_along_axis(
        procs.astype(np.int64), np.maximum(last_write, 0), axis=1
    )
    x_before = np.where(in_fp[writer_before], p_idx, writer_before)
    x_now = np.where(in_fp[procs], p_idx, procs.astype(np.int64))

    core_flags = batch.bit_flags(core)
    init_flags = in_fp  # DA's initial scheme is F ∪ {p}

    member = np.empty((batch_size, horizon, n), dtype=bool)
    is_read = ~is_write
    for bit in range(n):
        read_positions = np.where(is_read & (procs == bit), position, -1)
        last_read = np.empty_like(read_positions)
        last_read[:, 0] = -1
        if horizon > 1:
            last_read[:, 1:] = np.maximum.accumulate(
                read_positions, axis=1
            )[:, :-1]
        joined_by_read = last_read > last_write
        if core_flags[bit]:
            # Core members are in every base and never leave.
            member[:, :, bit] = True
            continue
        base = np.where(
            has_write_before, x_before == bit, bool(init_flags[bit])
        )
        member[:, :, bit] = base | joined_by_read
    return member, x_now, in_fp


def da_request_costs(
    batch: CompiledBatch,
    initial_scheme: Iterable[ProcessorId],
    model: CostModel,
    primary: Optional[ProcessorId] = None,
    threshold: Optional[int] = None,
) -> np.ndarray:
    """Per-request DA costs (save-on-read / invalidate-on-write).

    With ``t = |F ∪ {p}|`` and ``Y`` the scheme before the request:

    ======================  =============================================
    read by a member        ``c_io``
    read by a non-member    ``2*c_io + c_c + c_d``  (saving-read)
    write by ``j``          ``t*c_io + |Y∖X|*c_c + (t-1)*c_d`` with
                            ``X = F ∪ {p}`` or ``F ∪ {j}``
    ======================  =============================================

    ``|Y∖X|`` collapses to ``|Y| - (t-1) - [x ∈ Y]`` because ``F ⊆ Y``
    always holds under DA (``x`` is the single non-core member of
    ``X``), so the write term needs only the scheme *size* and one
    membership bit — both read off the membership tensor.
    """
    scheme = processor_set(initial_scheme)
    t = _check_scheme(batch, scheme, threshold)
    del t  # DA's execution sets have size len(scheme) regardless of t
    if primary is None:
        primary = max(scheme)
    if primary not in scheme:
        raise ConfigurationError(
            f"primary processor {primary} is not in the initial "
            f"scheme {sorted(scheme)}"
        )
    if len(scheme) < 2:
        raise ConfigurationError(
            "F would be empty; the initial scheme must have at least "
            "two processors (t >= 2)"
        )
    size = len(scheme)  # |F ∪ {p}| — every DA execution set has this size
    c_io, c_c, c_d = model.c_io, model.c_c, model.c_d

    read_member = 1 * c_io + 0 * c_c + 0 * c_d
    saving_read = 2 * c_io + 1 * c_c + 1 * c_d

    member, x_now, _ = _da_membership(batch, scheme, primary)
    member_self = np.take_along_axis(
        member, batch.procs.astype(np.int64)[:, :, None], axis=2
    )[:, :, 0]
    scheme_size = member.sum(axis=2, dtype=np.int64)
    x_in_scheme = np.take_along_axis(member, x_now[:, :, None], axis=2)[
        :, :, 0
    ]
    stale = scheme_size - (size - 1) - x_in_scheme

    # Exactly CostBreakdown.priced's operation order:
    #   io*c_io + control*c_c + data*c_d, left to right.
    write_costs = (size * c_io + stale.astype(np.float64) * c_c) + (
        (size - 1) * c_d
    )
    read_costs = np.where(member_self, read_member, saving_read)
    costs = np.where(batch.is_write, write_costs, read_costs)
    return np.where(batch.valid(), costs, 0.0)


def da_final_schemes(
    batch: CompiledBatch,
    initial_scheme: Iterable[ProcessorId],
    primary: Optional[ProcessorId] = None,
) -> List[ProcessorSet]:
    """The allocation scheme after each trace's last request.

    Mirrors :attr:`OnlineDOM.current_scheme` after
    :meth:`~repro.core.base.OnlineDOM.run`; used by the parity suite.
    """
    scheme = processor_set(initial_scheme)
    if primary is None:
        primary = max(scheme)
    member, _, _ = _da_membership(batch, scheme, primary)
    procs, is_write = batch.procs, batch.is_write
    schemes: List[ProcessorSet] = []
    for row in range(batch.batch_size):
        length = int(batch.lengths[row])
        if length == 0:
            schemes.append(scheme)
            continue
        last = length - 1
        before = member[row, last].copy()
        if is_write[row, last]:
            # The write resets the scheme to its execution set.
            writer = int(procs[row, last])
            core_flags = batch.bit_flags(scheme - {primary})
            after = core_flags.copy()
            if bool(batch.bit_flags(scheme)[writer]):
                after[batch.bit_index(primary)] = True
            else:
                after[writer] = True
            before = after
        else:
            before[int(procs[row, last])] = True  # reads always join
        schemes.append(
            frozenset(
                batch.universe[bit]
                for bit in range(len(batch.universe))
                if before[bit]
            )
        )
    return schemes


def schedule_totals(
    costs: np.ndarray, lengths: np.ndarray
) -> List[float]:
    """Sum per-request costs into per-trace totals, bit-identically to
    the stepped path.

    :meth:`CostModel.schedule_cost` folds with python's builtin
    ``sum`` — a left-to-right reduction seeded with int 0.  numpy's
    pairwise ``sum`` associates differently, so we materialize each
    row and fold it the same way; batches are small enough that this
    costs microseconds.
    """
    return [
        sum(costs[row, : int(lengths[row])].tolist())
        for row in range(costs.shape[0])
    ]
