"""``repro.kernel`` — the vectorized schedule kernel.

Compiles schedules (or batches of replications) into flat numpy
arrays and batch-evaluates SA and DA costs without stepping python
objects; also home of the perf harness behind ``repro bench``.  See
``docs/kernel.md`` for the compilation layout, the bitmask
conventions, and when the stepped path is still required.
"""

from repro.kernel.compile import (
    CompiledBatch,
    compile_batch,
    compile_schedule,
    popcount,
)
from repro.kernel.dispatch import (
    batch_costs,
    request_costs,
    schedule_breakdown,
    schedule_cost,
    supports,
)
from repro.kernel.evaluate import (
    da_final_schemes,
    da_request_costs,
    sa_request_costs,
    schedule_totals,
)

__all__ = [
    "CompiledBatch",
    "batch_costs",
    "compile_batch",
    "compile_schedule",
    "da_final_schemes",
    "da_request_costs",
    "popcount",
    "request_costs",
    "sa_request_costs",
    "schedule_breakdown",
    "schedule_cost",
    "schedule_totals",
    "supports",
]
