"""Dispatch: route supported algorithm objects through the kernel.

The kernel evaluates exactly the paper's two algorithms — SA
(:class:`~repro.core.static_allocation.StaticAllocation`) and DA
(:class:`~repro.core.dynamic_allocation.DynamicAllocation`).  Dispatch
is by *exact type*: a subclass may override :meth:`decide`/`observe`
and silently diverge from the closed forms, so subclasses (and every
other algorithm: CDDR, CACHE, CONV, ...) stay on the stepped
reference path.

Costs returned here are bit-identical to the stepped path (see
:mod:`repro.kernel.evaluate`), so callers may swap paths freely
without perturbing cached or published results.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.base import OnlineDOM
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.exceptions import ConfigurationError
from repro.kernel.compile import CompiledBatch, compile_batch
from repro.model.accounting import CostBreakdown
from repro.model.cost_model import CostModel
from repro.model.schedule import Schedule

#: Unit-price models that project one counter each out of the kernel's
#: priced totals.  Charging only control messages prices a data message
#: below a control message, which Figure 1 calls infeasible — hence the
#: explicit opt-out.
_UNIT_IO = CostModel(1.0, 0.0, 0.0)
_UNIT_CONTROL = CostModel(0.0, 1.0, 0.0, allow_infeasible=True)
_UNIT_DATA = CostModel(0.0, 0.0, 1.0)


def supports(algorithm: OnlineDOM) -> bool:
    """True iff the kernel can evaluate this algorithm exactly."""
    return type(algorithm) in (StaticAllocation, DynamicAllocation)


def request_costs(
    algorithm: OnlineDOM, batch: CompiledBatch, model: CostModel
) -> np.ndarray:
    """Per-request costs of a supported algorithm over a compiled batch."""
    from repro.kernel.evaluate import da_request_costs, sa_request_costs

    if type(algorithm) is StaticAllocation:
        return sa_request_costs(
            batch, algorithm.initial_scheme, model, algorithm.threshold
        )
    if type(algorithm) is DynamicAllocation:
        return da_request_costs(
            batch,
            algorithm.initial_scheme,
            model,
            primary=algorithm.primary,
            threshold=algorithm.threshold,
        )
    raise ConfigurationError(
        f"the kernel does not support {type(algorithm).__name__}; "
        "use the stepped OnlineDOM path"
    )


def batch_costs(
    algorithm: OnlineDOM,
    schedules: Sequence[Schedule],
    model: CostModel,
    batch: CompiledBatch | None = None,
) -> List[float]:
    """Total cost of a supported algorithm on every schedule at once.

    Compiles the batch (universe widened with the algorithm's initial
    scheme) unless the caller hands in a pre-compiled one, evaluates
    the whole batch in one pass, and reduces per-trace totals exactly
    like the stepped path.
    """
    from repro.kernel.evaluate import schedule_totals

    if batch is None:
        batch = compile_batch(schedules, algorithm.initial_scheme)
    costs = request_costs(algorithm, batch, model)
    return schedule_totals(costs, batch.lengths)


def schedule_cost(
    algorithm: OnlineDOM, schedule: Schedule, model: CostModel
) -> float:
    """Total cost of a supported algorithm on one schedule."""
    return batch_costs(algorithm, [schedule], model)[0]


def schedule_breakdown(
    algorithm: OnlineDOM, schedule: Schedule
) -> CostBreakdown:
    """The kernel's *unpriced* counters for one schedule.

    Evaluates the batch three times under unit-price models (1 for one
    counter, 0 for the others), so each priced total IS that counter.
    The result is directly comparable with the stepped model's
    ``total_breakdown()``, the simulator's ``stats.breakdown()`` and a
    live cluster's aggregated metrics — the fourth corner of the parity
    square.  Kernel totals are exact integers computed in float; the
    round() guards against representation noise only.
    """
    batch = compile_batch([schedule], algorithm.initial_scheme)
    counts = [
        batch_costs(algorithm, [schedule], model, batch=batch)[0]
        for model in (_UNIT_IO, _UNIT_CONTROL, _UNIT_DATA)
    ]
    return CostBreakdown(
        io_ops=round(counts[0]),
        control_messages=round(counts[1]),
        data_messages=round(counts[2]),
    )
