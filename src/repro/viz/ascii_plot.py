"""ASCII rendering of region maps and series.

The reproduction environment has no plotting libraries, so Figures 1
and 2 are rendered as character grids — which is arguably closer to the
original's hand-drawn hatching than a heat map would be.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.analysis.regions import Region, RegionMap

#: One display character per region.
REGION_CHARS: Mapping[Region, str] = {
    Region.SA_SUPERIOR: "S",
    Region.DA_SUPERIOR: "D",
    Region.UNKNOWN: "?",
    Region.INFEASIBLE: ".",
}

LEGEND = (
    "S = SA superior   D = DA superior   ? = unknown   "
    ". = cannot be true (c_c > c_d)"
)


def render_region_map(region_map: RegionMap, title: Optional[str] = None) -> str:
    """Render a :class:`~repro.analysis.regions.RegionMap` as text.

    The layout matches the paper's figures: ``c_c`` on the vertical
    axis (increasing upward), ``c_d`` on the horizontal axis.
    """
    lines = []
    if title:
        lines.append(title)
    lines.append("c_c")
    for row in region_map.rows():
        c_c = row[0].c_c
        cells = "".join(
            REGION_CHARS[point.region] + " " for point in row
        ).rstrip()
        lines.append(f"{c_c:5.2f} | {cells}")
    axis = "        " + "".join(
        f"{c_d:<6.2f}"[:2] for c_d in region_map.c_d_values
    )
    lines.append("       +" + "--" * len(region_map.c_d_values))
    labels = "        " + " ".join(
        f"{c_d:.1f}" for c_d in region_map.c_d_values
    )
    del axis
    lines.append(labels + "   (c_d)")
    lines.append(LEGEND)
    return "\n".join(lines)


def render_series(
    series: Sequence[tuple[float, float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
) -> str:
    """Render an (x, y) series as a crude ASCII scatter/line chart.

    An empty series renders a labeled empty frame (same dimensions, a
    ``(no data)`` note) rather than raising: callers plotting measured
    data — e.g. latency histograms of a run where every request failed
    — get a well-formed chart either way.  A constant series collapses
    to a single row/column.
    """
    if not series:
        lines = []
        if title:
            lines.append(title)
        lines.append(f"{y_label} (no data)")
        lines.extend("|" + " " * width for _ in range(height))
        lines.append("+" + "-" * width)
        lines.append(f" {x_label}: (no data)")
        return "\n".join(lines)
    xs = [x for x, _ in series]
    ys = [y for _, y in series]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for x, y in series:
        column = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        canvas[height - 1 - row][column] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={y_max:.3f}, bottom={y_min:.3f})")
    for row_cells in canvas:
        lines.append("|" + "".join(row_cells))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.3f} .. {x_max:.3f}")
    return "\n".join(lines)
