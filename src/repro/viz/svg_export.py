"""Pure-Python SVG rendering of the region maps.

No plotting libraries are available offline, so Figures 1 and 2 are
also rendered as standalone SVG files — publication-quality vector
output with nothing but string formatting.  The layout mirrors the
paper: ``c_d`` rightward, ``c_c`` upward, one colored cell per grid
point, the infeasible ``c_c > c_d`` triangle hatched.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Union

from repro.analysis.regions import Region, RegionMap
from repro.exceptions import ConfigurationError

#: Fill colors per region (colorblind-safe-ish).
REGION_COLORS: Mapping[Region, str] = {
    Region.SA_SUPERIOR: "#4477aa",
    Region.DA_SUPERIOR: "#ee6677",
    Region.UNKNOWN: "#cccccc",
    Region.INFEASIBLE: "#ffffff",
}

REGION_LABELS: Mapping[Region, str] = {
    Region.SA_SUPERIOR: "SA superior",
    Region.DA_SUPERIOR: "DA superior",
    Region.UNKNOWN: "Unknown",
    Region.INFEASIBLE: "Cannot be true (c_c > c_d)",
}

_CELL = 48
_MARGIN = 64
_LEGEND_HEIGHT = 96


def region_map_to_svg(region_map: RegionMap, title: str = "") -> str:
    """Render a region map as an SVG document string."""
    rows = region_map.rows()
    if not rows:
        raise ConfigurationError("cannot render an empty region map")
    columns = len(rows[0])
    width = _MARGIN * 2 + columns * _CELL
    height = _MARGIN * 2 + len(rows) * _CELL + _LEGEND_HEIGHT

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        '<style>text{font-family:sans-serif;font-size:13px;}'
        ".title{font-size:16px;font-weight:bold;}</style>",
        f'<rect width="{width}" height="{height}" fill="white"/>',
        '<defs><pattern id="hatch" width="6" height="6" '
        'patternUnits="userSpaceOnUse" patternTransform="rotate(45)">'
        '<line x1="0" y1="0" x2="0" y2="6" stroke="#bbbbbb" '
        'stroke-width="1"/></pattern></defs>',
    ]
    if title:
        parts.append(
            f'<text class="title" x="{width / 2}" y="24" '
            f'text-anchor="middle">{title}</text>'
        )

    # Grid cells: rows() is c_c-descending, which matches top-to-bottom.
    for row_index, row in enumerate(rows):
        for column_index, point in enumerate(row):
            x = _MARGIN + column_index * _CELL
            y = _MARGIN + row_index * _CELL
            if point.region is Region.INFEASIBLE:
                fill = "url(#hatch)"
            else:
                fill = REGION_COLORS[point.region]
            parts.append(
                f'<rect x="{x}" y="{y}" width="{_CELL}" height="{_CELL}" '
                f'fill="{fill}" stroke="#888888" stroke-width="0.5">'
                f"<title>c_c={point.c_c}, c_d={point.c_d}: "
                f"{REGION_LABELS[point.region]}</title></rect>"
            )

    # Axis labels.
    for column_index, c_d in enumerate(region_map.c_d_values):
        x = _MARGIN + column_index * _CELL + _CELL / 2
        y = _MARGIN + len(rows) * _CELL + 18
        parts.append(
            f'<text x="{x}" y="{y}" text-anchor="middle">{c_d:g}</text>'
        )
    for row_index, row in enumerate(rows):
        x = _MARGIN - 8
        y = _MARGIN + row_index * _CELL + _CELL / 2 + 4
        parts.append(
            f'<text x="{x}" y="{y}" text-anchor="end">{row[0].c_c:g}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN + columns * _CELL / 2}" '
        f'y="{_MARGIN + len(rows) * _CELL + 40}" '
        'text-anchor="middle">c_d (data-message cost)</text>'
    )
    parts.append(
        f'<text x="16" y="{_MARGIN + len(rows) * _CELL / 2}" '
        "text-anchor='middle' transform='rotate(-90 16 "
        f"{_MARGIN + len(rows) * _CELL / 2})'>c_c (control-message cost)"
        "</text>"
    )

    # Legend.
    legend_y = _MARGIN + len(rows) * _CELL + 56
    x = _MARGIN
    for region in (
        Region.SA_SUPERIOR,
        Region.DA_SUPERIOR,
        Region.UNKNOWN,
        Region.INFEASIBLE,
    ):
        fill = (
            "url(#hatch)"
            if region is Region.INFEASIBLE
            else REGION_COLORS[region]
        )
        parts.append(
            f'<rect x="{x}" y="{legend_y}" width="14" height="14" '
            f'fill="{fill}" stroke="#888888" stroke-width="0.5"/>'
        )
        parts.append(
            f'<text x="{x + 20}" y="{legend_y + 12}">'
            f"{REGION_LABELS[region]}</text>"
        )
        x += 20 + 9 * len(REGION_LABELS[region]) + 16
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(
    region_map: RegionMap,
    path: Union[str, Path],
    title: str = "",
) -> None:
    """Render and write a region map SVG."""
    Path(path).write_text(region_map_to_svg(region_map, title), encoding="utf-8")
