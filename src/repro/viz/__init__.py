"""Text rendering and CSV export of analysis artifacts."""

from repro.viz.ascii_plot import LEGEND, REGION_CHARS, render_region_map, render_series
from repro.viz.csv_export import region_map_to_csv, sweep_to_csv, write_csv
from repro.viz.svg_export import region_map_to_svg, write_svg

__all__ = [
    "LEGEND",
    "REGION_CHARS",
    "region_map_to_csv",
    "region_map_to_svg",
    "render_region_map",
    "render_series",
    "sweep_to_csv",
    "write_csv",
    "write_svg",
]
