"""CSV export of analysis artifacts.

Benchmarks can persist region maps and sweep series as CSV so the data
behind every regenerated figure is inspectable (and re-plottable with
external tooling).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Union

from repro.analysis.regions import RegionMap
from repro.analysis.sweep import SweepResult


def region_map_to_csv(region_map: RegionMap) -> str:
    """Serialize a region map: one row per grid point."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["c_c", "c_d", "region", "sa_ratio", "da_ratio"])
    for point in region_map.points:
        writer.writerow(
            [
                point.c_c,
                point.c_d,
                point.region.value,
                "" if point.sa_ratio is None else point.sa_ratio,
                "" if point.da_ratio is None else point.da_ratio,
            ]
        )
    return buffer.getvalue()


def sweep_to_csv(result: SweepResult) -> str:
    """Serialize a sweep: one row per parameter value, one column per
    algorithm's max ratio and mean cost."""
    algorithms = result.algorithms()
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    header = [result.parameter_name]
    header += [f"{name}_max_ratio" for name in algorithms]
    header += [f"{name}_mean_cost" for name in algorithms]
    writer.writerow(header)
    for row in result.rows:
        record = [row.parameter]
        record += [row.max_ratios[name] for name in algorithms]
        record += [row.mean_costs[name] for name in algorithms]
        writer.writerow(record)
    return buffer.getvalue()


def write_csv(text: str, path: Union[str, Path]) -> None:
    """Write CSV text to a file."""
    Path(path).write_text(text, encoding="utf-8")
