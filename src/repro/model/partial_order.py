"""Partially ordered schedules: concurrent reads between writes.

Paper §3.1: *"In practice, any pair of writes, or a read and a write,
are totally ordered in a schedule, however, reads can execute
concurrently.  Our analysis using the model applies almost verbatim
even if reads between two consecutive writes are partially ordered."*

:class:`PartialSchedule` models exactly that structure — an alternation
of write *barriers* and unordered read *groups* — and provides the
linearizations (total orders consistent with the partial order).  The
property tests verify the paper's "almost verbatim" claim concretely:
for SA and DA (and the offline optimum), the cost of a partially
ordered schedule is invariant under the choice of linearization, so
analyzing any one linearization analyzes them all.

(Why it holds: within a read group the allocation scheme only grows,
each reader's first read is foreign-or-local regardless of its position
relative to *other* readers, and repeat reads by the same processor are
ordered among themselves by the program order we preserve.)
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import ConfigurationError
from repro.model.request import Request
from repro.model.schedule import Schedule
from repro.types import ProcessorId


@dataclass(frozen=True)
class ReadGroup:
    """An unordered multiset of reads between two write barriers.

    Reads by the *same* processor stay in program order; reads by
    different processors are mutually unordered.
    """

    reads: tuple[Request, ...] = ()

    def __post_init__(self) -> None:
        for request in self.reads:
            if not isinstance(request, Request) or not request.is_read:
                raise ConfigurationError(
                    f"read groups contain read requests only, got {request!r}"
                )

    def __len__(self) -> int:
        return len(self.reads)

    def by_processor(self) -> dict[ProcessorId, list[Request]]:
        """Program-order read sequences, one per processor."""
        sequences: dict[ProcessorId, list[Request]] = {}
        for request in self.reads:
            sequences.setdefault(request.processor, []).append(request)
        return sequences


@dataclass(frozen=True)
class PartialSchedule:
    """Alternating read groups and writes: ``G0 w1 G1 w2 G2 ...``.

    ``groups`` has exactly one more element than ``writes`` (a possibly
    empty leading and trailing group).
    """

    groups: tuple[ReadGroup, ...]
    writes: tuple[Request, ...]

    def __post_init__(self) -> None:
        if len(self.groups) != len(self.writes) + 1:
            raise ConfigurationError(
                f"{len(self.writes)} writes need {len(self.writes) + 1} "
                f"read groups, got {len(self.groups)}"
            )
        for request in self.writes:
            if not isinstance(request, Request) or not request.is_write:
                raise ConfigurationError(f"not a write request: {request!r}")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_schedule(cls, schedule: Schedule) -> "PartialSchedule":
        """Relax a total schedule: forget the order among different
        processors' reads inside each write-free segment."""
        groups: list[ReadGroup] = []
        writes: list[Request] = []
        current: list[Request] = []
        for request in schedule:
            if request.is_read:
                current.append(request)
            else:
                groups.append(ReadGroup(tuple(current)))
                writes.append(request)
                current = []
        groups.append(ReadGroup(tuple(current)))
        return cls(tuple(groups), tuple(writes))

    # -- statistics ----------------------------------------------------------

    @property
    def request_count(self) -> int:
        return len(self.writes) + sum(len(group) for group in self.groups)

    # -- linearizations ----------------------------------------------------------

    def canonical_linearization(self) -> Schedule:
        """The linearization keeping each group's reads in given order."""
        requests: list[Request] = []
        for group, write_request in zip(self.groups, self.writes):
            requests.extend(group.reads)
            requests.append(write_request)
        requests.extend(self.groups[-1].reads)
        return Schedule(tuple(requests))

    def sample_linearization(self, seed: int = 0) -> Schedule:
        """A random linearization: interleave processors' read sequences
        uniformly inside each group, preserving per-processor order."""
        rng = random.Random(seed)
        requests: list[Request] = []
        for position, group in enumerate(self.groups):
            requests.extend(self._shuffle_group(group, rng))
            if position < len(self.writes):
                requests.append(self.writes[position])
        return Schedule(tuple(requests))

    @staticmethod
    def _shuffle_group(group: ReadGroup, rng: random.Random) -> list[Request]:
        sequences = {
            processor: list(reads)
            for processor, reads in group.by_processor().items()
        }
        merged: list[Request] = []
        while sequences:
            processor = rng.choice(sorted(sequences))
            merged.append(sequences[processor].pop(0))
            if not sequences[processor]:
                del sequences[processor]
        return merged

    def linearizations(self, limit: int = 1000) -> Iterator[Schedule]:
        """All linearizations (lazily), up to ``limit`` — the count is a
        product of multinomials, so cap before exhaustively comparing."""
        per_group_options = [
            self._group_orders(group) for group in self.groups
        ]
        produced = 0
        for choice in itertools.product(*per_group_options):
            requests: list[Request] = []
            for position, group_order in enumerate(choice):
                requests.extend(group_order)
                if position < len(self.writes):
                    requests.append(self.writes[position])
            yield Schedule(tuple(requests))
            produced += 1
            if produced >= limit:
                return

    @staticmethod
    def _group_orders(group: ReadGroup) -> list[tuple[Request, ...]]:
        """All interleavings of the group's per-processor sequences."""
        sequences = list(group.by_processor().values())
        if not sequences:
            return [()]

        def merge(remaining: list[list[Request]]) -> list[tuple[Request, ...]]:
            live = [seq for seq in remaining if seq]
            if not live:
                return [()]
            results = []
            for index, sequence in enumerate(remaining):
                if not sequence:
                    continue
                head, tail = sequence[0], sequence[1:]
                rest = remaining[:index] + [tail] + remaining[index + 1:]
                for suffix in merge(rest):
                    results.append((head,) + suffix)
            return results

        return merge(sequences)


def cost_is_linearization_invariant(
    algorithm_factory,
    partial: PartialSchedule,
    model,
    sample_count: int = 8,
) -> bool:
    """Check the §3.1 claim for one algorithm on one partial schedule:
    every sampled linearization prices identically."""
    reference = None
    for seed in range(sample_count):
        schedule = partial.sample_linearization(seed)
        algorithm = algorithm_factory()
        cost = model.schedule_cost(algorithm.run(schedule))
        if reference is None:
            reference = cost
        elif abs(cost - reference) > 1e-9:
            return False
    return True
