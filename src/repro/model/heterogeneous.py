"""Heterogeneous cost models: per-node I/O and per-link message prices.

Paper §3.2 assumes a homogeneous system (*"the data-message between
every pair of processors costs c_d ... the I/O cost is identical at all
the processors"*) and §6 closes by discussing extensions *"to other
models"*.  This module provides the natural one: every processor has
its own I/O price and every ordered link its own control/data price —
think a wired backbone with a few expensive wireless links, the exact
setting the mobile scenario motivates.

The §3.2/§3.3 cost formulas generalize by replacing counts with sums:

* non-saving read ``r_i`` with execution set ``X``::

      sum_{x in X} io(x)
      + sum_{x in X, x != i} [ c_c(i, x) + c_d(x, i) ]

  (every member besides the reader itself gets a request message and
  returns a data message);

* a saving-read additionally pays ``io(i)``;

* write ``w_i`` with execution set ``X`` and scheme ``Y``::

      sum_{x in X} io(x) + sum_{x in X, x != i} c_d(i, x)
      + sum_{y in Y \\ X \\ {i}} c_c(i, y)

  (the writer ships the object and sends the invalidations; with
  homogeneous prices this is exactly the paper's formula).

With constant prices, every cost equals the homogeneous
:class:`~repro.model.cost_model.CostModel`'s — asserted by the tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.model.allocation import AllocationSchedule
from repro.model.request import ExecutedRequest
from repro.types import ProcessorId, ProcessorSet

Link = Tuple[ProcessorId, ProcessorId]


class HeterogeneousCostModel:
    """Per-node I/O prices and per-link message prices.

    Parameters
    ----------
    default_io, default_c_c, default_c_d:
        Prices used where no override is given.
    io_costs:
        Per-node I/O overrides.
    control_costs / data_costs:
        Per-ordered-link overrides.  Provide both directions explicitly
        if a link is asymmetric; a single ``(a, b)`` entry applies to
        ``a -> b`` only.
    """

    def __init__(
        self,
        default_io: float = 1.0,
        default_c_c: float = 0.2,
        default_c_d: float = 1.0,
        io_costs: Optional[Mapping[ProcessorId, float]] = None,
        control_costs: Optional[Mapping[Link, float]] = None,
        data_costs: Optional[Mapping[Link, float]] = None,
    ) -> None:
        for name, value in (
            ("default_io", default_io),
            ("default_c_c", default_c_c),
            ("default_c_d", default_c_d),
        ):
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if default_c_c > default_c_d:
            raise ConfigurationError(
                "a data message cannot be cheaper than a control message"
            )
        self.default_io = default_io
        self.default_c_c = default_c_c
        self.default_c_d = default_c_d
        self._io: Dict[ProcessorId, float] = dict(io_costs or {})
        self._control: Dict[Link, float] = dict(control_costs or {})
        self._data: Dict[Link, float] = dict(data_costs or {})
        for node, value in self._io.items():
            if value < 0:
                raise ConfigurationError(f"io({node}) must be non-negative")
        for mapping, kind in ((self._control, "c_c"), (self._data, "c_d")):
            for link, value in mapping.items():
                if value < 0:
                    raise ConfigurationError(
                        f"{kind}{link} must be non-negative"
                    )
        for link, control in self._control.items():
            data = self._data.get(link, self.default_c_d)
            if control > data:
                raise ConfigurationError(
                    f"c_c{link}={control} exceeds c_d{link}={data}: a data "
                    "message carries strictly more"
                )

    # -- price lookups ------------------------------------------------------

    def io(self, node: ProcessorId) -> float:
        return self._io.get(node, self.default_io)

    def control(self, sender: ProcessorId, receiver: ProcessorId) -> float:
        return self._control.get((sender, receiver), self.default_c_c)

    def data(self, sender: ProcessorId, receiver: ProcessorId) -> float:
        return self._data.get((sender, receiver), self.default_c_d)

    # -- the generalized cost function ------------------------------------------

    def request_cost(
        self, executed: ExecutedRequest, scheme: ProcessorSet
    ) -> float:
        if executed.is_read:
            return self._read_cost(executed)
        return self._write_cost(executed, scheme)

    def _read_cost(self, executed: ExecutedRequest) -> float:
        reader = executed.processor
        cost = 0.0
        for member in executed.execution_set:
            cost += self.io(member)
            if member != reader:
                cost += self.control(reader, member)
                cost += self.data(member, reader)
        if executed.saving:
            cost += self.io(reader)
        return cost

    def _write_cost(
        self, executed: ExecutedRequest, scheme: ProcessorSet
    ) -> float:
        writer = executed.processor
        cost = 0.0
        for member in executed.execution_set:
            cost += self.io(member)
            if member != writer:
                cost += self.data(writer, member)
        for stale in scheme - executed.execution_set - {writer}:
            cost += self.control(writer, stale)
        return cost

    def schedule_cost(self, allocation: AllocationSchedule) -> float:
        return sum(
            self.request_cost(step, scheme)
            for scheme, step in allocation.schemes()
        )

    # -- helpers for policy decisions ----------------------------------------------

    def fetch_cost(self, reader: ProcessorId, server: ProcessorId) -> float:
        """Full price of a non-saving remote read from ``server``."""
        return (
            self.control(reader, server)
            + self.io(server)
            + self.data(server, reader)
        )

    def nearest_server(
        self, reader: ProcessorId, servers: Iterable[ProcessorId]
    ) -> ProcessorId:
        """The cheapest server for ``reader`` (lowest id breaks ties)."""
        servers = sorted(servers)
        if not servers:
            raise ConfigurationError("no servers to choose from")
        return min(servers, key=lambda s: (self.fetch_cost(reader, s), s))


def homogeneous(
    c_io: float, c_c: float, c_d: float
) -> HeterogeneousCostModel:
    """A heterogeneous model with constant prices (for equivalence tests)."""
    return HeterogeneousCostModel(c_io, c_c, c_d)
