"""Cost models: the stationary-computing and mobile-computing pricings.

Paper §1.2: *"We distinguish between the stationary-computing (SC) cost
model, in which c_io > 0, and the mobile-computing (MC) cost model, in
which c_io = 0."*  In the SC model the I/O cost is normalized to one
unit (§3.2); in the MC model it is zero because a mobile user is billed
per wireless message while local I/O carries no out-of-pocket expense
(§3.3).

A cost model prices the :class:`~repro.model.accounting.CostBreakdown`
of each request.  Validation enforces the feasibility constraint of
Figure 1: a data message cannot be cheaper than a control message
(``c_c <= c_d``), because the data message carries the object content in
addition to every field of the control message.  Exploratory code may
opt out with ``allow_infeasible=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.model.accounting import CostBreakdown
from repro.model.allocation import AllocationSchedule
from repro.model.costs import request_breakdown
from repro.model.request import ExecutedRequest
from repro.types import ProcessorSet


@dataclass(frozen=True, slots=True)
class CostModel:
    """Unit prices for I/O, control messages and data messages."""

    c_io: float
    c_c: float
    c_d: float
    allow_infeasible: bool = False

    def __post_init__(self) -> None:
        for name in ("c_io", "c_c", "c_d"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ConfigurationError(
                    f"{name} must be a finite non-negative number, got {value}"
                )
        if self.c_c > self.c_d and not self.allow_infeasible:
            raise ConfigurationError(
                f"c_c={self.c_c} > c_d={self.c_d}: a data message cannot be "
                "cheaper than a control message (Figure 1, 'Cannot be true'); "
                "pass allow_infeasible=True to explore this region anyway"
            )

    # -- pricing ---------------------------------------------------------

    def price(self, breakdown: CostBreakdown) -> float:
        """Price a cost breakdown under this model."""
        return breakdown.priced(self.c_io, self.c_c, self.c_d)

    def request_cost(
        self, executed: ExecutedRequest, scheme: ProcessorSet
    ) -> float:
        """COST(q) of paper §3.2/§3.3 for one executed request."""
        return self.price(request_breakdown(executed, scheme))

    def schedule_cost(self, allocation: AllocationSchedule) -> float:
        """COST(I, tau): the sum of the request costs along ``allocation``."""
        return sum(
            self.price(request_breakdown(step, scheme))
            for scheme, step in allocation.schemes()
        )

    def request_costs(self, allocation: AllocationSchedule) -> list[float]:
        """Per-request costs in schedule order."""
        return [
            self.price(request_breakdown(step, scheme))
            for scheme, step in allocation.schemes()
        ]

    # -- classification -----------------------------------------------------

    @property
    def is_mobile(self) -> bool:
        """True iff this is a mobile-computing pricing (``c_io == 0``)."""
        return self.c_io == 0

    @property
    def is_stationary(self) -> bool:
        return self.c_io > 0

    def normalized(self) -> "CostModel":
        """Rescale so that ``c_io == 1`` (only valid for SC models).

        The paper normalizes the SC model by taking ``c_io = 1``;
        competitiveness is invariant under this rescaling because every
        request cost is scaled by the same factor.
        """
        if self.c_io == 0:
            raise ConfigurationError("a mobile model cannot be normalized")
        return CostModel(
            1.0,
            self.c_c / self.c_io,
            self.c_d / self.c_io,
            allow_infeasible=self.allow_infeasible,
        )

    def __str__(self) -> str:
        flavor = "MC" if self.is_mobile else "SC"
        return f"{flavor}(c_io={self.c_io}, c_c={self.c_c}, c_d={self.c_d})"


def stationary(c_c: float, c_d: float, **kwargs) -> CostModel:
    """The stationary-computing model with ``c_io`` normalized to 1."""
    return CostModel(1.0, c_c, c_d, **kwargs)


def mobile(c_c: float, c_d: float, **kwargs) -> CostModel:
    """The mobile-computing model (``c_io = 0``)."""
    return CostModel(0.0, c_c, c_d, **kwargs)
