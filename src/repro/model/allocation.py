"""Allocation schedules: execution schedules with saving-reads.

Paper §3.1: *"An allocation schedule is an execution schedule in which
some reads are converted into saving-reads."*  This module defines
:class:`AllocationSchedule` (an initial allocation scheme plus a
sequence of executed requests), the evolution of the allocation scheme
along the schedule, and the two validity notions of the paper:

* **legality** — every read's execution set intersects the allocation
  scheme at that read (the read reaches a *data processor*);
* **t-availability** — the allocation scheme at every request (and at
  the end of the schedule) has at least ``t`` members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import (
    AvailabilityViolationError,
    ConfigurationError,
    IllegalScheduleError,
)
from repro.model.accounting import CostBreakdown, total
from repro.model.costs import next_scheme, request_breakdown
from repro.model.request import ExecutedRequest
from repro.model.schedule import Schedule
from repro.types import ProcessorSet, processor_set


@dataclass(frozen=True)
class AllocationSchedule:
    """An initial allocation scheme plus a sequence of executed requests."""

    initial_scheme: ProcessorSet
    steps: tuple[ExecutedRequest, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "initial_scheme", processor_set(self.initial_scheme)
        )
        object.__setattr__(self, "steps", tuple(self.steps))
        if not self.initial_scheme:
            raise ConfigurationError("the initial allocation scheme is empty")
        for step in self.steps:
            if not isinstance(step, ExecutedRequest):
                raise ConfigurationError(
                    f"allocation schedule items must be ExecutedRequest, got {step!r}"
                )

    # -- basic protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[ExecutedRequest]:
        return iter(self.steps)

    def __getitem__(self, index) -> ExecutedRequest:
        return self.steps[index]

    def __str__(self) -> str:
        init = ",".join(str(p) for p in sorted(self.initial_scheme))
        body = " ".join(str(step) for step in self.steps)
        return f"[init={{{init}}}] {body}"

    # -- scheme evolution ---------------------------------------------------

    def schemes(self) -> Iterator[tuple[ProcessorSet, ExecutedRequest]]:
        """Yield ``(scheme_at_request, executed_request)`` pairs.

        The scheme at the first request is the initial allocation scheme
        (paper §3.1).
        """
        scheme = self.initial_scheme
        for step in self.steps:
            yield scheme, step
            scheme = next_scheme(step, scheme)

    def scheme_at(self, index: int) -> ProcessorSet:
        """The allocation scheme at the request with the given index."""
        if index < 0 or index >= len(self.steps):
            raise IndexError(index)
        scheme = self.initial_scheme
        for position, step in enumerate(self.steps):
            if position == index:
                return scheme
            scheme = next_scheme(step, scheme)
        raise AssertionError("unreachable")  # pragma: no cover

    @property
    def final_scheme(self) -> ProcessorSet:
        """The allocation scheme after the last request."""
        scheme = self.initial_scheme
        for step in self.steps:
            scheme = next_scheme(step, scheme)
        return scheme

    # -- validity ---------------------------------------------------------

    def is_legal(self) -> bool:
        """True iff every read's execution set meets the scheme at the read."""
        try:
            self.check_legal()
        except IllegalScheduleError:
            return False
        return True

    def check_legal(self) -> None:
        """Raise :class:`IllegalScheduleError` on the first illegal read."""
        for position, (scheme, step) in enumerate(self.schemes()):
            if step.is_read and not (step.execution_set & scheme):
                raise IllegalScheduleError(
                    f"read #{position} ({step}) has execution set disjoint "
                    f"from the allocation scheme {sorted(scheme)}"
                )

    def satisfies_t_available(self, threshold: int) -> bool:
        """True iff the scheme at every request (and at the end) has at
        least ``threshold`` members."""
        try:
            self.check_t_available(threshold)
        except AvailabilityViolationError:
            return False
        return True

    def check_t_available(self, threshold: int) -> None:
        """Raise :class:`AvailabilityViolationError` on the first violation."""
        for position, (scheme, step) in enumerate(self.schemes()):
            if len(scheme) < threshold:
                raise AvailabilityViolationError(
                    f"scheme at request #{position} ({step}) has "
                    f"{len(scheme)} < {threshold} members"
                )
        if len(self.final_scheme) < threshold:
            raise AvailabilityViolationError(
                f"final scheme has {len(self.final_scheme)} < {threshold} members"
            )

    # -- correspondence ------------------------------------------------------

    def schedule(self) -> Schedule:
        """The corresponding schedule (paper §3.1): drop execution sets
        and turn every saving-read back into a read."""
        return Schedule(tuple(step.request for step in self.steps))

    def corresponds_to(self, schedule: Schedule) -> bool:
        """True iff this allocation schedule corresponds to ``schedule``."""
        return self.schedule() == schedule

    # -- cost ------------------------------------------------------------

    def breakdowns(self) -> list[CostBreakdown]:
        """Per-request cost breakdowns in schedule order."""
        return [
            request_breakdown(step, scheme) for scheme, step in self.schemes()
        ]

    def total_breakdown(self) -> CostBreakdown:
        """Aggregate breakdown of the whole allocation schedule."""
        return total(self.breakdowns())

    # -- construction ---------------------------------------------------------

    def extended(self, step: ExecutedRequest) -> "AllocationSchedule":
        """A new allocation schedule with ``step`` appended (the paper's
        *online step* produces exactly this)."""
        return AllocationSchedule(self.initial_scheme, self.steps + (step,))

    @classmethod
    def from_steps(
        cls, initial_scheme, steps: Iterable[ExecutedRequest]
    ) -> "AllocationSchedule":
        return cls(processor_set(initial_scheme), tuple(steps))


def data_processors(
    schedule: AllocationSchedule, index: int
) -> ProcessorSet:
    """The *data processors* at request ``index`` (paper §3.1): members
    of the allocation scheme at that request."""
    return schedule.scheme_at(index)


def check_request_order_preserved(
    allocation: AllocationSchedule, schedule: Schedule
) -> None:
    """Raise if ``allocation`` does not correspond to ``schedule``.

    Used by tests and the DOM-runner to assert that algorithms never
    reorder, drop or invent requests.
    """
    produced = allocation.schedule()
    if produced != schedule:
        raise IllegalScheduleError(
            "allocation schedule does not correspond to the input schedule: "
            f"expected {schedule}, got {produced}"
        )
