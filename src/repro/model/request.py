"""Read/write requests and their executed forms.

Paper §3.1: *"A schedule is a finite sequence of read-write requests to
the object, each of which is issued by a processor."*  This module
defines the request objects and the *executed request* — a request
paired with its execution set and (for reads) the saving-read flag.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.types import ProcessorId, ProcessorSet, processor_set


class RequestKind(enum.Enum):
    """The two request kinds of the model."""

    READ = "r"
    WRITE = "w"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, slots=True)
class Request:
    """A read or write request issued by a processor.

    The paper writes ``r1`` for a read issued by processor 1 and ``w2``
    for a write issued by processor 2; :meth:`parse` accepts exactly
    this notation.
    """

    kind: RequestKind
    processor: ProcessorId

    def __post_init__(self) -> None:
        if self.processor < 0:
            raise ConfigurationError(
                f"processor ids must be non-negative, got {self.processor}"
            )

    @property
    def is_read(self) -> bool:
        return self.kind is RequestKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is RequestKind.WRITE

    _TOKEN = re.compile(r"^([rw])(\d+)$")

    @classmethod
    def parse(cls, token: str) -> "Request":
        """Parse a single token in the paper's notation.

        >>> Request.parse("r1")
        Request(kind=<RequestKind.READ: 'r'>, processor=1)
        >>> Request.parse("w42").is_write
        True
        """
        match = cls._TOKEN.match(token.strip())
        if match is None:
            raise ConfigurationError(f"cannot parse request token {token!r}")
        kind = RequestKind.READ if match.group(1) == "r" else RequestKind.WRITE
        return cls(kind, int(match.group(2)))

    def __str__(self) -> str:
        return f"{self.kind.value}{self.processor}"


def read(processor: ProcessorId) -> Request:
    """Convenience constructor for a read request."""
    return Request(RequestKind.READ, processor)


def write(processor: ProcessorId) -> Request:
    """Convenience constructor for a write request."""
    return Request(RequestKind.WRITE, processor)


@dataclass(frozen=True, slots=True)
class ExecutedRequest:
    """A request together with its execution set and saving flag.

    Paper §3.1: *"Each request is mapped to a set of processors, namely
    the execution set of the request."*  A read that stores the object
    in the reader's local database is a *saving-read*, denoted by an
    underline in the paper and by ``saving=True`` here.
    """

    request: Request
    execution_set: ProcessorSet
    saving: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "execution_set", processor_set(self.execution_set))
        if not self.execution_set:
            raise ConfigurationError(
                f"execution set of {self.request} must be non-empty"
            )
        if self.saving and not self.request.is_read:
            raise ConfigurationError("only read requests can be saving-reads")

    @property
    def processor(self) -> ProcessorId:
        """The processor that issued the request."""
        return self.request.processor

    @property
    def is_read(self) -> bool:
        return self.request.is_read

    @property
    def is_write(self) -> bool:
        return self.request.is_write

    @property
    def is_saving_read(self) -> bool:
        return self.request.is_read and self.saving

    def __str__(self) -> str:
        members = ",".join(str(p) for p in sorted(self.execution_set))
        marker = "_" if self.saving else ""
        return f"{marker}{self.request}{{{members}}}"
