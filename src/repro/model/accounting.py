"""Cost accounting: break the cost of a request into its components.

The paper's cost function (§3.2, §3.3) charges three kinds of units:

* I/O operations against a local database (``c_io``, normalized to 1 in
  the stationary model and 0 in the mobile model),
* control messages (``c_c``) — request and invalidate messages,
* data messages (``c_d``) — messages that carry the object.

:class:`CostBreakdown` keeps the three *counts* separate so the same
execution can be re-priced under different ``(c_io, c_c, c_d)``
parameters, and so the discrete-event simulator's message/I/O counters
can be compared unit-for-unit against the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CostBreakdown:
    """Counts of I/O operations, control messages and data messages.

    Immutable and additive: breakdowns compose with ``+`` and scale with
    ``*`` so per-request breakdowns can be summed into schedule totals.
    """

    io_ops: int = 0
    control_messages: int = 0
    data_messages: int = 0

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        if not isinstance(other, CostBreakdown):
            return NotImplemented
        return CostBreakdown(
            self.io_ops + other.io_ops,
            self.control_messages + other.control_messages,
            self.data_messages + other.data_messages,
        )

    def __mul__(self, times: int) -> "CostBreakdown":
        return CostBreakdown(
            self.io_ops * times,
            self.control_messages * times,
            self.data_messages * times,
        )

    __rmul__ = __mul__

    def priced(self, c_io: float, c_c: float, c_d: float) -> float:
        """Total cost of this breakdown under the given unit prices."""
        return (
            self.io_ops * c_io
            + self.control_messages * c_c
            + self.data_messages * c_d
        )

    @property
    def total_messages(self) -> int:
        return self.control_messages + self.data_messages

    def __str__(self) -> str:
        return (
            f"{self.io_ops} io + {self.control_messages} ctrl"
            f" + {self.data_messages} data"
        )


#: The zero breakdown, handy as a fold seed.
ZERO = CostBreakdown()


def total(breakdowns) -> CostBreakdown:
    """Sum an iterable of breakdowns."""
    result = ZERO
    for item in breakdowns:
        result = result + item
    return result
