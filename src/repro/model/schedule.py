"""Schedules: finite sequences of read-write requests.

Paper §3.1 example: ``psi_0 = w2 r4 w3 r1 r2`` is a schedule in which
the first request is a write from processor 2, the second a read from
processor 4, and so on.  :class:`Schedule` is an immutable sequence of
:class:`~repro.model.request.Request` objects with parsing, statistics
and slicing helpers used throughout the workload generators and
benchmark harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.exceptions import ConfigurationError
from repro.model.request import Request, RequestKind
from repro.types import ProcessorId, ProcessorSet, processor_set


@dataclass(frozen=True)
class Schedule:
    """An immutable finite sequence of read-write requests."""

    requests: tuple[Request, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        for item in self.requests:
            if not isinstance(item, Request):
                raise ConfigurationError(
                    f"schedule items must be Request objects, got {item!r}"
                )

    # -- construction --------------------------------------------------

    @classmethod
    def from_requests(cls, requests: Iterable[Request]) -> "Schedule":
        return cls(tuple(requests))

    @classmethod
    def parse(cls, text: str) -> "Schedule":
        """Parse a whitespace-separated schedule in the paper's notation.

        >>> str(Schedule.parse("w2 r4 w3 r1 r2"))
        'w2 r4 w3 r1 r2'
        """
        return cls(tuple(Request.parse(token) for token in text.split()))

    # -- sequence protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Schedule(self.requests[index])
        return self.requests[index]

    def __add__(self, other: "Schedule") -> "Schedule":
        if not isinstance(other, Schedule):
            return NotImplemented
        return Schedule(self.requests + other.requests)

    def __mul__(self, times: int) -> "Schedule":
        """Repeat the schedule ``times`` times (used to build the
        arbitrarily long request sequences of the lower-bound
        constructions)."""
        if times < 0:
            raise ConfigurationError("repetition count must be non-negative")
        return Schedule(self.requests * times)

    __rmul__ = __mul__

    def __str__(self) -> str:
        return " ".join(str(r) for r in self.requests)

    # -- statistics ------------------------------------------------------

    @property
    def processors(self) -> ProcessorSet:
        """The set of processors issuing at least one request."""
        return processor_set(r.processor for r in self.requests)

    @property
    def read_count(self) -> int:
        return sum(1 for r in self.requests if r.is_read)

    @property
    def write_count(self) -> int:
        return sum(1 for r in self.requests if r.is_write)

    @property
    def write_fraction(self) -> float:
        """Fraction of requests that are writes (0.0 for an empty schedule)."""
        if not self.requests:
            return 0.0
        return self.write_count / len(self.requests)

    def reads_by(self, processor: ProcessorId) -> int:
        return sum(
            1 for r in self.requests if r.is_read and r.processor == processor
        )

    def writes_by(self, processor: ProcessorId) -> int:
        return sum(
            1 for r in self.requests if r.is_write and r.processor == processor
        )

    def request_counts(self) -> dict[ProcessorId, dict[str, int]]:
        """Per-processor read/write counts, e.g. for convergent baselines.

        Returns a mapping ``processor -> {"reads": n, "writes": m}``.
        """
        counts: dict[ProcessorId, dict[str, int]] = {}
        for request in self.requests:
            entry = counts.setdefault(request.processor, {"reads": 0, "writes": 0})
            key = "reads" if request.is_read else "writes"
            entry[key] += 1
        return counts

    # -- transformations ---------------------------------------------------

    def prefix(self, length: int) -> "Schedule":
        """The first ``length`` requests of the schedule."""
        return Schedule(self.requests[:length])

    def runs(self) -> list[tuple[RequestKind, ProcessorId, int]]:
        """Run-length encode the schedule as ``(kind, processor, count)``
        triples — useful for human-readable summaries of long workloads."""
        encoded: list[tuple[RequestKind, ProcessorId, int]] = []
        for request in self.requests:
            if (
                encoded
                and encoded[-1][0] is request.kind
                and encoded[-1][1] == request.processor
            ):
                kind, proc, count = encoded[-1]
                encoded[-1] = (kind, proc, count + 1)
            else:
                encoded.append((request.kind, request.processor, 1))
        return encoded


def concat(schedules: Sequence[Schedule]) -> Schedule:
    """Concatenate several schedules into one."""
    requests: list[Request] = []
    for schedule in schedules:
        requests.extend(schedule.requests)
    return Schedule(tuple(requests))
