"""The per-request cost functions of paper §3.2 (SC) and §3.3 (MC).

The two cost models differ only in the price of an I/O operation
(``c_io = 1`` for stationary computing, ``c_io = 0`` for mobile
computing), so we compute a *price-independent*
:class:`~repro.model.accounting.CostBreakdown` — counts of I/O
operations, control messages and data messages — and let the cost model
price it.  The counts below transcribe the paper's formulas exactly:

Non-saving read ``r_i`` with execution set ``X``::

    i in X:      (|X|-1) control + |X| io + (|X|-1) data
    i not in X:  |X| control     + |X| io + |X| data

Saving read: one extra I/O operation ("to account for the extra I/O
cost to save the object in the local database at i").  In the mobile
model this extra I/O prices to zero, reproducing §3.3's "the cost of a
saving-read does not differ from that of a non-saving read".

Write ``w_i`` with execution set ``X`` and allocation scheme ``Y`` at
the request::

    i in X:      |Y \\ X| control + (|X|-1) data + |X| io
    i not in X:  |Y \\ X \\ {i}| control + |X| data + |X| io

The control messages of a write are the ``invalidate`` messages sent to
the processors whose copy becomes obsolete; the writer itself never
needs an invalidation.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.model.accounting import CostBreakdown
from repro.model.request import ExecutedRequest
from repro.types import ProcessorSet


def read_breakdown(
    executed: ExecutedRequest, scheme: ProcessorSet
) -> CostBreakdown:
    """Breakdown of a (possibly saving) read request.

    ``scheme`` is the allocation scheme at the request; it is accepted
    for interface symmetry with :func:`write_breakdown` but the read
    cost depends only on the execution set and the issuing processor.
    """
    if not executed.is_read:
        raise ConfigurationError(f"{executed} is not a read request")
    x_size = len(executed.execution_set)
    if executed.processor in executed.execution_set:
        breakdown = CostBreakdown(
            io_ops=x_size,
            control_messages=x_size - 1,
            data_messages=x_size - 1,
        )
    else:
        breakdown = CostBreakdown(
            io_ops=x_size,
            control_messages=x_size,
            data_messages=x_size,
        )
    if executed.saving:
        breakdown = breakdown + CostBreakdown(io_ops=1)
    return breakdown


def write_breakdown(
    executed: ExecutedRequest, scheme: ProcessorSet
) -> CostBreakdown:
    """Breakdown of a write request given the scheme ``Y`` at the request."""
    if not executed.is_write:
        raise ConfigurationError(f"{executed} is not a write request")
    execution_set = executed.execution_set
    x_size = len(execution_set)
    stale = scheme - execution_set
    if executed.processor in execution_set:
        return CostBreakdown(
            io_ops=x_size,
            control_messages=len(stale),
            data_messages=x_size - 1,
        )
    return CostBreakdown(
        io_ops=x_size,
        control_messages=len(stale - {executed.processor}),
        data_messages=x_size,
    )


def request_breakdown(
    executed: ExecutedRequest, scheme: ProcessorSet
) -> CostBreakdown:
    """Breakdown of any executed request given the scheme at the request."""
    if executed.is_read:
        return read_breakdown(executed, scheme)
    return write_breakdown(executed, scheme)


def next_scheme(
    executed: ExecutedRequest, scheme: ProcessorSet
) -> ProcessorSet:
    """The allocation scheme *after* executing ``executed`` on ``scheme``.

    Paper §3.1 semantics:

    * a write creates a new version; only the processors of its
      execution set hold it, so the new scheme **is** the execution set;
    * a saving-read stores the latest version at the reader, so the
      reader joins the scheme;
    * a non-saving read leaves the scheme unchanged.
    """
    if executed.is_write:
        return executed.execution_set
    if executed.saving:
        return scheme | {executed.processor}
    return scheme
