"""The formal model of paper §3: schedules, allocation schedules, costs.

Public surface:

* :class:`~repro.model.request.Request`,
  :func:`~repro.model.request.read`, :func:`~repro.model.request.write`,
  :class:`~repro.model.request.ExecutedRequest`
* :class:`~repro.model.schedule.Schedule`
* :class:`~repro.model.allocation.AllocationSchedule`
* :class:`~repro.model.cost_model.CostModel`,
  :func:`~repro.model.cost_model.stationary`,
  :func:`~repro.model.cost_model.mobile`
* :class:`~repro.model.accounting.CostBreakdown`
"""

from repro.model.accounting import CostBreakdown
from repro.model.allocation import AllocationSchedule
from repro.model.cost_model import CostModel, mobile, stationary
from repro.model.heterogeneous import HeterogeneousCostModel, homogeneous
from repro.model.partial_order import (
    PartialSchedule,
    ReadGroup,
    cost_is_linearization_invariant,
)
from repro.model.costs import (
    next_scheme,
    read_breakdown,
    request_breakdown,
    write_breakdown,
)
from repro.model.request import ExecutedRequest, Request, RequestKind, read, write
from repro.model.schedule import Schedule, concat

__all__ = [
    "AllocationSchedule",
    "CostBreakdown",
    "CostModel",
    "ExecutedRequest",
    "HeterogeneousCostModel",
    "PartialSchedule",
    "ReadGroup",
    "Request",
    "RequestKind",
    "Schedule",
    "concat",
    "cost_is_linearization_invariant",
    "homogeneous",
    "mobile",
    "next_scheme",
    "read",
    "read_breakdown",
    "request_breakdown",
    "stationary",
    "write",
    "write_breakdown",
]
