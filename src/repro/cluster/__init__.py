"""repro.cluster — a live replica cluster serving SA/DA over sockets.

The third realization of the paper's algorithms, after the stepped
analytic model (:mod:`repro.core`) and the discrete-event simulator
(:mod:`repro.distsim`): real asyncio nodes, real length-prefixed JSON
frames on real TCP or Unix-domain sockets, per-node metrics that map
1:1 onto the paper's ``c_c``/``c_d``/I-O accounting.  The headline
invariant — asserted end-to-end in ``tests/integration`` — is that a
replayed trace produces *bit-identical* message and I/O totals across
all three realizations.

Fault tolerance is opt-in (:class:`~repro.cluster.resilience.RetryPolicy`
on the spec / ``--resilient`` on the CLI): at-least-once retries with
node-side dedup, read failover, typed degraded-write rejection, and a
:class:`~repro.cluster.resilience.SchemeRepairer` that restores the
paper's ``t``-availability after crashes.  Fault-free runs stay
bit-identical with or without it.  See ``docs/chaos.md``.

Durability is likewise opt-in (``state_dir`` on the spec /
``--state-dir`` on the CLI): every correctness-relevant transition is
journaled to a CRC-checksummed write-ahead log before the node acks,
compacted into snapshots, and replayed on restart through a tiered
recovery path that can rejoin a fresh node with *zero* data messages.
See ``docs/durability.md``.

See ``docs/cluster.md`` for the architecture and wire format.
"""

from repro.cluster.launcher import (
    ClusterHandle,
    ClusterSpec,
    LocalCluster,
    SubprocessCluster,
    start_cluster,
    start_local_cluster,
    start_subprocess_cluster,
)
from repro.cluster.loadgen import (
    ClusterClient,
    LoadResult,
    RequestOutcome,
    poisson_load,
    replay_schedule,
)
from repro.cluster.durability import (
    DurableState,
    NodeDurability,
    node_state_dir,
    snapshot_path,
    wal_path,
)
from repro.cluster.metrics import (
    NodeMetrics,
    aggregate,
    durability_totals,
    latency_histogram,
    resilience_totals,
)
from repro.cluster.node import NodeConfig, NodeServer
from repro.cluster.protocol import (
    LiveDynamicAllocation,
    LiveProtocol,
    LiveStaticAllocation,
    make_live_protocol,
)
from repro.cluster.resilience import (
    DedupCache,
    RepairReport,
    RetryPolicy,
    SchemeRepairer,
)
from repro.cluster.transport import Address, FaultPlan, PeerTransport

__all__ = [
    "Address",
    "ClusterClient",
    "ClusterHandle",
    "ClusterSpec",
    "DedupCache",
    "DurableState",
    "FaultPlan",
    "LiveDynamicAllocation",
    "LiveProtocol",
    "LiveStaticAllocation",
    "LoadResult",
    "LocalCluster",
    "NodeConfig",
    "NodeDurability",
    "NodeMetrics",
    "NodeServer",
    "PeerTransport",
    "RepairReport",
    "RequestOutcome",
    "RetryPolicy",
    "SchemeRepairer",
    "SubprocessCluster",
    "aggregate",
    "durability_totals",
    "latency_histogram",
    "make_live_protocol",
    "node_state_dir",
    "resilience_totals",
    "poisson_load",
    "replay_schedule",
    "snapshot_path",
    "start_cluster",
    "start_local_cluster",
    "start_subprocess_cluster",
    "wal_path",
]
