"""Live protocol adapters: distsim's SA/DA logic over real sockets.

The discrete-event drivers in :mod:`repro.distsim.protocols` centralize
the protocol state machine in one object that handles every node's
messages.  A live cluster cannot: each node only owns *its* volatile
state (DA join-lists) and *its* database.  The adapters below therefore
distribute the drivers' responsibilities to the nodes that own them —
the serving member records joiners, each member of ``F`` walks its own
join-list on a write — while the decision rules themselves (execution
sets, invalidation targets, store targets) are imported from the
distsim modules (:func:`~repro.distsim.protocols.da_protocol.da_execution_set`,
:func:`~repro.distsim.protocols.da_protocol.da_invalidation_targets`,
:func:`~repro.distsim.protocols.sa_protocol.sa_store_targets`), so the
two realizations can never disagree about *what* to send.

Message-for-message the traffic is identical to the simulated drivers
(same senders, same receivers, same classes), which is what makes the
end-to-end parity claim exact: live counts == simulated counts ==
stepped accounting == kernel.

Completion tracking uses uncharged ``done`` frames (the wire analogue
of the simulator's ``on_delivered`` oracle) arranged hierarchically:
the origin node awaits its direct sends; a member of ``F`` that relays
invalidations on behalf of a write acknowledges the store only after
its own invalidations are acknowledged.  Running each request to
quiescence before the next starts realizes the paper's totally-ordered
schedules exactly like the simulator does.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, List, Optional

from repro.distsim.messages import (
    DataTransfer,
    Invalidate,
    Message,
    ReadRequest,
    VersionInquiry,
    VersionReport,
)
from repro.distsim.protocols.da_protocol import (
    da_execution_set,
    da_invalidation_targets,
)
from repro.distsim.protocols.sa_protocol import sa_store_targets
from repro.exceptions import ClusterDegradedError, ClusterError, StorageError
from repro.storage.versions import ObjectVersion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import NodeServer


class LiveProtocol:
    """Base of the node-side protocol adapters."""

    name = "live-abstract"

    def __init__(self, node: "NodeServer") -> None:
        self.node = node
        self.scheme = frozenset(node.config.scheme)
        if len(self.scheme) < 2:
            raise ClusterError("the initial scheme must have t >= 2 members")

    @property
    def me(self) -> int:
        return self.node.node_id

    @property
    def resilient(self) -> bool:
        """True when the node runs with a retry policy installed.

        Resilient mode changes failure *semantics* only: reads fail
        over across holders, writes reject (typed) instead of silently
        settling over a permanently lost message, and DA join-lists use
        lazy removal.  On a fault-free run every branch below reduces to
        the non-resilient behavior, message for message — asserted by
        the parity tests."""
        return self.node.resilience is not None

    def update_scheme(self, members) -> None:
        """Adopt a repaired allocation scheme (admin ``set_scheme``)."""
        raise ClusterError(
            f"{self.name} does not support scheme updates"
        )

    def probe_candidates(self) -> List[int]:
        """Peers a recovering node asks to vouch for its logged version
        (one control round trip each), in the read-failover order."""
        return sorted(self.scheme - {self.me})

    async def _handle_common(self, message: Message) -> bool:
        """Protocol-independent messages: the recovery freshness probe.

        A ``VersionInquiry`` is answered from the uncharged version peek
        (the paper prices the probe as the control round trip, not as
        I/O); a ``VersionReport`` resolves one of our own probes.
        Returns True when the message was consumed here."""
        if isinstance(message, VersionInquiry):
            version = self.node.database.peek_version()
            delivered = await self.node.transport.send_protocol(
                VersionReport(
                    self.me,
                    message.sender,
                    request_id=message.request_id,
                    version_number=(
                        version.number if version is not None else -1
                    ),
                    holds_copy=self.node.database.holds_valid_copy,
                )
            )
            if not delivered:
                # Unblock the prober so it can fail over to the next
                # candidate (the oracle plane is never faulted).
                await self.node.transport.send_done(
                    message.sender, message.request_id, dropped=True
                )
            return True
        if isinstance(message, VersionReport):
            self.node.resolve_probe(message)
            return True
        return False

    async def client_read(self, rid: int) -> ObjectVersion:
        raise NotImplementedError

    async def client_write(self, rid: int, version: ObjectVersion) -> None:
        raise NotImplementedError

    async def handle_message(self, message: Message) -> None:
        raise NotImplementedError

    # -- shared building blocks ------------------------------------------

    async def _fan_out(self, rid: int, messages: List[Message]) -> List[bool]:
        """Send concurrently; a sender-side drop of a store or an
        invalidation resolves its work unit immediately (the simulated
        network's ``on_dropped`` rule — the lost copy is moot).  In
        resilient mode a permanent drop instead *fails* the request
        typed: retries already spent their budget, so a live receiver
        missed an update it needed."""
        transport = self.node.transport
        results = await asyncio.gather(
            *(transport.send_protocol(message) for message in messages)
        )
        for message, delivered in zip(messages, results):
            if not delivered:
                if self.resilient:
                    self.node.fail_pending(
                        rid,
                        f"request {rid}: message to {message.receiver} "
                        "was permanently lost after retries",
                        degraded=True,
                    )
                else:
                    self.node.finish_unit(rid, dropped=True)
        return list(results)

    async def _remote_read(self, rid: int, servers: List[int]) -> ObjectVersion:
        """Request the object from the first answering server.

        Non-resilient callers pass exactly one candidate, reproducing
        PR 3's behavior; resilient callers pass a failover list walked
        in order, moving on when a candidate is crashed, unreachable or
        copyless.  Failover is only triggered by *settled* failures (a
        drop or a crash notification), never by slowness, so at most
        one candidate ever answers — no duplicate-response races."""
        last_error: Optional[ClusterError] = None
        for server in servers:
            pending = self.node.open_pending(rid, "r", units=1)
            delivered = await self.node.transport.send_protocol(
                ReadRequest(self.me, server, request_id=rid)
            )
            if not delivered:
                self.node.fail_pending(
                    rid,
                    f"read request from {self.me} to {server} was lost "
                    "in transit",
                )
            try:
                return await pending.result()
            except ClusterDegradedError:
                raise
            except ClusterError as error:
                last_error = error
        if last_error is not None and len(servers) == 1:
            raise last_error
        raise ClusterError(
            f"read {rid} at {self.me}: no reachable copy among "
            f"{servers} ({last_error})"
        )

    async def _serve_read(self, message: ReadRequest, save_copy: bool) -> None:
        """Input the object and ship it back to the requester."""
        try:
            version = self.node.input_object()
        except StorageError:
            # No valid local copy (e.g. freshly recovered, not yet
            # repaired): tell the reader its response is not coming so
            # it can fail over / fail fast instead of timing out.
            await self.node.transport.send_done(
                message.sender, message.request_id, dropped=True
            )
            return
        delivered = await self.node.transport.send_protocol(
            DataTransfer(
                self.me,
                message.sender,
                version=version,
                request_id=message.request_id,
                save_copy=save_copy,
            )
        )
        if not delivered:
            # The response is gone; unblock the reader so it can fail
            # fast instead of hanging (the oracle plane is never faulted).
            await self.node.transport.send_done(
                message.sender, message.request_id, dropped=True
            )


class LiveStaticAllocation(LiveProtocol):
    """SA (§4.2.1) served live: read-one-write-all over a fixed ``Q``."""

    name = "SA-live"

    def __init__(self, node: "NodeServer") -> None:
        super().__init__(node)
        self.server = min(self.scheme)

    def update_scheme(self, members) -> None:
        """SA repair grows ``Q`` to cover repaired copy holders.

        The scheme is static under the paper's normal mode; repair is
        the one (failure-mode) mutation, broadcast by the repairer so
        every node routes stores to the full post-repair scheme."""
        scheme = frozenset(int(member) for member in members)
        if len(scheme) < 2:
            raise ClusterError("the scheme must keep t >= 2 members")
        self.scheme = scheme
        self.server = min(scheme)

    async def client_read(self, rid: int) -> ObjectVersion:
        if self.me in self.scheme:
            if not self.resilient or self.node.database.holds_valid_copy:
                return self.node.input_object()
            # Resilient: a freshly recovered member serves from a live
            # peer until a repair round restores its local copy.
            candidates = sorted(self.scheme - {self.me})
        elif self.resilient:
            candidates = sorted(self.scheme)
        else:
            candidates = [self.server]
        return await self._remote_read(rid, candidates)

    async def client_write(self, rid: int, version: ObjectVersion) -> None:
        targets = sa_store_targets(self.scheme, self.me)
        pending = self.node.open_pending(rid, "w", units=len(targets))
        if self.me in self.scheme:
            self.node.output_object(version)
        try:
            await self._fan_out(
                rid,
                [
                    DataTransfer(
                        self.me, member, version=version, request_id=rid,
                        save_copy=True,
                    )
                    for member in targets
                ],
            )
            await pending.result()
        except ClusterError:
            if self.resilient and self.me in self.scheme:
                # Roll back the unacknowledged local copy so no replica
                # serves a version newer than the last acknowledged one
                # as if it were committed.
                self.node.invalidate_object()
            raise
        if (
            self.resilient
            and self.me not in self.scheme
            and targets
            and set(targets) <= pending.crash_settled
        ):
            raise ClusterDegradedError(
                f"write {rid}: every scheme member is crashed; "
                "no live replica holds the update"
            )

    async def handle_message(self, message: Message) -> None:
        if await self._handle_common(message):
            return
        if isinstance(message, ReadRequest):
            # Outsiders do not save the copy under SA.
            await self._serve_read(message, save_copy=False)
        elif isinstance(message, DataTransfer):
            if self.node.resolve_read(message.request_id, message.version):
                return  # my own read response; SA readers never save
            self.node.output_object(message.version)
            await self.node.transport.send_done(
                message.sender, message.request_id
            )
        else:
            raise ClusterError(
                f"{self.name} got unexpected {message.describe()}"
            )


class LiveDynamicAllocation(LiveProtocol):
    """DA (§4.2.2) served live: save-on-read / invalidate-on-write."""

    name = "DA-live"

    def __init__(self, node: "NodeServer") -> None:
        super().__init__(node)
        primary = node.config.primary
        if primary is None:
            primary = max(self.scheme)
        if primary not in self.scheme:
            raise ClusterError(
                f"primary {primary} is not in the scheme {sorted(self.scheme)}"
            )
        self.primary = primary
        self.core = frozenset(self.scheme - {primary})
        if not self.core:
            raise ClusterError("F must be non-empty (t >= 2)")
        self.server = min(self.core)
        if self.me == self.server:
            # The primary starts as a recorded non-core holder, exactly
            # as the simulated driver seeds the server's join-list.
            node.join_list.add(self.primary)

    def probe_candidates(self) -> List[int]:
        # Core members first (mirrors the resilient read failover), then
        # the primary — it holds a copy whenever no core member does.
        candidates = sorted(self.core - {self.me})
        if self.primary != self.me:
            candidates.append(self.primary)
        return candidates

    async def client_read(self, rid: int) -> ObjectVersion:
        if self.node.database.holds_valid_copy:
            return self.node.input_object()
        if not self.resilient:
            return await self._remote_read(rid, [self.server])
        # Failover order: core members ascending (the first is exactly
        # the non-resilient server, keeping fault-free traffic
        # identical), then the primary — it holds a copy whenever no
        # core member does (e.g. all of F crashed and was repaired).
        candidates = sorted(self.core - {self.me})
        if self.primary != self.me:
            candidates.append(self.primary)
        return await self._remote_read(rid, candidates)

    async def client_write(self, rid: int, version: ObjectVersion) -> None:
        execution_set = da_execution_set(self.core, self.primary, self.me)
        own_targets: List[int] = []
        if self.me in self.core:
            own_targets = da_invalidation_targets(
                self.node.join_list, execution_set, self.me
            )
        stores = sorted(execution_set - {self.me})
        pending = self.node.open_pending(
            rid, "w", units=len(stores) + len(own_targets)
        )
        self.node.output_object(version)
        if self.me in self.core:
            if self.resilient:
                # Lazy discipline: a target leaves the join-list only
                # once its invalidation settles — delivered (below) or
                # the target crashed (`done dropped` via this record in
                # :meth:`NodeServer._handle_done`).  Clearing up front,
                # as the fault-free discipline may, would forget a
                # holder whose invalidation is then permanently lost.
                self.node._inval_targets[rid] = set(own_targets)
            else:
                self._restart_join_list(execution_set)
        messages: List[Message] = [
            DataTransfer(
                self.me, member, version=version, request_id=rid,
                save_copy=True,
            )
            for member in stores
        ]
        messages += [
            Invalidate(
                self.me, target, version_number=version.number, request_id=rid
            )
            for target in own_targets
        ]
        try:
            results = await self._fan_out(rid, messages)
            if self.resilient and self.me in self.core:
                for message, delivered in zip(messages, results):
                    if delivered and isinstance(message, Invalidate):
                        # On the wire to a live target: the copy there is
                        # invalid either way (the frame invalidates it, a
                        # crash would too).
                        self.node.join_list.discard(message.receiver)
                if self.me == self.server or self.node.steward:
                    # The stores just (re)validated the non-core members
                    # of the execution set — the primary, for a core
                    # writer — so record them for future invalidation,
                    # exactly as `_restart_join_list` does fault-free.
                    self.node.join_list.update(execution_set - self.core)
            await pending.result()
        except ClusterError:
            if self.resilient:
                # The update was not acknowledged; drop the local copy
                # so this node cannot serve it as if committed.
                self.node.invalidate_object()
            raise
        if self.resilient and self.me not in self.core:
            core_stores = {target for target in stores if target in self.core}
            if core_stores and core_stores <= pending.crash_settled:
                self.node.invalidate_object()
                raise ClusterDegradedError(
                    f"write {rid}: every member of F crashed during the "
                    "store; reads routed through F would miss the update"
                )

    def _restart_join_list(self, execution_set) -> None:
        """Clear the walked join-list; the serving member then records
        the new execution set's non-core holders."""
        self.node.join_list.clear()
        if self.me == self.server:
            self.node.join_list.update(execution_set - self.core)

    async def handle_message(self, message: Message) -> None:
        if await self._handle_common(message):
            return
        if isinstance(message, ReadRequest):
            if message.sender not in self.core:
                self.node.join_list.add(message.sender)
            # The reader saves the copy: a saving-read.
            await self._serve_read(message, save_copy=True)
        elif isinstance(message, DataTransfer):
            await self._handle_data_transfer(message)
        elif isinstance(message, Invalidate):
            self.node.invalidate_object()
            await self.node.transport.send_done(
                message.sender, message.request_id
            )
        else:
            raise ClusterError(
                f"{self.name} got unexpected {message.describe()}"
            )

    async def _handle_data_transfer(self, message: DataTransfer) -> None:
        rid = message.request_id
        if self.node.resolve_read(rid, message.version, save=True):
            return  # my own saving-read response (saved in resolve_read)
        # A store from a writer: output, then (members of F) walk the
        # join-list and invalidate stale holders before acknowledging.
        self.node.output_object(message.version)
        writer = message.sender
        if self.me in self.core:
            execution_set = da_execution_set(self.core, self.primary, writer)
            targets = da_invalidation_targets(
                self.node.join_list, execution_set, writer
            )
            if self.resilient:
                # Lazy discipline (see `client_write`): targets leave
                # the list per settled invalidation, never wholesale.
                # The new non-core holders are merged in immediately —
                # they hold the version being written, so forgetting
                # them would be unsafe, not conservative.
                if self.me == self.server or self.node.steward:
                    self.node.join_list.update(execution_set - self.core)
            else:
                self._restart_join_list(execution_set)
            if targets:
                self.node.open_relay(
                    rid,
                    upstream=writer,
                    units=len(targets),
                    targets=set(targets),
                )
                await self._relay_invalidations(
                    rid, message.version.number, targets
                )
                return  # the relay acknowledges upstream when drained
        await self.node.transport.send_done(writer, rid)

    async def _relay_invalidations(
        self, rid: int, version_number: int, targets: List[int]
    ) -> None:
        transport = self.node.transport
        results = await asyncio.gather(
            *(
                transport.send_protocol(
                    Invalidate(
                        self.me, target, version_number=version_number,
                        request_id=rid,
                    )
                )
                for target in targets
            )
        )
        for target, delivered in zip(targets, results):
            if delivered:
                if self.resilient:
                    self.node.join_list.discard(target)
            elif self.resilient:
                # Retries exhausted on a live target: a stale valid copy
                # may survive there.  Propagate the failure upstream so
                # the writer rejects instead of acknowledging.
                await self.node.finish_relay_unit(rid, failed=True)
            else:
                await self.node.finish_relay_unit(rid)


def make_live_protocol(name: str, node: "NodeServer") -> LiveProtocol:
    """Build a live adapter by the protocol's short name."""
    key = name.strip().upper()
    if key == "SA":
        return LiveStaticAllocation(node)
    if key == "DA":
        return LiveDynamicAllocation(node)
    raise ClusterError(f"unknown live protocol {name!r}; known: SA, DA")
