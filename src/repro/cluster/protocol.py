"""Live protocol adapters: distsim's SA/DA logic over real sockets.

The discrete-event drivers in :mod:`repro.distsim.protocols` centralize
the protocol state machine in one object that handles every node's
messages.  A live cluster cannot: each node only owns *its* volatile
state (DA join-lists) and *its* database.  The adapters below therefore
distribute the drivers' responsibilities to the nodes that own them —
the serving member records joiners, each member of ``F`` walks its own
join-list on a write — while the decision rules themselves (execution
sets, invalidation targets, store targets) are imported from the
distsim modules (:func:`~repro.distsim.protocols.da_protocol.da_execution_set`,
:func:`~repro.distsim.protocols.da_protocol.da_invalidation_targets`,
:func:`~repro.distsim.protocols.sa_protocol.sa_store_targets`), so the
two realizations can never disagree about *what* to send.

Message-for-message the traffic is identical to the simulated drivers
(same senders, same receivers, same classes), which is what makes the
end-to-end parity claim exact: live counts == simulated counts ==
stepped accounting == kernel.

Completion tracking uses uncharged ``done`` frames (the wire analogue
of the simulator's ``on_delivered`` oracle) arranged hierarchically:
the origin node awaits its direct sends; a member of ``F`` that relays
invalidations on behalf of a write acknowledges the store only after
its own invalidations are acknowledged.  Running each request to
quiescence before the next starts realizes the paper's totally-ordered
schedules exactly like the simulator does.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, List

from repro.distsim.messages import DataTransfer, Invalidate, Message, ReadRequest
from repro.distsim.protocols.da_protocol import (
    da_execution_set,
    da_invalidation_targets,
)
from repro.distsim.protocols.sa_protocol import sa_store_targets
from repro.exceptions import ClusterError
from repro.storage.versions import ObjectVersion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import NodeServer


class LiveProtocol:
    """Base of the node-side protocol adapters."""

    name = "live-abstract"

    def __init__(self, node: "NodeServer") -> None:
        self.node = node
        self.scheme = frozenset(node.config.scheme)
        if len(self.scheme) < 2:
            raise ClusterError("the initial scheme must have t >= 2 members")

    @property
    def me(self) -> int:
        return self.node.node_id

    async def client_read(self, rid: int) -> ObjectVersion:
        raise NotImplementedError

    async def client_write(self, rid: int, version: ObjectVersion) -> None:
        raise NotImplementedError

    async def handle_message(self, message: Message) -> None:
        raise NotImplementedError

    # -- shared building blocks ------------------------------------------

    async def _fan_out(self, rid: int, messages: List[Message]) -> None:
        """Send concurrently; a sender-side drop of a store or an
        invalidation resolves its work unit immediately (the simulated
        network's ``on_dropped`` rule — the lost copy is moot)."""
        transport = self.node.transport
        results = await asyncio.gather(
            *(transport.send_protocol(message) for message in messages)
        )
        for message, delivered in zip(messages, results):
            if not delivered:
                self.node.finish_unit(rid, dropped=True)

    async def _remote_read(self, rid: int, server: int) -> ObjectVersion:
        """Request the object from ``server`` and await the response."""
        pending = self.node.open_pending(rid, "r", units=1)
        delivered = await self.node.transport.send_protocol(
            ReadRequest(self.me, server, request_id=rid)
        )
        if not delivered:
            self.node.fail_pending(
                rid,
                f"read request from {self.me} to {server} was lost in transit",
            )
        return await pending.result()

    async def _serve_read(self, message: ReadRequest, save_copy: bool) -> None:
        """Input the object and ship it back to the requester."""
        version = self.node.input_object()
        delivered = await self.node.transport.send_protocol(
            DataTransfer(
                self.me,
                message.sender,
                version=version,
                request_id=message.request_id,
                save_copy=save_copy,
            )
        )
        if not delivered:
            # The response is gone; unblock the reader so it can fail
            # fast instead of hanging (the oracle plane is never faulted).
            await self.node.transport.send_done(
                message.sender, message.request_id, dropped=True
            )


class LiveStaticAllocation(LiveProtocol):
    """SA (§4.2.1) served live: read-one-write-all over a fixed ``Q``."""

    name = "SA-live"

    def __init__(self, node: "NodeServer") -> None:
        super().__init__(node)
        self.server = min(self.scheme)

    async def client_read(self, rid: int) -> ObjectVersion:
        if self.me in self.scheme:
            return self.node.input_object()
        return await self._remote_read(rid, self.server)

    async def client_write(self, rid: int, version: ObjectVersion) -> None:
        targets = sa_store_targets(self.scheme, self.me)
        pending = self.node.open_pending(rid, "w", units=len(targets))
        if self.me in self.scheme:
            self.node.output_object(version)
        await self._fan_out(
            rid,
            [
                DataTransfer(
                    self.me, member, version=version, request_id=rid,
                    save_copy=True,
                )
                for member in targets
            ],
        )
        await pending.result()

    async def handle_message(self, message: Message) -> None:
        if isinstance(message, ReadRequest):
            # Outsiders do not save the copy under SA.
            await self._serve_read(message, save_copy=False)
        elif isinstance(message, DataTransfer):
            if self.node.resolve_read(message.request_id, message.version):
                return  # my own read response; SA readers never save
            self.node.output_object(message.version)
            await self.node.transport.send_done(
                message.sender, message.request_id
            )
        else:
            raise ClusterError(
                f"{self.name} got unexpected {message.describe()}"
            )


class LiveDynamicAllocation(LiveProtocol):
    """DA (§4.2.2) served live: save-on-read / invalidate-on-write."""

    name = "DA-live"

    def __init__(self, node: "NodeServer") -> None:
        super().__init__(node)
        primary = node.config.primary
        if primary is None:
            primary = max(self.scheme)
        if primary not in self.scheme:
            raise ClusterError(
                f"primary {primary} is not in the scheme {sorted(self.scheme)}"
            )
        self.primary = primary
        self.core = frozenset(self.scheme - {primary})
        if not self.core:
            raise ClusterError("F must be non-empty (t >= 2)")
        self.server = min(self.core)
        if self.me == self.server:
            # The primary starts as a recorded non-core holder, exactly
            # as the simulated driver seeds the server's join-list.
            node.join_list.add(self.primary)

    async def client_read(self, rid: int) -> ObjectVersion:
        if self.node.database.holds_valid_copy:
            return self.node.input_object()
        return await self._remote_read(rid, self.server)

    async def client_write(self, rid: int, version: ObjectVersion) -> None:
        execution_set = da_execution_set(self.core, self.primary, self.me)
        own_targets: List[int] = []
        if self.me in self.core:
            own_targets = da_invalidation_targets(
                self.node.join_list, execution_set, self.me
            )
        stores = sorted(execution_set - {self.me})
        pending = self.node.open_pending(
            rid, "w", units=len(stores) + len(own_targets)
        )
        self.node.output_object(version)
        if self.me in self.core:
            self._restart_join_list(execution_set)
        messages: List[Message] = [
            DataTransfer(
                self.me, member, version=version, request_id=rid,
                save_copy=True,
            )
            for member in stores
        ]
        messages += [
            Invalidate(
                self.me, target, version_number=version.number, request_id=rid
            )
            for target in own_targets
        ]
        await self._fan_out(rid, messages)
        await pending.result()

    def _restart_join_list(self, execution_set) -> None:
        """Clear the walked join-list; the serving member then records
        the new execution set's non-core holders."""
        self.node.join_list.clear()
        if self.me == self.server:
            self.node.join_list.update(execution_set - self.core)

    async def handle_message(self, message: Message) -> None:
        if isinstance(message, ReadRequest):
            if message.sender not in self.core:
                self.node.join_list.add(message.sender)
            # The reader saves the copy: a saving-read.
            await self._serve_read(message, save_copy=True)
        elif isinstance(message, DataTransfer):
            await self._handle_data_transfer(message)
        elif isinstance(message, Invalidate):
            self.node.database.invalidate()
            await self.node.transport.send_done(
                message.sender, message.request_id
            )
        else:
            raise ClusterError(
                f"{self.name} got unexpected {message.describe()}"
            )

    async def _handle_data_transfer(self, message: DataTransfer) -> None:
        rid = message.request_id
        if self.node.resolve_read(rid, message.version, save=True):
            return  # my own saving-read response (saved in resolve_read)
        # A store from a writer: output, then (members of F) walk the
        # join-list and invalidate stale holders before acknowledging.
        self.node.output_object(message.version)
        writer = message.sender
        if self.me in self.core:
            execution_set = da_execution_set(self.core, self.primary, writer)
            targets = da_invalidation_targets(
                self.node.join_list, execution_set, writer
            )
            self._restart_join_list(execution_set)
            if targets:
                self.node.open_relay(rid, upstream=writer, units=len(targets))
                await self._relay_invalidations(
                    rid, message.version.number, targets
                )
                return  # the relay acknowledges upstream when drained
        await self.node.transport.send_done(writer, rid)

    async def _relay_invalidations(
        self, rid: int, version_number: int, targets: List[int]
    ) -> None:
        transport = self.node.transport
        results = await asyncio.gather(
            *(
                transport.send_protocol(
                    Invalidate(
                        self.me, target, version_number=version_number,
                        request_id=rid,
                    )
                )
                for target in targets
            )
        )
        for delivered in results:
            if not delivered:
                await self.node.finish_relay_unit(rid)


def make_live_protocol(name: str, node: "NodeServer") -> LiveProtocol:
    """Build a live adapter by the protocol's short name."""
    key = name.strip().upper()
    if key == "SA":
        return LiveStaticAllocation(node)
    if key == "DA":
        return LiveDynamicAllocation(node)
    raise ClusterError(f"unknown live protocol {name!r}; known: SA, DA")
