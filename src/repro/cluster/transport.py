"""Live transport: peer links, addressing and fault injection.

Each node owns a :class:`PeerTransport`: one lazily-opened, long-lived
connection per peer, over which it ships charged protocol messages
(``msg`` frames) and uncharged completion notifications (``done``
frames).  Charged sends are counted by paper class at the sender —
exactly where the simulated :class:`~repro.distsim.network.Network`
charges them — so live and simulated totals are comparable unit for
unit.

Fault injection mirrors the two fault planes of the simulator:

* **node faults** (crash/recover) follow the fail-stop semantics of
  :mod:`repro.distsim.failures` and live in the node server — a crashed
  node drops incoming protocol messages and wipes its volatile state;
* **transport faults** (this module) act on the sender side of a link:
  per-link or global *delay*, deterministic or probabilistic *drop*,
  and *partition* (drop-all across groups).  Delays reorder delivery
  but never change what is charged; drops are charged to the sender and
  counted in ``dropped_messages``, matching the simulated network's
  treatment of messages addressed to dead nodes.

Only charged protocol frames are subject to transport faults.  ``done``
frames are the experimenter's completion oracle — the stand-in for the
simulator's omniscient event loop — and always get through.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.cluster.rpc import message_to_wire, write_frame
from repro.cluster.metrics import NodeMetrics
from repro.cluster.resilience import RetryPolicy
from repro.distsim.messages import Message
from repro.exceptions import ClusterError


# -- addressing ------------------------------------------------------------


@dataclass(frozen=True)
class Address:
    """Where a node listens: a TCP endpoint or a Unix-domain socket."""

    kind: str  # "tcp" | "unix"
    host: str = ""
    port: int = 0
    path: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("tcp", "unix"):
            raise ClusterError(f"unknown address kind {self.kind!r}")
        if self.kind == "unix" and not self.path:
            raise ClusterError("unix addresses need a socket path")

    def render(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.path}"
        return f"tcp:{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "Address":
        kind, _, rest = text.strip().partition(":")
        if kind == "unix" and rest:
            return cls("unix", path=rest)
        if kind == "tcp":
            host, _, port = rest.rpartition(":")
            if host and port.isdigit():
                return cls("tcp", host=host, port=int(port))
        raise ClusterError(
            f"cannot parse address {text!r} "
            "(expected tcp:HOST:PORT or unix:/path.sock)"
        )


async def open_channel(
    address: Address,
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Connect to a node's listening address."""
    if address.kind == "unix":
        return await asyncio.open_unix_connection(address.path)
    return await asyncio.open_connection(address.host, address.port)


async def start_server(address: Address, handler) -> Tuple[Any, Address]:
    """Bind a listener; returns the server and the *actual* address.

    TCP addresses with port 0 are resolved to the ephemeral port the
    kernel picked, so launchers can bind first and wire peers after.
    """
    if address.kind == "unix":
        server = await asyncio.start_unix_server(handler, path=address.path)
        return server, address
    server = await asyncio.start_server(handler, address.host, address.port)
    port = server.sockets[0].getsockname()[1]
    return server, Address("tcp", host=address.host, port=port)


# -- fault plans ----------------------------------------------------------


@dataclass
class FaultPlan:
    """Sender-side transport faults, deterministic under a seed.

    ``default_delay`` and ``link_delays`` are in seconds; ``drop_next``
    drops the next *k* messages on a link; ``drop_probability`` drops
    each message with probability p using a seeded RNG;
    ``blocked_links`` drop everything on a link; ``partitions`` groups
    node ids — messages crossing group boundaries are dropped (a node
    listed in no group is its own island).
    """

    default_delay: float = 0.0
    link_delays: Dict[Tuple[int, int], float] = field(default_factory=dict)
    blocked_links: FrozenSet[Tuple[int, int]] = frozenset()
    drop_next: Dict[Tuple[int, int], int] = field(default_factory=dict)
    drop_probability: float = 0.0
    seed: int = 0
    partitions: Tuple[FrozenSet[int], ...] = ()

    def __post_init__(self) -> None:
        if self.default_delay < 0 or any(
            delay < 0 for delay in self.link_delays.values()
        ):
            raise ClusterError("delays must be non-negative")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ClusterError("drop_probability must be within [0, 1]")
        self._rng = random.Random(self.seed)

    def delay_for(self, sender: int, receiver: int) -> float:
        return self.link_delays.get((sender, receiver), self.default_delay)

    def _group_of(self, node_id: int):
        for index, group in enumerate(self.partitions):
            if node_id in group:
                return index
        # Unlisted nodes are their own island: a partition statement is
        # a complete description of who can reach whom.
        return ("island", node_id)

    def crosses_partition(self, sender: int, receiver: int) -> bool:
        if not self.partitions:
            return False
        return self._group_of(sender) != self._group_of(receiver)

    def should_drop(self, sender: int, receiver: int) -> bool:
        """Decide (and consume budget) whether this send is lost."""
        link = (sender, receiver)
        if link in self.blocked_links or self.crosses_partition(*link):
            return True
        remaining = self.drop_next.get(link, 0)
        if remaining > 0:
            self.drop_next[link] = remaining - 1
            return True
        if self.drop_probability > 0.0:
            return self._rng.random() < self.drop_probability
        return False

    # -- serialization (shipped in admin `fault` frames) -------------------

    def to_wire(self) -> Dict[str, Any]:
        return {
            "default_delay": self.default_delay,
            "link_delays": [
                [src, dst, delay]
                for (src, dst), delay in sorted(self.link_delays.items())
            ],
            "blocked_links": sorted(list(link) for link in self.blocked_links),
            "drop_next": [
                [src, dst, count]
                for (src, dst), count in sorted(self.drop_next.items())
            ],
            "drop_probability": self.drop_probability,
            "seed": self.seed,
            "partitions": [sorted(group) for group in self.partitions],
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            default_delay=float(wire.get("default_delay", 0.0)),
            link_delays={
                (int(src), int(dst)): float(delay)
                for src, dst, delay in wire.get("link_delays", [])
            },
            blocked_links=frozenset(
                (int(src), int(dst))
                for src, dst in wire.get("blocked_links", [])
            ),
            drop_next={
                (int(src), int(dst)): int(count)
                for src, dst, count in wire.get("drop_next", [])
            },
            drop_probability=float(wire.get("drop_probability", 0.0)),
            seed=int(wire.get("seed", 0)),
            partitions=tuple(
                frozenset(int(node) for node in group)
                for group in wire.get("partitions", [])
            ),
        )


# -- the per-node transport -------------------------------------------------


class PeerTransport:
    """One node's outgoing links to its peers."""

    def __init__(
        self,
        node_id: int,
        metrics: NodeMetrics,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.node_id = node_id
        self.metrics = metrics
        self.fault_plan = fault_plan
        self.retry_policy: Optional[RetryPolicy] = None
        self._retry_rng: Optional[random.Random] = None
        self.set_retry_policy(retry_policy)
        self.peers: Dict[int, Address] = {}
        self._links: Dict[
            int, Tuple[asyncio.StreamReader, asyncio.StreamWriter, asyncio.Lock]
        ] = {}
        self._connect_lock = asyncio.Lock()

    def set_peers(self, peers: Mapping[int, Address]) -> None:
        self.peers = dict(peers)

    def set_retry_policy(self, policy: Optional[RetryPolicy]) -> None:
        """Install (or clear) at-least-once retransmission on this node."""
        self.retry_policy = policy
        self._retry_rng = policy.rng_for(self.node_id) if policy else None

    # -- the two send planes ---------------------------------------------

    async def send_protocol(self, message: Message) -> bool:
        """Charge and ship a protocol message; ``False`` if a transport
        fault swallowed it (the charge stands, mirroring the simulated
        network's sender-side accounting for doomed messages).

        With a :class:`~repro.cluster.resilience.RetryPolicy` installed
        the transmission is at-least-once: a faulted attempt backs off
        and re-sends up to the policy's budget.  Only the first attempt
        is charged by paper class — retransmissions count in
        ``retries_sent`` so faulted runs report recovery work without
        perturbing the cost-model accounting."""
        if message.sender != self.node_id:
            raise ClusterError(
                f"node {self.node_id} cannot send on behalf of "
                f"{message.sender}"
            )
        if message.receiver == self.node_id:
            raise ClusterError(
                f"{message.describe()}: a processor does not message itself "
                "(local work is I/O, not communication)"
            )
        self.metrics.charge_message(message)
        return await self._ship(message.receiver, message_to_wire(message))

    async def send_repair(
        self, peer: int, rid: int, version_wire: Mapping[str, Any]
    ) -> bool:
        """Ship a repair copy of the object to ``peer``.

        Charged as **one data message** (what the cost model prices a
        copy transfer at) and counted separately in ``repairs_sent``.
        Subject to transport faults and retries like any charged send."""
        self.metrics.data_sent += 1
        self.metrics.repairs_sent += 1
        payload = {
            "type": "repair",
            "rid": rid,
            "from": self.node_id,
            "version": dict(version_wire),
        }
        return await self._ship(peer, payload)

    async def _ship(self, receiver: int, payload: Mapping[str, Any]) -> bool:
        """One charged transmission, with the fault plan and (when a
        retry policy is installed) backoff retransmissions applied."""
        policy = self.retry_policy
        attempts = policy.attempts if policy is not None else 1
        for attempt in range(attempts):
            plan = self.fault_plan
            if plan is not None and plan.should_drop(self.node_id, receiver):
                self.metrics.dropped_messages += 1
            else:
                delay = plan.delay_for(self.node_id, receiver) if plan else 0.0
                try:
                    await self._write(receiver, payload, delay)
                    return True
                except ClusterError:
                    if policy is None:
                        raise
                    # A dead link is a lost transmission: count it and
                    # fall through to the retry path.
                    self.metrics.dropped_messages += 1
            if attempt + 1 < attempts:
                self.metrics.retries_sent += 1
                assert policy is not None and self._retry_rng is not None
                await asyncio.sleep(policy.backoff(attempt, self._retry_rng))
        return False

    async def send_done(
        self, peer: int, rid: int, dropped: bool = False, failed: bool = False
    ) -> None:
        """Ship an uncharged completion notification (never faulted).

        ``dropped`` reports a unit settled by the receiver's fail-stop
        crash; ``failed`` reports a unit that could NOT settle safely —
        a relayed invalidation permanently lost in transit — so the
        origin can reject the write instead of acknowledging it."""
        payload = {
            "type": "done",
            "rid": rid,
            "from": self.node_id,
            "dropped": dropped,
        }
        if failed:
            payload["failed"] = True
        await self._write(peer, payload, delay=0.0)

    # -- plumbing ---------------------------------------------------------

    async def _link(
        self, peer: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, asyncio.Lock]:
        if peer in self._links:
            return self._links[peer]
        async with self._connect_lock:
            if peer in self._links:
                return self._links[peer]
            if peer not in self.peers:
                raise ClusterError(
                    f"node {self.node_id} has no address for peer {peer}"
                )
            reader, writer = await open_channel(self.peers[peer])
            self._links[peer] = (reader, writer, asyncio.Lock())
            return self._links[peer]

    async def _write(
        self, peer: int, payload: Mapping[str, Any], delay: float
    ) -> None:
        if delay > 0.0:
            await asyncio.sleep(delay)
        for attempt in (0, 1):
            _, writer, lock = await self._link(peer)
            try:
                async with lock:
                    await write_frame(writer, payload)
                return
            except (ConnectionError, OSError) as error:
                self._links.pop(peer, None)
                if attempt:
                    raise ClusterError(
                        f"link {self.node_id} -> {peer} failed: {error}"
                    ) from error

    async def close(self) -> None:
        links: List = list(self._links.values())
        self._links.clear()
        for _, writer, _ in links:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
