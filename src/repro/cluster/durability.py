"""Per-node durable state: typed WAL records folded into recovery state.

This is the glue between the generic log machinery
(:mod:`repro.storage.wal`, :mod:`repro.storage.snapshot`) and the
cluster node's lifecycle.  A :class:`NodeDurability` owns one node's
``state-dir/node-<id>/`` directory (``wal.log`` + ``snapshot.bin``) and
exposes typed appenders for every correctness-relevant transition:

===========  =============================================  ==========
kind         payload                                        folds into
===========  =============================================  ==========
``seed``     the launch-time version                        version, valid
``object``   a stored version (write/saving-read/repair)    version, valid
``inval``    —                                              valid=False
``join``     full join-list membership + steward flag       join_list
``scheme``   full allocation-scheme membership (SA grows)   scheme
``commit``   acked write's request id + version number      latest_commit
``note``     free-form audit breadcrumbs (recovery tiers)   nothing
===========  =============================================  ==========

Join-list and scheme records carry the *full* membership rather than
deltas, so folding is idempotent and a truncated suffix can only lose
recent changes, never corrupt older ones.

Cost accounting (the reason this module exists at all — see
``docs/durability.md``): appends and snapshots ride on the node's
already-charged ``c_io`` write (the database ``output_object``) and are
therefore **uncharged** — which is what keeps fault-free runs
bit-identical to the stepped simulator with durability enabled.  Replay
is charged at recovery time only, one ``io_read`` per folded record
plus one for a loaded snapshot, per the paper's "local ``c_io`` beats a
``c_d`` network copy" argument.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Set, Tuple

from repro.cluster.metrics import NodeMetrics
from repro.cluster.rpc import version_from_wire, version_to_wire
from repro.storage.snapshot import SnapshotStore
from repro.storage.versions import ObjectVersion
from repro.storage.wal import WriteAheadLog

WAL_FILENAME = "wal.log"
SNAPSHOT_FILENAME = "snapshot.bin"

#: After this many appends the durable state is folded into a snapshot
#: and the log restarts, bounding replay length.
DEFAULT_SNAPSHOT_EVERY = 64


def node_state_dir(state_dir: str, node_id: int) -> str:
    """The per-node subdirectory inside a cluster's ``--state-dir``."""
    return os.path.join(state_dir, f"node-{node_id}")


def wal_path(state_dir: str, node_id: int) -> str:
    """Where a node's WAL lives (the chaos injectors target this)."""
    return os.path.join(node_state_dir(state_dir, node_id), WAL_FILENAME)


def snapshot_path(state_dir: str, node_id: int) -> str:
    return os.path.join(node_state_dir(state_dir, node_id), SNAPSHOT_FILENAME)


@dataclass
class DurableState:
    """The folded result of one recovery pass (snapshot + log replay)."""

    version: Optional[ObjectVersion] = None
    valid: bool = False
    join_list: Set[int] = field(default_factory=set)
    steward: bool = False
    scheme: Optional[Tuple[int, ...]] = None
    latest_commit: int = 0
    last_seq: int = 0
    #: Records folded from the log (excludes the snapshot).
    replayed: int = 0
    truncated_bytes: int = 0
    damaged: bool = False
    from_snapshot: bool = False

    @property
    def empty(self) -> bool:
        """True when there was nothing durable to restore."""
        return self.last_seq == 0 and not self.from_snapshot

    @property
    def replay_cost(self) -> int:
        """Charged ``io_reads`` for this recovery (paper ``c_io``)."""
        return self.replayed + (1 if self.from_snapshot else 0)


class NodeDurability:
    """One node's write-ahead log + snapshot, with typed appenders."""

    def __init__(
        self,
        node_id: int,
        state_dir: str,
        metrics: NodeMetrics,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        sync: bool = False,
    ) -> None:
        self.node_id = node_id
        self.directory = node_state_dir(state_dir, node_id)
        os.makedirs(self.directory, exist_ok=True)
        self.wal = WriteAheadLog(
            os.path.join(self.directory, WAL_FILENAME), sync=sync
        )
        self.snapshots = SnapshotStore(
            os.path.join(self.directory, SNAPSHOT_FILENAME)
        )
        self.metrics = metrics
        self.snapshot_every = int(snapshot_every)
        self._since_snapshot = 0
        self._muted = 0
        #: Set by the node: returns the state dict a snapshot captures.
        self.snapshot_state: Optional[Callable[[], Dict[str, Any]]] = None

    # -- mute (restore paths must not re-log what they replay) -------------

    @contextmanager
    def muted(self):
        self._muted += 1
        try:
            yield self
        finally:
            self._muted -= 1

    # -- appending ---------------------------------------------------------

    def record(self, kind: str, payload: Optional[Mapping[str, Any]] = None) -> None:
        if self._muted:
            return
        self.wal.append(kind, payload)
        self.metrics.wal_appends += 1
        self._since_snapshot += 1
        if (
            self.snapshot_every > 0
            and self._since_snapshot >= self.snapshot_every
            and self.snapshot_state is not None
        ):
            self.take_snapshot()

    def log_seed(self, version: ObjectVersion) -> None:
        self.record("seed", {"version": version_to_wire(version)})

    def log_object(self, version: ObjectVersion) -> None:
        self.record("object", {"version": version_to_wire(version)})

    def log_invalidate(self) -> None:
        self.record("inval")

    def log_join(self, members, steward: bool) -> None:
        self.record(
            "join",
            {"members": sorted(int(n) for n in members), "steward": bool(steward)},
        )

    def log_scheme(self, members) -> None:
        self.record("scheme", {"members": sorted(int(n) for n in members)})

    def log_commit(self, rid: int, number: int) -> None:
        self.record("commit", {"rid": int(rid), "number": int(number)})

    def log_note(self, note: str, **payload: Any) -> None:
        self.record("note", {"note": note, **payload})

    # -- snapshots ---------------------------------------------------------

    def take_snapshot(self) -> None:
        """Fold the current node state into a snapshot; restart the log."""
        if self.snapshot_state is None:
            return
        state = dict(self.snapshot_state())
        state["last_seq"] = self.wal.last_seq
        self.snapshots.save(state)
        self.wal.reset()
        self._since_snapshot = 0
        self.metrics.snapshots_written += 1

    # -- recovery ----------------------------------------------------------

    def recover(self) -> DurableState:
        """Fold snapshot + log into the state a restarting node resumes.

        Damage handling is the WAL's truncate-at-damage rule; a corrupt
        snapshot degrades to pure log replay.  The caller charges
        ``state.replay_cost`` into ``io_reads`` and decides the recovery
        tier (fresh / stale) by probing a peer — this method is purely
        local.
        """
        state = DurableState()
        snapshot = self.snapshots.load()
        if snapshot is not None:
            self._fold_snapshot(snapshot, state)
        result = self.wal.replay()
        for record in result.records:
            self._fold_record(record, state)
        state.replayed = len(result.records)
        state.truncated_bytes = result.truncated_bytes
        state.damaged = result.damaged
        if result.records:
            state.last_seq = result.records[-1].seq
        self.wal.resume_from(max(state.last_seq, 0) + 1)
        self.metrics.wal_replayed += state.replayed
        if state.damaged:
            self.metrics.wal_truncations += 1
        return state

    @staticmethod
    def _fold_snapshot(snapshot: Mapping[str, Any], state: DurableState) -> None:
        try:
            state.version = version_from_wire(snapshot.get("version"))
            state.valid = bool(snapshot.get("valid", False))
            state.join_list = {int(n) for n in snapshot.get("join_list", ())}
            state.steward = bool(snapshot.get("steward", False))
            scheme = snapshot.get("scheme")
            if scheme:
                state.scheme = tuple(sorted(int(n) for n in scheme))
            state.latest_commit = int(snapshot.get("latest_commit", 0))
            state.last_seq = int(snapshot.get("last_seq", 0))
        except (TypeError, ValueError, KeyError):
            # A structurally-odd snapshot is treated as absent; the log
            # alone still yields a consistent (if older) state.
            state.__init__()  # type: ignore[misc]
            return
        state.from_snapshot = True

    @staticmethod
    def _fold_record(record, state: DurableState) -> None:
        kind, payload = record.kind, record.payload
        if kind in ("seed", "object"):
            version = version_from_wire(payload.get("version"))
            if version is not None:
                state.version = version
                state.valid = True
        elif kind == "inval":
            state.valid = False
        elif kind == "join":
            try:
                state.join_list = {int(n) for n in payload.get("members", ())}
            except (TypeError, ValueError):
                return
            state.steward = bool(payload.get("steward", False))
        elif kind == "scheme":
            try:
                state.scheme = tuple(
                    sorted(int(n) for n in payload.get("members", ()))
                )
            except (TypeError, ValueError):
                return
        elif kind == "commit":
            try:
                state.latest_commit = max(
                    state.latest_commit, int(payload.get("number", 0))
                )
            except (TypeError, ValueError):
                return
        # Unknown kinds (e.g. "note", or records from a newer release)
        # fold to nothing: forward compatibility by construction.

    def close(self) -> None:
        self.wal.close()
