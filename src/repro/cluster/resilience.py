"""Fault tolerance for the live cluster: retries, dedup, scheme repair.

Three building blocks, all **opt-in** — a cluster without a
:class:`RetryPolicy` installed behaves byte-identically to PR 3's, which
is what keeps the fault-free four-way parity (live == stepped ==
simulated == kernel) intact:

* :class:`RetryPolicy` — seeded exponential backoff with jitter.  The
  same policy object drives both planes of at-least-once RPC: the
  closed-loop client re-sends ``exec`` frames after transport failures,
  and :class:`~repro.cluster.transport.PeerTransport` re-sends charged
  protocol messages swallowed by ``drop_next`` budgets or probabilistic
  drops.  Retries are counted in ``retries_sent``, *never* in the
  paper-class counters: the paper charges one logical message per
  transmission decision, so a retransmission is bookkeeping, not cost.
* :class:`DedupCache` — the idempotency half of at-least-once: each
  node remembers recent ``exec`` results by request id so a client
  retry of an already-applied write returns the cached reply instead of
  double-charging I/O.
* :class:`SchemeRepairer` — the availability half of the paper's
  ``t``-constraint under failures.  After a crash or recovery, a repair
  round queries every node's status, picks a surviving holder of the
  latest version as donor, and copies the object to live processors
  until at least ``t`` of them hold a valid copy again.  Each copy is
  charged as **one data message** (the cost model's price for moving
  the object) and separately counted in ``repairs_sent`` /
  ``repairs_received``.  Under DA the repaired non-core holders are
  *adopted* into a surviving core member's join-list (so future writes
  invalidate them); under SA the allocation scheme itself grows to
  cover the repair targets and is re-broadcast to every live node.

The repairer lives on the experimenter's side of the admin plane — it
plays the failure detector the paper's cited recovery literature
assumes, exactly like :class:`repro.distsim.failures.FailureInjector`
plays the adversary.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import ClusterError

#: Request ids the repairer uses for its copy transfers.  Kept far above
#: any workload-assigned id so repair pendings can never collide with a
#: client request in flight at the donor.
REPAIR_RID_BASE = 1_000_000_000


# -- retry policy -----------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with jitter.

    ``attempts`` counts transmissions, not re-transmissions: the default
    of 4 means one send plus up to three retries.  The backoff before
    retry ``k`` (0-based) is ``base_delay * multiplier**k`` capped at
    ``max_delay``, shrunk by up to ``jitter`` (a fraction in [0, 1])
    using the caller's RNG — deterministic under a seed, so a chaos run
    replays identically.
    """

    attempts: int = 4
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ClusterError("a retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ClusterError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ClusterError("the backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ClusterError("jitter must be a fraction within [0, 1]")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter > 0.0:
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    def rng_for(self, node_id: int) -> random.Random:
        """A per-node RNG stream, disjoint across nodes for one seed."""
        return random.Random(self.seed * 1_000_003 + node_id)

    # -- serialization (admin `resilience` frames) -------------------------

    def to_wire(self) -> Dict[str, Any]:
        return {
            "attempts": self.attempts,
            "base_delay": self.base_delay,
            "multiplier": self.multiplier,
            "max_delay": self.max_delay,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "RetryPolicy":
        return cls(
            attempts=int(wire.get("attempts", 4)),
            base_delay=float(wire.get("base_delay", 0.02)),
            multiplier=float(wire.get("multiplier", 2.0)),
            max_delay=float(wire.get("max_delay", 0.5)),
            jitter=float(wire.get("jitter", 0.5)),
            seed=int(wire.get("seed", 0)),
        )


# -- idempotent request dedup ----------------------------------------------


class DedupCache:
    """A capacity-bounded insertion-ordered cache of request results.

    The node-side half of at-least-once RPC: replies to completed
    ``exec`` frames are remembered by request id, so a client retry of a
    request whose reply was lost re-reads the answer instead of
    re-running the (non-idempotent) write.  Insertion order doubles as
    the eviction order — request ids arrive roughly monotonically, so
    the oldest entry is also the least likely to be retried.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ClusterError("the dedup cache needs a positive capacity")
        self.capacity = capacity
        self._entries: Dict[int, Any] = {}

    def __contains__(self, rid: int) -> bool:
        return rid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, rid: int) -> Optional[Any]:
        return self._entries.get(rid)

    def store(self, rid: int, value: Any) -> None:
        if rid in self._entries:
            self._entries[rid] = value
            return
        while len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
        self._entries[rid] = value


# -- scheme repair ----------------------------------------------------------


@dataclass(frozen=True)
class RepairReport:
    """What one repair round found and did."""

    round_id: int
    #: Nodes that reported themselves crashed.
    crashed: Tuple[int, ...]
    #: Completed copy transfers, as ``(donor, target, version_number)``.
    repaired: Tuple[Tuple[int, int, int], ...]
    #: Non-core holders registered in a core member's join-list (DA).
    adopted: Tuple[int, ...]
    #: The allocation scheme after the round (grown under SA).
    scheme: Tuple[int, ...]
    #: Live reachable nodes holding a valid copy after the round.
    holders: Tuple[int, ...]
    #: True when the round could not restore ``t`` valid copies.
    degraded: bool

    def describe(self) -> str:
        verdict = "DEGRADED" if self.degraded else "ok"
        return (
            f"repair round {self.round_id}: {verdict}, "
            f"holders={list(self.holders)}, "
            f"repaired={[f'{d}->{t}@v{v}' for d, t, v in self.repaired]}, "
            f"adopted={list(self.adopted)}, scheme={list(self.scheme)}"
        )


class SchemeRepairer:
    """Drive scheme repair over a cluster handle's admin plane.

    Works against any object with the :class:`~repro.cluster.launcher.
    ClusterHandle` admin surface (``spec``, ``status_all``, ``repair``,
    ``adopt``, ``set_scheme``).  One :meth:`repair_round` restores the
    paper's ``t``-availability after each failure event; the chaos
    harness calls it between requests, standing in for the failure
    detector + repair daemon of a production system.
    """

    def __init__(self, cluster, t: Optional[int] = None) -> None:
        self.cluster = cluster
        self.t = int(t) if t is not None else len(cluster.spec.scheme)
        if self.t < 2:
            raise ClusterError("the availability threshold t must be >= 2")
        self.rounds = 0
        self._next_rid = REPAIR_RID_BASE

    # -- plumbing ---------------------------------------------------------

    def _rid(self) -> int:
        self._next_rid += 1
        return self._next_rid

    def _da_structure(self) -> Tuple[Set[int], int]:
        """DA's fixed (core, primary) split of the launch scheme."""
        scheme = set(self.cluster.spec.scheme)
        primary = self.cluster.spec.primary
        if primary is None:
            primary = max(scheme)
        return scheme - {primary}, primary

    # -- one round --------------------------------------------------------

    async def repair_round(
        self, reachable: Optional[Sequence[int]] = None
    ) -> RepairReport:
        """Restore ``t`` valid copies among live reachable processors.

        ``reachable`` restricts which nodes the repairer may use as
        donors or targets (the repairer itself lives in one side of a
        partition); ``None`` means everything.  Returns a report;
        ``degraded=True`` means the invariant could not be restored —
        e.g. no reachable node holds a valid copy.
        """
        self.rounds += 1
        statuses = await self.cluster.status_all()
        reach = (
            set(statuses) if reachable is None else set(reachable) & set(statuses)
        )
        crashed = tuple(
            sorted(n for n, s in statuses.items() if s.get("crashed"))
        )
        usable = {
            n for n in reach if not statuses[n].get("crashed")
        }
        protocol = self.cluster.spec.protocol.upper()

        # The current scheme: SA repair only ever *grows* it, so the
        # union of every usable node's view is the true scheme — a node
        # healed from a partition may still report a stale (smaller)
        # one, and trusting it alone would shrink the scheme under a
        # member that holds a managed copy.
        scheme = set(self.cluster.spec.scheme)
        for n in sorted(usable):
            reported = statuses[n].get("scheme")
            if reported:
                scheme |= {int(p) for p in reported}

        holders = {
            n: int(statuses[n]["version"]["number"])
            for n in sorted(usable)
            if statuses[n].get("holds_valid_copy")
            and statuses[n].get("version") is not None
        }
        if not holders:
            return RepairReport(
                round_id=self.rounds,
                crashed=crashed,
                repaired=(),
                adopted=(),
                scheme=tuple(sorted(scheme)),
                holders=(),
                degraded=True,
            )
        latest = max(holders.values())
        donor = min(n for n, number in holders.items() if number == latest)

        # Scheme members first (restore the structure the protocols
        # route through), then ascending processor ids up to t copies.
        targets: List[int] = [
            n for n in sorted(scheme) if n in usable and n not in holders
        ]
        have = len(holders) + len(targets)
        for n in sorted(usable):
            if have >= self.t:
                break
            if n in holders or n in targets:
                continue
            targets.append(n)
            have += 1
        # Stale-but-valid holders are refreshed too (one charged data
        # message each): a holder whose invalidation died with a crashed
        # serving member would otherwise keep serving an old version.
        targets += [
            n
            for n, number in sorted(holders.items())
            if number < latest and n != donor and n not in targets
        ]

        repaired: List[Tuple[int, int, int]] = []
        failed_targets: List[int] = []
        for target in targets:
            try:
                await self.cluster.repair(donor, target, self._rid())
            except ClusterError:
                failed_targets.append(target)
                continue
            repaired.append((donor, target, latest))

        holders_after = tuple(
            sorted(set(holders) | {target for _, target, _ in repaired})
        )

        adopted: Tuple[int, ...] = ()
        adoption_ok = True
        if protocol == "DA":
            adopted, adoption_ok = await self._adopt_orphans(
                statuses, usable, holders_after
            )
        else:
            grown = scheme | {target for _, target, _ in repaired}
            # Re-broadcast even when unchanged: a freshly recovered node
            # rejoined with the launch-time scheme and must learn any
            # growth it missed while down.
            await self.cluster.set_scheme(sorted(grown), nodes=sorted(usable))
            scheme = grown

        return RepairReport(
            round_id=self.rounds,
            crashed=crashed,
            repaired=tuple(repaired),
            adopted=adopted,
            scheme=tuple(sorted(scheme)),
            holders=holders_after,
            degraded=(
                len(holders_after) < self.t
                or bool(failed_targets)
                or not adoption_ok
            ),
        )

    async def _adopt_orphans(
        self,
        statuses: Mapping[int, Mapping[str, Any]],
        usable: Set[int],
        holders_after: Sequence[int],
    ) -> Tuple[Tuple[int, ...], bool]:
        """Register non-core holders in a live core member's join-list.

        A crashed serving member takes its join-list with it; the
        surviving holders it knew about become *orphans* no write would
        invalidate.  Reconstruct the list from ground truth (who holds a
        valid copy) and adopt the orphans into the lowest live core
        member, flagged as a *steward* so it keeps recording non-core
        holders after each walk even if it is not the default server.

        The prospective steward may itself crash between the status
        snapshot and the adopt call; each candidate is tried in turn,
        and a round where *every* candidate failed reports
        ``(orphans, False)`` so the caller marks the round degraded
        instead of raising — the next repair pass converges without
        re-copying data (the orphans keep their valid copies).

        Returns ``(adopted, ok)``.
        """
        core, _ = self._da_structure()
        live_core = sorted(n for n in core if n in usable)
        if not live_core:
            return (), True
        recorded: Set[int] = set()
        for member in live_core:
            recorded.update(
                int(n) for n in statuses[member].get("join_list", ())
            )
        orphans = sorted(
            n for n in holders_after if n not in core and n not in recorded
        )
        if not orphans:
            return (), True
        for steward in live_core:
            try:
                await self.cluster.adopt(steward, orphans, steward=True)
            except ClusterError:
                continue  # crashed mid-repair; try the next core member
            return tuple(orphans), True
        return tuple(orphans), False

    # -- tiered recovery ---------------------------------------------------

    async def recover_node(
        self, node_id: int, reachable: Optional[Sequence[int]] = None
    ) -> Tuple[Dict[str, Any], Optional[RepairReport]]:
        """Recover one node through the tiered durable path.

        Tier 1 (``log-fresh``): the node's replayed WAL held the latest
        version — it rejoined with zero data messages and no repair
        round is needed.  Every other tier (stale/empty/unverified log,
        or a fully volatile node) falls back to a
        :meth:`repair_round`, the network copy path.  Returns the
        recover reply and the repair report (None on the fresh tier).
        """
        reply = await self.cluster.recover(node_id)
        if reply.get("tier") == "log-fresh":
            return reply, None
        return reply, await self.repair_round(reachable=reachable)
