"""`repro cluster` — serve, drive and benchmark a live cluster.

Three leaves:

``repro cluster serve``
    Run ONE node in the foreground (the building block of the
    subprocess launch mode).  Prints ``CLUSTER-LISTENING <id> <addr>``
    once the socket is bound, then serves until a ``shutdown`` admin
    frame arrives.
``repro cluster run``
    Launch a whole cluster (in-process by default, ``--subprocess``
    for real OS processes), replay a schedule closed-loop, print the
    per-node and aggregate traffic, and — with ``--check-parity`` —
    verify the live counts bit-for-bit against the stepped algorithm
    and the discrete-event simulator, exiting non-zero on mismatch.
``repro cluster bench``
    Open-loop Poisson load against a live cluster; reports throughput
    and latency percentiles.
"""

from __future__ import annotations

import asyncio
import sys
import time

from repro.analysis.report import format_mapping, format_table
from repro.cluster.launcher import ClusterSpec, start_cluster
from repro.cluster.loadgen import (
    ClusterClient,
    poisson_load,
    replay_schedule,
    route_check,
)
from repro.cluster.metrics import latency_histogram, percentile, resilience_totals
from repro.cluster.node import NodeConfig, NodeServer
from repro.cluster.resilience import RetryPolicy
from repro.cluster.transport import Address, FaultPlan
from repro.core.dynamic_allocation import DynamicAllocation
from repro.core.static_allocation import StaticAllocation
from repro.distsim.runner import run_protocol
from repro.exceptions import ClusterError
from repro.model.schedule import Schedule
from repro.viz.ascii_plot import render_series
from repro.workloads import trace
from repro.workloads.uniform import UniformWorkload

#: Matches repro.cluster.launcher.LISTENING_BANNER (re-declared here so
#: `serve` does not import the launcher it is a child of).
LISTENING_BANNER = "CLUSTER-LISTENING"


def cmd_cluster_serve(args) -> int:
    """Run one node in the foreground until told to shut down."""
    config = NodeConfig(
        node_id=args.node_id,
        scheme=args.scheme,
        protocol=args.protocol.upper(),
        primary=args.primary,
        address=Address.parse(args.listen),
        exec_timeout=args.exec_timeout,
        state_dir=args.state_dir,
        snapshot_every=args.snapshot_every,
    )

    async def serve() -> None:
        node = NodeServer(config)
        address = await node.start()
        print(
            f"{LISTENING_BANNER} {node.node_id} {address.render()}",
            flush=True,
        )
        await node.serve_forever()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    return 0


def _resolve_schedule(args) -> Schedule:
    """Trace file > explicit schedule > seed-generated workload."""
    if args.trace:
        return trace.load(args.trace)
    if args.schedule:
        return Schedule.parse(args.schedule)
    generator = UniformWorkload(
        range(1, args.nodes + 1), args.length, args.write_fraction
    )
    return generator.generate(args.seed)


def _cluster_spec(args, schedule=None) -> ClusterSpec:
    processors = set(range(1, args.nodes + 1)) | set(args.scheme)
    if schedule is not None:
        processors |= set(request.processor for request in schedule)
    resilience = None
    if getattr(args, "resilient", False):
        resilience = RetryPolicy(seed=getattr(args, "seed", 0))
    return ClusterSpec(
        processors=tuple(sorted(processors)),
        scheme=args.scheme,
        protocol=args.protocol.upper(),
        primary=args.primary,
        transport=args.transport,
        exec_timeout=args.exec_timeout,
        resilience=resilience,
        state_dir=getattr(args, "state_dir", None),
        snapshot_every=getattr(args, "snapshot_every", 64),
    )


def _per_node_table(per_node) -> str:
    rows = [
        (
            node_id,
            metrics.control_sent,
            metrics.data_sent,
            metrics.io_reads + metrics.io_writes,
            metrics.requests_completed,
            metrics.request_errors,
            metrics.dropped_messages,
        )
        for node_id, metrics in sorted(per_node.items())
    ]
    return format_table(
        ["node", "ctrl out", "data out", "I/O", "served", "errors", "dropped"],
        rows,
        title="Per-node traffic",
    )


def _stepped_algorithm(protocol: str, scheme, primary):
    if protocol.upper() == "SA":
        return StaticAllocation(scheme)
    return DynamicAllocation(scheme, primary=primary)


def cmd_cluster_run(args) -> int:
    schedule = _resolve_schedule(args)
    spec = _cluster_spec(args, schedule)
    route_check(schedule, spec.processors)
    faulted = args.delay_ms > 0

    async def drive():
        cluster = await start_cluster(spec, subprocesses=args.subprocess)
        client = ClusterClient(cluster.addresses, retry=spec.resilience)
        try:
            if faulted:
                await cluster.set_fault_plan(
                    FaultPlan(default_delay=args.delay_ms / 1000.0)
                )
            result = await replay_schedule(
                client, schedule, check_freshness=True
            )
            per_node = await cluster.metrics()
            stats = await cluster.aggregate_stats()
            return result, per_node, stats
        finally:
            await client.close()
            await cluster.stop()

    result, per_node, stats = asyncio.run(drive())
    result.raise_on_errors()
    mode = "subprocess" if args.subprocess else "in-process"
    print(_per_node_table(per_node))
    print()
    print(
        format_mapping(
            {
                "protocol": spec.protocol,
                "nodes": len(spec.processors),
                "mode": mode,
                "requests": stats.requests_completed,
                "control messages": stats.control_messages,
                "data messages": stats.data_messages,
                "I/O operations": stats.io_reads + stats.io_writes,
                "dropped messages": stats.dropped_messages,
                "mean latency (s)": stats.mean_latency,
                "max latency (s)": stats.max_latency,
            },
            title=f"Live cluster replay of {len(schedule)} requests",
        )
    )
    if spec.resilience is not None:
        print()
        print(
            format_mapping(
                resilience_totals(per_node.values()),
                title="Resilience counters (kept out of charged totals)",
            )
        )
    if args.latency_plot:
        print()
        print(
            render_series(
                latency_histogram(result.latencies),
                x_label="latency (s)",
                y_label="requests",
                title="Client-observed latency histogram",
            )
        )
    if args.check_parity:
        algorithm = _stepped_algorithm(
            spec.protocol, spec.scheme, spec.primary
        )
        stepped = algorithm.run(schedule).total_breakdown()
        simulated = run_protocol(
            spec.protocol, schedule, spec.scheme, primary=spec.primary
        ).breakdown()
        live = stats.breakdown()
        print()
        if live == stepped == simulated:
            print(
                f"parity OK: live == stepped == simulated ({live})"
                + (" with injected delays" if faulted else "")
            )
        else:
            print(
                "PARITY MISMATCH:\n"
                f"  live      {live}\n"
                f"  stepped   {stepped}\n"
                f"  simulated {simulated}",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_cluster_bench(args) -> int:
    if args.rate <= 0:
        raise ClusterError("--rate must be positive")
    spec = _cluster_spec(args)

    async def drive():
        cluster = await start_cluster(spec, subprocesses=args.subprocess)
        client = ClusterClient(cluster.addresses, retry=spec.resilience)
        try:
            if args.delay_ms > 0:
                await cluster.set_fault_plan(
                    FaultPlan(default_delay=args.delay_ms / 1000.0)
                )
            started = time.monotonic()
            result = await poisson_load(
                client,
                spec.processors,
                count=args.count,
                rate=args.rate,
                write_fraction=args.write_fraction,
                seed=args.seed,
            )
            elapsed = time.monotonic() - started
            stats = await cluster.aggregate_stats()
            return result, stats, elapsed
        finally:
            await client.close()
            await cluster.stop()

    result, stats, elapsed = asyncio.run(drive())
    latencies = result.latencies
    report = {
        "protocol": spec.protocol,
        "nodes": len(spec.processors),
        "offered rate (req/s)": args.rate,
        "completed": result.completed,
        "errors": result.errors,
        "elapsed (s)": round(elapsed, 3),
        "throughput (req/s)": (
            round(result.completed / elapsed, 2) if elapsed > 0 else None
        ),
        "control messages": stats.control_messages,
        "data messages": stats.data_messages,
        "I/O operations": stats.io_reads + stats.io_writes,
    }
    if latencies:
        report["mean latency (s)"] = sum(latencies) / len(latencies)
        report["p50 latency (s)"] = percentile(latencies, 0.50)
        report["p95 latency (s)"] = percentile(latencies, 0.95)
        report["p99 latency (s)"] = percentile(latencies, 0.99)
    print(
        format_mapping(
            report,
            title=f"Open-loop Poisson bench, {args.count} requests",
        )
    )
    if args.latency_plot:
        print()
        print(
            render_series(
                latency_histogram(latencies),
                x_label="latency (s)",
                y_label="requests",
                title="Client-observed latency histogram",
            )
        )
    return 0


def add_cluster_parser(subparsers, scheme_type) -> None:
    """Register the ``cluster`` subcommand tree on the root parser."""
    cluster = subparsers.add_parser(
        "cluster", help="live asyncio replica cluster (SA/DA over sockets)"
    )
    leaves = cluster.add_subparsers(dest="cluster_command", required=True)

    def _common(parser, with_nodes: bool = True) -> None:
        parser.add_argument(
            "--protocol", choices=["SA", "DA", "sa", "da"], default="DA"
        )
        parser.add_argument(
            "--scheme", type=scheme_type, default=frozenset({1, 2}),
            help="initial allocation scheme, e.g. 1,2",
        )
        parser.add_argument(
            "--primary", type=int, default=None,
            help="DA primary processor (default: max of the scheme)",
        )
        parser.add_argument(
            "--exec-timeout", type=float, default=15.0,
            help="per-request hard timeout at the node, seconds",
        )
        parser.add_argument(
            "--state-dir", default=None,
            help="root directory for per-node WAL + snapshots "
                 "(enables durability; see docs/durability.md)",
        )
        parser.add_argument(
            "--snapshot-every", type=int, default=64,
            help="compact the WAL into a snapshot every N records",
        )
        if with_nodes:
            parser.add_argument(
                "--nodes", type=int, default=3,
                help="processor count (grown to cover the scheme/trace)",
            )
            parser.add_argument(
                "--transport", choices=["auto", "unix", "tcp"],
                default="auto",
                help="socket flavour (auto = unix where available)",
            )
            parser.add_argument(
                "--subprocess", action="store_true",
                help="one OS process per node instead of in-process",
            )
            parser.add_argument(
                "--delay-ms", type=float, default=0.0,
                help="inject this per-message delay on every link",
            )
            parser.add_argument(
                "--latency-plot", action="store_true",
                help="ASCII histogram of client-observed latencies",
            )
            parser.add_argument(
                "--resilient", action="store_true",
                help="install retry/dedup fault tolerance (fault-free "
                     "runs stay bit-identical; see docs/chaos.md)",
            )

    serve = leaves.add_parser("serve", help="run one node in the foreground")
    _common(serve, with_nodes=False)
    serve.add_argument("--node-id", type=int, required=True)
    serve.add_argument(
        "--listen", required=True,
        help="listen address: tcp:HOST:PORT (0 = ephemeral) or unix:/path",
    )
    serve.set_defaults(handler=cmd_cluster_serve)

    run = leaves.add_parser(
        "run", help="replay a schedule against a live cluster"
    )
    _common(run)
    run.add_argument("--schedule", help='e.g. "r5 r5 w1 r5"')
    run.add_argument("--trace", help="trace file (see `repro workload`)")
    run.add_argument(
        "--seed", type=int, default=0,
        help="generate a uniform workload with this seed "
             "(when no --schedule/--trace)",
    )
    run.add_argument(
        "--length", type=int, default=100,
        help="generated workload length",
    )
    run.add_argument(
        "--write-fraction", type=float, default=0.2,
        help="generated workload write fraction",
    )
    run.add_argument(
        "--check-parity", action="store_true",
        help="exit 1 unless live counts == stepped == simulated",
    )
    run.set_defaults(handler=cmd_cluster_run)

    bench = leaves.add_parser(
        "bench", help="open-loop Poisson load against a live cluster"
    )
    _common(bench)
    bench.add_argument("--count", type=int, default=200,
                       help="number of requests")
    bench.add_argument("--rate", type=float, default=200.0,
                       help="Poisson arrival rate, requests/second")
    bench.add_argument("--write-fraction", type=float, default=0.2)
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(handler=cmd_cluster_bench)
