"""Wire format of the live cluster: length-prefixed JSON frames.

Every frame on a cluster connection — client requests, peer protocol
messages, completion notifications, admin commands — is one JSON object
encoded as UTF-8 and prefixed with a 4-byte big-endian length.  The
framing is deliberately tiny: it can be reimplemented in a dozen lines
of any language, and a captured byte stream is human-decodable with
``struct`` + ``json`` alone.

Frame families (the ``type`` field):

``exec`` / ``result``
    The client plane: a read/write request routed to the issuing
    processor's node, and its reply.
``msg``
    The peer plane: one of the :mod:`repro.distsim.messages` protocol
    messages in transit.  These are the *charged* frames — the node
    metrics count them by paper class (control vs data) exactly like
    the simulated network does.
``done``
    The completion oracle: an **uncharged** notification that a unit of
    work finished downstream.  It plays the role of the simulator's
    ``on_delivered`` hook (see :mod:`repro.distsim.network`): the paper
    does not charge acknowledgements, so neither does the cluster.
``ping`` / ``metrics`` / ``set_peers`` / ``fault`` / ``reset_metrics``
    / ``shutdown``
    The admin plane, used by launchers, tests and the CLI.

The codec below maps every :class:`~repro.distsim.messages.Message`
subclass to and from its wire form, so the live transport ships the
*same* protocol vocabulary the discrete-event simulator uses.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Mapping, Optional

from repro.distsim.messages import (
    Ack,
    DataTransfer,
    Invalidate,
    Message,
    ReadRequest,
    VersionInquiry,
    VersionReport,
)
from repro.exceptions import ClusterError
from repro.storage.versions import ObjectVersion

_HEADER = struct.Struct(">I")

#: Frames larger than this are rejected: the replicated object payloads
#: of the reproduction are small, so a huge length prefix means a
#: corrupt or hostile stream, not a legitimate message.
MAX_FRAME_BYTES = 4 * 1024 * 1024


# -- framing ---------------------------------------------------------------


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialize one frame: 4-byte length prefix + UTF-8 JSON."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    data = body.encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ClusterError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(data)) + data


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF between frames."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ClusterError(
            f"connection closed mid-header ({len(error.partial)} of "
            f"{_HEADER.size} bytes)"
        ) from error
    except (ConnectionError, OSError):
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ClusterError(
            f"incoming frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ClusterError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{length} bytes)"
        ) from error
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ClusterError(f"malformed frame body: {error}") from error
    if not isinstance(payload, dict) or "type" not in payload:
        raise ClusterError("every frame must be a JSON object with a 'type'")
    return payload


async def write_frame(
    writer: asyncio.StreamWriter, payload: Mapping[str, Any]
) -> None:
    """Write one frame and flush it."""
    writer.write(encode_frame(payload))
    await writer.drain()


# -- object versions -------------------------------------------------------


def version_to_wire(version: Optional[ObjectVersion]) -> Optional[dict]:
    if version is None:
        return None
    wire: Dict[str, Any] = {"number": version.number, "writer": version.writer}
    if version.payload is not None:
        wire["payload"] = version.payload
    return wire


def version_from_wire(wire: Optional[Mapping[str, Any]]) -> Optional[ObjectVersion]:
    if wire is None:
        return None
    return ObjectVersion(
        int(wire["number"]), int(wire["writer"]), wire.get("payload")
    )


# -- protocol-message codec -------------------------------------------------

_KIND_TO_CLASS = {
    "read_request": ReadRequest,
    "invalidate": Invalidate,
    "ack": Ack,
    "version_inquiry": VersionInquiry,
    "version_report": VersionReport,
    "data_transfer": DataTransfer,
}
_CLASS_TO_KIND = {cls: kind for kind, cls in _KIND_TO_CLASS.items()}


def message_to_wire(message: Message) -> Dict[str, Any]:
    """Encode a distsim protocol message as a ``msg`` frame payload."""
    kind = _CLASS_TO_KIND.get(type(message))
    if kind is None:
        raise ClusterError(
            f"no wire encoding for message type {type(message).__name__}"
        )
    wire: Dict[str, Any] = {
        "type": "msg",
        "kind": kind,
        "sender": message.sender,
        "receiver": message.receiver,
        "rid": getattr(message, "request_id", 0),
    }
    if isinstance(message, Invalidate):
        wire["version_number"] = message.version_number
    elif isinstance(message, VersionReport):
        wire["version_number"] = message.version_number
        wire["holds_copy"] = message.holds_copy
    elif isinstance(message, DataTransfer):
        wire["version"] = version_to_wire(message.version)
        wire["save_copy"] = message.save_copy
    elif isinstance(message, Ack) and message.info is not None:
        wire["info"] = message.info
    return wire


def wire_to_message(wire: Mapping[str, Any]) -> Message:
    """Decode a ``msg`` frame payload back into a protocol message."""
    kind = wire.get("kind")
    cls = _KIND_TO_CLASS.get(kind)
    if cls is None:
        raise ClusterError(f"unknown protocol message kind {kind!r}")
    sender = int(wire["sender"])
    receiver = int(wire["receiver"])
    rid = int(wire.get("rid", 0))
    if cls is ReadRequest:
        return ReadRequest(sender, receiver, request_id=rid)
    if cls is Invalidate:
        return Invalidate(
            sender,
            receiver,
            version_number=int(wire.get("version_number", -1)),
            request_id=rid,
        )
    if cls is Ack:
        return Ack(sender, receiver, request_id=rid, info=wire.get("info"))
    if cls is VersionInquiry:
        return VersionInquiry(sender, receiver, request_id=rid)
    if cls is VersionReport:
        return VersionReport(
            sender,
            receiver,
            request_id=rid,
            version_number=int(wire.get("version_number", -1)),
            holds_copy=bool(wire.get("holds_copy", False)),
        )
    return DataTransfer(
        sender,
        receiver,
        version=version_from_wire(wire.get("version")),
        request_id=rid,
        save_copy=bool(wire.get("save_copy", False)),
    )
