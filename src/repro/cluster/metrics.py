"""Per-node metrics of the live cluster.

Each node counts exactly what the simulated network counts: messages by
paper class at the *sender* (the transmission happened, whatever the
fate of the delivery — matching
:meth:`repro.distsim.network.Network.charge_and_schedule`), I/O
operations at the node that performed them, and drops wherever the loss
was decided (sender-side transport faults, receiver-side crashes).

Aggregating the per-node counters therefore reproduces the global
:class:`~repro.distsim.statistics.SimulationStats` of a simulated run —
which is the bridge the end-to-end parity tests walk: live totals ==
simulated totals == stepped model accounting == kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from repro.distsim.messages import Message, MessageClass
from repro.distsim.statistics import SimulationStats


@dataclass
class NodeMetrics:
    """Counters one node accumulates while serving."""

    node_id: int
    control_sent: int = 0
    data_sent: int = 0
    io_reads: int = 0
    io_writes: int = 0
    dropped_messages: int = 0
    requests_completed: int = 0
    request_errors: int = 0
    #: Resilience-layer counters, kept OUT of the paper-class totals:
    #: a retransmission, a repair copy or a dedup hit is bookkeeping of
    #: the fault-tolerance machinery, not a charged unit of the cost
    #: model (repairs additionally charge ``data_sent`` — the one data
    #: message the cost model prices a copy at — but are reported here
    #: separately so faulted runs can subtract them).
    retries_sent: int = 0
    repairs_sent: int = 0
    repairs_received: int = 0
    dedup_hits: int = 0
    degraded_rejections: int = 0
    #: Durability bookkeeping, also kept OUT of the paper-class totals.
    #: WAL appends and snapshots ride on an already-charged ``c_io``
    #: write; only *replay* is charged (into ``io_reads``) at recovery
    #: time, so these counters exist to audit the machinery, not to
    #: price it twice.
    wal_appends: int = 0
    wal_replayed: int = 0
    wal_truncations: int = 0
    snapshots_written: int = 0
    #: Recoveries that rejoined from the local log with zero data
    #: messages (the tiered-recovery fast path).
    fresh_rejoins: int = 0
    #: Wall-clock service latency of each request this node originated,
    #: in seconds, in completion order.
    latencies: List[float] = field(default_factory=list)

    def charge_message(self, message: Message) -> None:
        """Count an outgoing protocol message by its paper class."""
        if message.message_class is MessageClass.DATA:
            self.data_sent += 1
        else:
            self.control_sent += 1

    # -- serialization (admin `metrics` frames) ---------------------------

    def to_wire(self) -> Dict[str, Any]:
        return {
            "node_id": self.node_id,
            "control_sent": self.control_sent,
            "data_sent": self.data_sent,
            "io_reads": self.io_reads,
            "io_writes": self.io_writes,
            "dropped_messages": self.dropped_messages,
            "requests_completed": self.requests_completed,
            "request_errors": self.request_errors,
            "retries_sent": self.retries_sent,
            "repairs_sent": self.repairs_sent,
            "repairs_received": self.repairs_received,
            "dedup_hits": self.dedup_hits,
            "degraded_rejections": self.degraded_rejections,
            "wal_appends": self.wal_appends,
            "wal_replayed": self.wal_replayed,
            "wal_truncations": self.wal_truncations,
            "snapshots_written": self.snapshots_written,
            "fresh_rejoins": self.fresh_rejoins,
            "latencies": self.latencies,
        }

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any]) -> "NodeMetrics":
        return cls(
            node_id=int(wire["node_id"]),
            control_sent=int(wire["control_sent"]),
            data_sent=int(wire["data_sent"]),
            io_reads=int(wire["io_reads"]),
            io_writes=int(wire["io_writes"]),
            dropped_messages=int(wire["dropped_messages"]),
            requests_completed=int(wire["requests_completed"]),
            request_errors=int(wire["request_errors"]),
            # PR-3 senders omit the resilience counters; default to 0 so
            # mixed-version admin planes keep interoperating.
            retries_sent=int(wire.get("retries_sent", 0)),
            repairs_sent=int(wire.get("repairs_sent", 0)),
            repairs_received=int(wire.get("repairs_received", 0)),
            dedup_hits=int(wire.get("dedup_hits", 0)),
            degraded_rejections=int(wire.get("degraded_rejections", 0)),
            # Pre-durability senders omit these; default to 0 likewise.
            wal_appends=int(wire.get("wal_appends", 0)),
            wal_replayed=int(wire.get("wal_replayed", 0)),
            wal_truncations=int(wire.get("wal_truncations", 0)),
            snapshots_written=int(wire.get("snapshots_written", 0)),
            fresh_rejoins=int(wire.get("fresh_rejoins", 0)),
            latencies=[float(value) for value in wire["latencies"]],
        )


def aggregate(metrics: Iterable[NodeMetrics]) -> SimulationStats:
    """Sum per-node counters into the simulator's statistics type.

    Latencies concatenate in node-id order; each request originates at
    exactly one node, so request counts add without double counting.
    """
    stats = SimulationStats()
    for node in sorted(metrics, key=lambda m: m.node_id):
        stats.control_messages += node.control_sent
        stats.data_messages += node.data_sent
        stats.io_reads += node.io_reads
        stats.io_writes += node.io_writes
        stats.dropped_messages += node.dropped_messages
        stats.requests_completed += node.requests_completed
        stats.latencies.extend(node.latencies)
    return stats


def resilience_totals(metrics: Iterable[NodeMetrics]) -> Dict[str, int]:
    """Sum the fault-tolerance counters across nodes.

    Kept apart from :func:`aggregate` on purpose: the paper's
    :class:`~repro.distsim.statistics.SimulationStats` must stay exactly
    the charged units, so parity comparisons never see these."""
    totals = {
        "retries_sent": 0,
        "repairs_sent": 0,
        "repairs_received": 0,
        "dedup_hits": 0,
        "degraded_rejections": 0,
    }
    for node in metrics:
        totals["retries_sent"] += node.retries_sent
        totals["repairs_sent"] += node.repairs_sent
        totals["repairs_received"] += node.repairs_received
        totals["dedup_hits"] += node.dedup_hits
        totals["degraded_rejections"] += node.degraded_rejections
    return totals


def durability_totals(metrics: Iterable[NodeMetrics]) -> Dict[str, int]:
    """Sum the WAL/snapshot/recovery counters across nodes.

    Like :func:`resilience_totals`, kept apart from :func:`aggregate`:
    the only durability cost the paper model prices is recovery replay,
    and that is already charged into ``io_reads`` where it happened."""
    totals = {
        "wal_appends": 0,
        "wal_replayed": 0,
        "wal_truncations": 0,
        "snapshots_written": 0,
        "fresh_rejoins": 0,
    }
    for node in metrics:
        totals["wal_appends"] += node.wal_appends
        totals["wal_replayed"] += node.wal_replayed
        totals["wal_truncations"] += node.wal_truncations
        totals["snapshots_written"] += node.snapshots_written
        totals["fresh_rejoins"] += node.fresh_rejoins
    return totals


def latency_histogram(
    latencies: Iterable[float], buckets: int = 10
) -> List[Tuple[float, int]]:
    """Equal-width histogram as ``(bucket upper bound, count)`` pairs.

    A constant series collapses into a single bucket and an empty one
    into no buckets at all — both shapes the ASCII plotter must accept
    (see :func:`repro.viz.ascii_plot.render_series`).
    """
    values = sorted(latencies)
    if not values:
        return []
    if buckets < 1:
        raise ValueError("histogram needs at least one bucket")
    low, high = values[0], values[-1]
    if math.isclose(low, high):
        return [(high, len(values))]
    width = (high - low) / buckets
    counts = [0] * buckets
    for value in values:
        index = min(int((value - low) / width), buckets - 1)
        counts[index] += 1
    return [
        (low + (index + 1) * width, counts[index]) for index in range(buckets)
    ]


def percentile(latencies: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty latency list."""
    if not latencies:
        raise ValueError("no latencies recorded")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    values = sorted(latencies)
    rank = min(len(values) - 1, max(0, math.ceil(fraction * len(values)) - 1))
    return values[rank]
