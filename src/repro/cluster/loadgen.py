"""Client load generation against a live cluster.

Two modes, matching the two ways the paper's schedules are read:

* :func:`replay_schedule` — **closed loop**: a
  :class:`~repro.model.schedule.Schedule` (parsed, generated, or loaded
  from a trace file) is replayed request by request, each routed to the
  node of its issuing processor and run to quiescence before the next
  starts.  This realizes the paper's totally-ordered schedule exactly,
  which is what makes live message counts comparable bit-for-bit with
  the stepped accounting.
* :func:`poisson_load` — **open loop**: requests arrive as a Poisson
  process (seeded, reproducible) and may overlap in flight; useful for
  exercising concurrency and latency behaviour, *not* for count parity
  (the paper's accounting is defined over serialized schedules).

The client assigns globally unique request ids (1, 2, ...) and, for
writes, version numbers from a counter starting at 1 — continuing the
uncharged seed version 0 exactly like the simulator's version counter.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.resilience import RetryPolicy
from repro.cluster.rpc import (
    read_frame,
    version_from_wire,
    version_to_wire,
    write_frame,
)
from repro.cluster.transport import Address, open_channel
from repro.exceptions import ClusterError
from repro.model.schedule import Schedule
from repro.storage.versions import ObjectVersion


@dataclass
class RequestOutcome:
    """What happened to one client request."""

    rid: int
    node: int
    op: str  # "read" | "write"
    ok: bool
    version: Optional[ObjectVersion] = None
    error: Optional[str] = None
    #: Client-observed wall-clock latency, in seconds.
    latency: float = 0.0
    #: Transport-level re-sends this request needed (0 without faults).
    retries: int = 0
    #: True when the node rejected the request in degraded mode
    #: (:class:`~repro.exceptions.ClusterDegradedError` on the far side).
    degraded: bool = False


@dataclass
class LoadResult:
    """Aggregate outcome of one load run."""

    outcomes: List[RequestOutcome] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def errors(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def latencies(self) -> List[float]:
        return [outcome.latency for outcome in self.outcomes if outcome.ok]

    def raise_on_errors(self) -> None:
        failed = [outcome for outcome in self.outcomes if not outcome.ok]
        if failed:
            first = failed[0]
            raise ClusterError(
                f"{len(failed)} of {len(self.outcomes)} requests failed; "
                f"first: request {first.rid} at node {first.node}: "
                f"{first.error}"
            )


class ClusterClient:
    """Multiplexed client connections to every node of a cluster.

    One connection per node, pumped by a background task that resolves
    ``result`` frames to their waiting callers by ``(node, request id)``
    — so the open-loop generator can keep many requests in flight per
    node, and one node's death fails only *its* callers.

    With a :class:`~repro.cluster.resilience.RetryPolicy` installed, the
    client is the outer half of at-least-once RPC: transport-level
    failures (a dead connection, a refused dial) are retried with seeded
    backoff under the *same* request id, so the node-side dedup cache
    absorbs duplicates.  Application-level replies — ``ok=False``
    results, degraded rejections — are **never** retried: the node
    answered; retrying would re-run a request the cluster already
    decided on.  Timeouts are not retried either: slowness is not a
    settled failure, and a duplicate of a still-running request races
    its original."""

    def __init__(
        self,
        addresses: Mapping[int, Address],
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.addresses = dict(addresses)
        self.timeout = timeout
        self.retry = retry
        # node_id -1: a stream disjoint from every node's transport RNG.
        self._retry_rng = retry.rng_for(-1) if retry is not None else None
        self._conns: Dict[
            int,
            Tuple[asyncio.StreamWriter, asyncio.Lock, asyncio.Task],
        ] = {}
        self._waiting: Dict[Tuple[int, int], asyncio.Future] = {}

    async def _conn(
        self, node_id: int
    ) -> Tuple[asyncio.StreamWriter, asyncio.Lock]:
        if node_id not in self._conns:
            if node_id not in self.addresses:
                raise ClusterError(f"no address for node {node_id}")
            reader, writer = await open_channel(self.addresses[node_id])
            pump = asyncio.ensure_future(self._pump(node_id, reader))
            self._conns[node_id] = (writer, asyncio.Lock(), pump)
        writer, lock, _ = self._conns[node_id]
        return writer, lock

    def _evict(self, node_id: int) -> None:
        """Forget a dead connection so the next call redials."""
        entry = self._conns.pop(node_id, None)
        if entry is not None:
            writer, _, pump = entry
            if pump is not asyncio.current_task():
                pump.cancel()
            writer.close()

    async def _pump(self, node_id: int, reader: asyncio.StreamReader) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                if frame.get("type") != "result":
                    continue
                key = (node_id, int(frame.get("rid", 0)))
                future = self._waiting.pop(key, None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except asyncio.CancelledError:
            raise
        except (ClusterError, ConnectionError, OSError) as error:
            reason = f"connection to node {node_id} died: {error}"
        else:
            reason = f"node {node_id} closed the connection"
        # Evict *this* connection (unless a newer one already replaced
        # it) so the next execute() redials instead of reusing a dead
        # writer, then fail only the callers waiting on this node.
        entry = self._conns.get(node_id)
        if entry is not None and entry[2] is asyncio.current_task():
            self._conns.pop(node_id, None)
            entry[0].close()
        self._fail_waiting(node_id, reason)

    def _fail_waiting(self, node_id: int, reason: str) -> None:
        stale = [key for key in self._waiting if key[0] == node_id]
        for key in stale:
            future = self._waiting.pop(key)
            if not future.done():
                future.set_exception(ClusterError(reason))

    async def _execute_once(
        self, node_id: int, rid: int, frame: Dict[str, object]
    ) -> Dict[str, object]:
        writer, lock = await self._conn(node_id)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiting[(node_id, rid)] = future
        try:
            async with lock:
                await write_frame(writer, frame)
        except (ConnectionError, OSError):
            self._waiting.pop((node_id, rid), None)
            self._evict(node_id)
            raise
        try:
            return await asyncio.wait_for(future, self.timeout)
        finally:
            self._waiting.pop((node_id, rid), None)

    async def execute(
        self,
        node_id: int,
        op: str,
        rid: int,
        version: Optional[ObjectVersion] = None,
    ) -> RequestOutcome:
        """Run one request on a node; never raises for protocol-level
        failures — inspect the outcome's ``ok``/``error``."""
        frame: Dict[str, object] = {"type": "exec", "rid": rid, "op": op}
        if version is not None:
            frame["version"] = version_to_wire(version)
        started = time.monotonic()
        attempts = self.retry.attempts if self.retry is not None else 1
        retries = 0
        last_error = "request was never attempted"
        for attempt in range(attempts):
            try:
                reply = await self._execute_once(node_id, rid, frame)
            except asyncio.TimeoutError:
                last_error = f"client timed out after {self.timeout}s"
                break
            except (ClusterError, ConnectionError, OSError) as error:
                last_error = str(error)
                if attempt + 1 < attempts:
                    retries += 1
                    await asyncio.sleep(
                        self.retry.backoff(attempt, self._retry_rng)
                    )
                continue
            return RequestOutcome(
                rid=rid,
                node=node_id,
                op=op,
                ok=bool(reply.get("ok")),
                version=version_from_wire(reply.get("version")),
                error=reply.get("error"),
                latency=time.monotonic() - started,
                retries=retries,
                degraded=bool(reply.get("degraded")),
            )
        return RequestOutcome(
            rid=rid,
            node=node_id,
            op=op,
            ok=False,
            error=last_error,
            latency=time.monotonic() - started,
            retries=retries,
        )

    async def close(self) -> None:
        conns = list(self._conns.values())
        self._conns.clear()
        for writer, _, pump in conns:
            pump.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
        for _, _, pump in conns:
            try:
                await pump
            except (asyncio.CancelledError, ClusterError):
                pass


async def replay_schedule(
    client: ClusterClient,
    schedule: Schedule,
    check_freshness: bool = True,
    fail_fast: bool = False,
) -> LoadResult:
    """Replay a schedule closed-loop: one request at a time, in order.

    With ``check_freshness`` (only sound without faults), every
    successful read must return the latest written version — a
    consistency oracle on top of the count parity."""
    result = LoadResult()
    latest = 0  # the seed version's number
    for index, request in enumerate(schedule):
        rid = index + 1
        if request.is_write:
            version = ObjectVersion(latest + 1, request.processor)
            outcome = await client.execute(
                request.processor, "write", rid, version
            )
            if outcome.ok:
                latest += 1
        else:
            outcome = await client.execute(request.processor, "read", rid)
            if outcome.ok and check_freshness:
                got = outcome.version.number if outcome.version else None
                if got != latest:
                    raise ClusterError(
                        f"stale read: request {rid} at processor "
                        f"{request.processor} returned version {got}, "
                        f"expected {latest}"
                    )
        result.outcomes.append(outcome)
        if fail_fast and not outcome.ok:
            break
    return result


async def poisson_load(
    client: ClusterClient,
    processors: Sequence[int],
    count: int,
    rate: float,
    write_fraction: float = 0.2,
    seed: int = 0,
) -> LoadResult:
    """Open-loop Poisson arrivals: fire-and-gather, overlap allowed.

    ``rate`` is the arrival rate in requests/second.  Versions are
    numbered by issue order; with overlapping writes the cluster's
    serialization may differ, so no freshness oracle applies here."""
    if count < 1:
        raise ClusterError("poisson_load needs a positive request count")
    if rate <= 0:
        raise ClusterError("the arrival rate must be positive")
    if not processors:
        raise ClusterError("poisson_load needs at least one processor")
    rng = random.Random(seed)
    tasks: List[asyncio.Task] = []
    version = 0
    for index in range(count):
        rid = index + 1
        processor = rng.choice(list(processors))
        if rng.random() < write_fraction:
            version += 1
            tasks.append(
                asyncio.ensure_future(
                    client.execute(
                        processor,
                        "write",
                        rid,
                        ObjectVersion(version, processor),
                    )
                )
            )
        else:
            tasks.append(
                asyncio.ensure_future(client.execute(processor, "read", rid))
            )
        await asyncio.sleep(rng.expovariate(rate))
    outcomes = await asyncio.gather(*tasks)
    return LoadResult(outcomes=list(outcomes))


def route_check(schedule: Schedule, processors: Sequence[int]) -> None:
    """Fail early if the schedule names a processor with no node."""
    available = set(processors)
    missing = sorted(
        {
            request.processor
            for request in schedule
            if request.processor not in available
        }
    )
    if missing:
        raise ClusterError(
            f"schedule touches processors {missing} but the cluster only "
            f"runs {sorted(available)}"
        )
