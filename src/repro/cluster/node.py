"""One live processor: an asyncio server wrapping a LocalDatabase.

A :class:`NodeServer` is the live analogue of
:class:`repro.distsim.node.Node`: it owns the processor's
:class:`~repro.storage.local_db.LocalDatabase`, its volatile protocol
state (the DA join-list), and its share of the metrics — and it listens
on a socket instead of being poked by a discrete-event loop.  Every
connection speaks the frame vocabulary of :mod:`repro.cluster.rpc`:

* ``exec`` frames from clients run one read/write through the node's
  live protocol adapter and answer with a ``result`` frame;
* ``msg`` frames from peers carry charged protocol messages;
* ``done`` frames resolve outstanding work units (the uncharged
  completion oracle);
* admin frames (``ping``/``metrics``/``set_peers``/``fault``/
  ``reset_metrics``/``crash``/``recover``/``shutdown``) let launchers
  and tests steer the node.

Crash semantics mirror :mod:`repro.distsim.failures`' fail-stop model:
a crashed node wipes its join-list, marks its stable copy suspect, and
*drops* incoming protocol messages — counting the drop and notifying
the sender's completion oracle so the origin can resolve the work unit
(writes) or fail fast (reads), exactly like the simulated network's
``on_dropped`` rule.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.cluster.durability import DEFAULT_SNAPSHOT_EVERY, NodeDurability
from repro.cluster.metrics import NodeMetrics
from repro.cluster.protocol import make_live_protocol
from repro.cluster.resilience import DedupCache, RetryPolicy
from repro.cluster.rpc import (
    read_frame,
    version_from_wire,
    version_to_wire,
    wire_to_message,
    write_frame,
)
from repro.cluster.transport import Address, FaultPlan, PeerTransport, start_server
from repro.exceptions import (
    ClusterDegradedError,
    ClusterError,
    ProtocolError,
    StorageError,
)
from repro.distsim.messages import VersionInquiry, VersionReport
from repro.storage.local_db import LocalDatabase
from repro.storage.versions import ObjectVersion

#: Request ids of recovery freshness probes.  Above the repairer's
#: ``REPAIR_RID_BASE`` band, so a probe pending can collide with
#: neither a client request nor a repair transfer.
PROBE_RID_BASE = 2_000_000_000

#: Admin frame types `_dispatch` routes to `_handle_admin`.
ADMIN_FRAME_TYPES = frozenset(
    {
        "ping",
        "metrics",
        "set_peers",
        "fault",
        "resilience",
        "status",
        "adopt",
        "set_scheme",
        "reset_metrics",
        "crash",
        "recover",
        "shutdown",
    }
)


@dataclass
class NodeConfig:
    """Static configuration one node is started with."""

    node_id: int
    scheme: Iterable[int]
    protocol: str = "DA"
    primary: Optional[int] = None
    address: Optional[Address] = None
    #: Hard ceiling on one client request; a live protocol stalled by
    #: extreme fault plans fails loudly instead of wedging the node.
    exec_timeout: float = 15.0
    #: Opt-in fault tolerance.  ``None`` (the default) reproduces PR 3's
    #: behavior byte for byte — no retries, no dedup, no degraded-mode
    #: write rejection — which is what the parity invariant relies on.
    resilience: Optional[RetryPolicy] = None
    #: Opt-in durability: the directory this node journals its state
    #: under (``<state_dir>/node-<id>/``).  ``None`` keeps the node
    #: fully volatile — PR 4's behavior, byte for byte.  With a state
    #: dir, fault-free traffic is *still* byte-identical (appends are
    #: uncharged riders on already-charged I/O); only recovery changes,
    #: gaining the tiered log-replay path.
    state_dir: Optional[str] = None
    #: WAL records between snapshots (bounds replay length).
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY
    #: fsync every WAL append.  Off by default: flush-only is durable
    #: against the fail-stop process crashes the model simulates.
    wal_sync: bool = False


@dataclass
class PendingRequest:
    """An in-flight client request awaiting downstream work units.

    The live twin of the simulator's
    :class:`~repro.distsim.protocols.base.RequestContext`: ``units``
    counts outstanding sub-operations; the future resolves when the
    request reached quiescence (for reads, with the version)."""

    rid: int
    kind: str  # "r" | "w"
    units: int
    future: asyncio.Future
    version: Optional[ObjectVersion] = None
    #: Peers whose unit settled because they were crashed (fail-stop
    #: receivers count the drop and notify the oracle).  The resilient
    #: write path inspects this to decide whether any *live* replica
    #: actually took the update.
    crash_settled: Set[int] = field(default_factory=set)

    def resolve(self) -> None:
        if not self.future.done():
            self.future.set_result(self.version)

    async def result(self) -> Optional[ObjectVersion]:
        return await self.future


@dataclass
class _Relay:
    """Invalidations a member of ``F`` fans out on a writer's behalf;
    the upstream store is acknowledged only once they all resolved."""

    upstream: int
    units: int
    #: The invalidation targets (for lazy join-list removal on
    #: crash-settled units in resilient mode).
    targets: Set[int] = field(default_factory=set)
    #: True once any relayed invalidation was permanently lost; the
    #: upstream acknowledgement then carries ``failed`` so the writer
    #: rejects instead of acknowledging over a stale surviving copy.
    failed: bool = False


class _JournaledSet(set):
    """A set that reports each net membership change to a callback.

    The DA join-list must survive crashes for the fresh-rejoin recovery
    tier, so every mutation journals the *full* membership (idempotent
    to fold, safe to truncate).  Only net changes notify: re-adding a
    member or clearing an empty set appends nothing.
    """

    def __init__(self, notify) -> None:
        super().__init__()
        self._notify = notify

    def add(self, item) -> None:
        if item not in self:
            super().add(item)
            self._notify()

    def discard(self, item) -> None:
        if item in self:
            super().discard(item)
            self._notify()

    def remove(self, item) -> None:
        super().remove(item)
        self._notify()

    def update(self, items) -> None:
        fresh = set(items) - self
        if fresh:
            super().update(fresh)
            self._notify()

    def clear(self) -> None:
        if self:
            super().clear()
            self._notify()


class NodeServer:
    """A live processor node serving one replicated object."""

    def __init__(self, config: NodeConfig) -> None:
        self.config = config
        self.node_id = config.node_id
        self.metrics = NodeMetrics(config.node_id)
        self.transport = PeerTransport(
            config.node_id, self.metrics, retry_policy=config.resilience
        )
        self.database = LocalDatabase(config.node_id)
        #: Opt-in durable state (WAL + snapshots); None = fully volatile.
        self.durability: Optional[NodeDurability] = None
        #: Highest version number this node acknowledged a write for.
        self._latest_commit = 0
        if config.state_dir:
            self.durability = NodeDurability(
                config.node_id,
                config.state_dir,
                self.metrics,
                snapshot_every=config.snapshot_every,
                sync=config.wal_sync,
            )
            self.durability.snapshot_state = self._durable_snapshot_state
        #: DA state: processors recorded as saving readers.  Journaled
        #: when durability is on (volatile otherwise, as before).
        self.join_list: Set[int] = _JournaledSet(self._journal_join_state)
        #: DA resilient state: a core member adopted into recording
        #: non-core holders after a repair round (see SchemeRepairer).
        self.steward = False
        self.crashed = False
        self.resilience: Optional[RetryPolicy] = config.resilience
        #: At-least-once dedup: completed exec replies by request id,
        #: plus the in-flight ones a concurrent retry must await.
        self._exec_cache = DedupCache(2048)
        self._exec_inflight: Dict[int, asyncio.Future] = {}
        #: Per-write invalidation targets, for lazy join-list removal
        #: when a target's unit settles by crash (resilient mode).
        self._inval_targets: Dict[int, Set[int]] = {}
        self._pending: Dict[int, PendingRequest] = {}
        self._relays: Dict[int, _Relay] = {}
        #: In-flight recovery freshness probes by request id.
        self._probes: Dict[int, asyncio.Future] = {}
        self._probe_rid = PROBE_RID_BASE + config.node_id * 1_000_000
        self._server = None
        self.address: Optional[Address] = None
        self._tasks: Set[asyncio.Task] = set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._stopped = asyncio.Event()
        # A restarting durable node resumes from its log instead of the
        # launch seed.  Replay happens before the adapter is built so new
        # appends land after the replayed suffix.
        prior = self.durability.recover() if self.durability else None
        has_state = prior is not None and not prior.empty
        # The adapter reads node state (join_list, database), so it is
        # built last; it also validates scheme/primary.  When restoring,
        # its bookkeeping appends (e.g. the DA server seeding its
        # join-list) are muted — the log already records reality.
        mute = self.durability.muted() if has_state else nullcontext()
        with mute:
            self.protocol = make_live_protocol(config.protocol, self)
        if has_state:
            self._restore_durable(prior)
        else:
            self._seed_initial_copy()

    def _seed_initial_copy(self) -> None:
        """Install version 0 uncharged iff this node is in the initial
        scheme — byte-identical to the simulated drivers' seeding."""
        scheme = self.protocol.scheme
        if self.node_id in scheme:
            version = ObjectVersion(0, min(scheme))
            self.database.seed(version)
            if self.durability is not None:
                self.durability.log_seed(version)

    def _restore_durable(self, state) -> None:
        """Resume from the durable state of a previous process.

        The logged version is reinstalled but left *suspect* (invalid):
        the peer mesh is not wired yet, so no freshness probe can run —
        the next repair round (or a crash/recover cycle, which probes)
        revalidates or refreshes it.  Replay is charged into
        ``io_reads``, the paper's ``c_io``, never into messages.
        """
        assert self.durability is not None
        with self.durability.muted():
            if state.version is not None:
                self.database.seed(state.version)
                self.database.invalidate()
            if state.scheme and set(state.scheme) != set(self.protocol.scheme):
                # Only SA ever journals scheme growth; DA's static
                # scheme never reaches this branch.
                self.protocol.update_scheme(state.scheme)
            self.join_list.clear()
            self.join_list.update(state.join_list)
            self.steward = state.steward
        self._latest_commit = state.latest_commit
        self.metrics.io_reads += state.replay_cost

    # -- durability plumbing -----------------------------------------------

    def _journal_join_state(self) -> None:
        if self.durability is not None:
            self.durability.log_join(self.join_list, self.steward)

    def _durable_snapshot_state(self) -> Dict[str, Any]:
        return {
            "version": version_to_wire(self.database.peek_version()),
            "valid": self.database.holds_valid_copy,
            "join_list": sorted(self.join_list),
            "steward": self.steward,
            "scheme": sorted(self.protocol.scheme),
            "latest_commit": self._latest_commit,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Address:
        """Bind the listener; returns the actual (resolved) address."""
        if self.config.address is None:
            raise ClusterError(f"node {self.node_id} has no listen address")
        self._server, self.address = await start_server(
            self.config.address, self._on_connection
        )
        return self.address

    async def serve_forever(self) -> None:
        """Block until a ``shutdown`` admin frame (or `stop()`)."""
        await self._stopped.wait()
        await self.stop()

    async def stop(self) -> None:
        self._stopped.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        # Close client connections so their handlers exit on EOF instead
        # of being cancelled (cancellation is noisy on asyncio streams).
        for writer in list(self._connections):
            writer.close()
        await self.transport.close()
        if self.durability is not None:
            self.durability.close()

    # -- connection pump ---------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()
        self._connections.add(writer)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except ClusterError:
                    break  # garbage on the wire: drop the connection
                if frame is None:
                    break
                await self._dispatch(frame, writer, lock)
        except asyncio.CancelledError:  # pragma: no cover - loop teardown
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionError,
                OSError,
                asyncio.CancelledError,
            ):  # pragma: no cover - teardown
                pass

    async def _dispatch(
        self,
        frame: Mapping[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        kind = frame["type"]
        if kind == "exec":
            self._spawn(self._handle_exec(frame, writer, lock))
        elif kind == "msg":
            self._spawn(self._handle_msg(frame))
        elif kind == "done":
            self._spawn(self._handle_done(frame))
        elif kind == "repair":
            self._spawn(self._handle_repair_copy(frame))
        elif kind == "repair_send":
            # Async admin: the reply waits for the peer-plane transfer.
            self._spawn(self._handle_repair_send(frame, writer, lock))
        elif kind == "recover":
            # Async admin too: durable recovery replays the log and may
            # run a freshness probe round against a peer.
            self._spawn(self._handle_recover(frame, writer, lock))
        elif kind in ADMIN_FRAME_TYPES:
            await self._handle_admin(kind, frame, writer, lock)
        else:
            async with lock:
                await write_frame(
                    writer,
                    {"type": "error", "error": f"unknown frame type {kind!r}"},
                )

    def _spawn(self, coro) -> None:
        """Run a handler concurrently so the read pump never blocks on
        protocol work (which may await peers on *other* connections)."""
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- the client plane --------------------------------------------------

    async def _handle_exec(
        self,
        frame: Mapping[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        rid = int(frame.get("rid", 0))
        if self.resilience is not None:
            # At-least-once dedup: a client retry of a request that
            # already ran (or is running) must observe the original
            # outcome, never re-execute a write.
            cached = self._exec_cache.lookup(rid)
            if cached is not None:
                self.metrics.dedup_hits += 1
                async with lock:
                    await write_frame(writer, cached)
                return
            inflight = self._exec_inflight.get(rid)
            if inflight is not None:
                self.metrics.dedup_hits += 1
                payload = await inflight
                async with lock:
                    await write_frame(writer, payload)
                return
            self._exec_inflight[rid] = (
                asyncio.get_running_loop().create_future()
            )
        started = time.monotonic()
        try:
            version = await asyncio.wait_for(
                self._execute(frame, rid), self.config.exec_timeout
            )
            self.metrics.requests_completed += 1
            self.metrics.latencies.append(time.monotonic() - started)
            if frame.get("op") == "write" and version is not None:
                # Journal the commit *before* the ack leaves the node:
                # an acknowledged write must be recoverable from the log.
                self._latest_commit = max(self._latest_commit, version.number)
                if self.durability is not None:
                    self.durability.log_commit(rid, version.number)
            payload = {
                "type": "result",
                "rid": rid,
                "ok": True,
                "version": version_to_wire(version),
            }
        except asyncio.TimeoutError:
            self.metrics.request_errors += 1
            self._pending.pop(rid, None)
            self._inval_targets.pop(rid, None)
            payload = {
                "type": "result",
                "rid": rid,
                "ok": False,
                "error": (
                    f"request {rid} timed out after "
                    f"{self.config.exec_timeout}s"
                ),
            }
        except (ClusterError, ProtocolError, StorageError) as error:
            self.metrics.request_errors += 1
            self._pending.pop(rid, None)
            self._inval_targets.pop(rid, None)
            payload = {"type": "result", "rid": rid, "ok": False, "error": str(error)}
            if isinstance(error, ClusterDegradedError):
                payload["degraded"] = True
        if self.resilience is not None:
            self._exec_cache.store(rid, payload)
            inflight = self._exec_inflight.pop(rid, None)
            if inflight is not None and not inflight.done():
                inflight.set_result(payload)
        async with lock:
            await write_frame(writer, payload)

    async def _execute(
        self, frame: Mapping[str, Any], rid: int
    ) -> Optional[ObjectVersion]:
        if self.crashed:
            raise ClusterError(f"node {self.node_id} is crashed")
        op = frame.get("op")
        if op == "read":
            return await self.protocol.client_read(rid)
        if op == "write":
            version = version_from_wire(frame.get("version"))
            if version is None:
                raise ClusterError("a write exec frame needs a 'version'")
            await self.protocol.client_write(rid, version)
            return version
        raise ClusterError(f"unknown exec op {op!r} (expected read/write)")

    # -- the peer plane ----------------------------------------------------

    async def _handle_msg(self, frame: Mapping[str, Any]) -> None:
        message = wire_to_message(frame)
        if message.receiver != self.node_id:
            raise ClusterError(
                f"node {self.node_id} received {message.describe()} "
                "addressed to someone else"
            )
        if self.crashed:
            # Fail-stop: the message dies at the dead node.  Count the
            # drop and resolve the sender's work unit via the oracle,
            # matching the simulated network's on_dropped rule.
            self.metrics.dropped_messages += 1
            await self.transport.send_done(
                message.sender,
                getattr(message, "request_id", 0),
                dropped=True,
            )
            return
        await self.protocol.handle_message(message)

    async def _handle_done(self, frame: Mapping[str, Any]) -> None:
        rid = int(frame.get("rid", 0))
        dropped = bool(frame.get("dropped", False))
        failed = bool(frame.get("failed", False))
        source = int(frame.get("from", -1))
        if rid in self._relays:
            if dropped and source in self._relays[rid].targets:
                # The target crashed — its copy is invalid, so it is
                # safe to forget (lazy removal keeps only targets whose
                # invalidation could NOT be confirmed).
                self.join_list.discard(source)
            await self.finish_relay_unit(rid, failed=failed)
            return
        if rid in self._probes:
            # A freshness probe's peer was crashed (or its report was
            # lost): settle the probe empty so recovery tries the next
            # candidate or falls back to the stale tier.
            future = self._probes[rid]
            if not future.done():
                future.set_result(None)
            return
        pending = self._pending.get(rid)
        if pending is None:
            return  # late oracle for a request that already failed
        if failed:
            # A downstream relay could not invalidate a stale holder:
            # acknowledging the write would let that copy be read later.
            self.fail_pending(
                rid,
                f"write {rid}: a relayed invalidation was permanently "
                "lost; a stale copy may survive",
                degraded=True,
            )
            return
        if dropped:
            pending.crash_settled.add(source)
            if source in self._inval_targets.get(rid, ()):
                self.join_list.discard(source)
            if pending.kind == "r":
                self.fail_pending(
                    rid, f"the response to read {rid} was lost in transit"
                )
                return
        # A write's store/invalidate resolved (delivered or dropped —
        # either way the work unit is settled).
        self.finish_unit(rid, dropped=dropped)

    # -- admin plane -------------------------------------------------------

    async def _handle_admin(
        self,
        kind: str,
        frame: Mapping[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        try:
            reply = self._admin_reply(kind, frame)
        except ClusterError as error:
            reply = {"type": "error", "error": str(error)}
        async with lock:
            await write_frame(writer, reply)
        if kind == "shutdown" and reply.get("type") == "ok":
            self._stopped.set()

    def _admin_reply(
        self, kind: str, frame: Mapping[str, Any]
    ) -> Dict[str, Any]:
        if kind == "ping":
            return {
                "type": "pong",
                "node": self.node_id,
                "crashed": self.crashed,
                "protocol": self.protocol.name,
            }
        if kind == "metrics":
            return {"type": "metrics_report", "metrics": self.metrics.to_wire()}
        if kind == "set_peers":
            self.transport.set_peers(
                {
                    int(node): Address.parse(rendered)
                    for node, rendered in frame.get("peers", {}).items()
                }
            )
            return {"type": "ok", "op": "set_peers"}
        if kind == "fault":
            plan = frame.get("plan")
            self.transport.fault_plan = (
                FaultPlan.from_wire(plan) if plan is not None else None
            )
            return {"type": "ok", "op": "fault"}
        if kind == "resilience":
            policy = frame.get("policy")
            self.set_resilience(
                RetryPolicy.from_wire(policy) if policy is not None else None
            )
            return {"type": "ok", "op": "resilience"}
        if kind == "status":
            version = self.database.peek_version()
            return {
                "type": "status",
                "node": self.node_id,
                "crashed": self.crashed,
                "holds_valid_copy": self.database.holds_valid_copy,
                "version": version_to_wire(version),
                "join_list": sorted(self.join_list),
                "steward": self.steward,
                "scheme": sorted(self.protocol.scheme),
                "protocol": self.protocol.name,
                "durable": self.durability is not None,
                "latest_commit": self._latest_commit,
            }
        if kind == "adopt":
            if self.crashed:
                raise ClusterError(
                    f"node {self.node_id} is crashed and cannot adopt"
                )
            if bool(frame.get("steward", False)) and not self.steward:
                # Flip the flag before the membership update so the
                # journaled join record carries the steward bit.
                self.steward = True
                self._journal_join_state()
            self.join_list.update(int(n) for n in frame.get("nodes", ()))
            return {"type": "ok", "op": "adopt"}
        if kind == "set_scheme":
            members = frozenset(int(n) for n in frame.get("scheme", ()))
            self.protocol.update_scheme(members)
            if self.durability is not None:
                self.durability.log_scheme(members)
            return {"type": "ok", "op": "set_scheme"}
        if kind == "reset_metrics":
            self.reset_metrics()
            return {"type": "ok", "op": "reset_metrics"}
        if kind == "crash":
            self.crash()
            return {"type": "ok", "op": "crash"}
        if kind == "shutdown":
            return {"type": "ok", "op": "shutdown"}
        raise ClusterError(f"unknown admin frame {kind!r}")

    def set_resilience(self, policy: Optional[RetryPolicy]) -> None:
        """Install (or clear) the opt-in fault-tolerance machinery."""
        self.resilience = policy
        self.transport.set_retry_policy(policy)

    # -- scheme repair -----------------------------------------------------

    async def _handle_repair_send(
        self,
        frame: Mapping[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """Admin: act as repair donor — copy our object to a peer.

        Replies only after the transfer settled, so the repairer can
        drive rounds synchronously.  The copy is charged as one data
        message at this node (see ``PeerTransport.send_repair``) plus
        the store I/O at the target; the donor's local read is
        uncharged, like the simulator's recovery handshakes.  Fault-free
        runs never repair, so parity is untouched."""
        target = int(frame.get("target", -1))
        rid = int(frame.get("rid", 0))
        try:
            if self.crashed:
                raise ClusterError(
                    f"repair donor {self.node_id} is crashed"
                )
            if not self.database.holds_valid_copy:
                raise ClusterError(
                    f"repair donor {self.node_id} holds no valid copy"
                )
            version = self.database.peek_version()
            pending = self.open_pending(rid, "w", units=1)
            delivered = await self.transport.send_repair(
                target, rid, version_to_wire(version)
            )
            if not delivered:
                self.fail_pending(
                    rid,
                    f"repair copy {self.node_id} -> {target} was lost "
                    "in transit",
                )
            await pending.result()
            if target in pending.crash_settled:
                raise ClusterError(
                    f"repair target {target} is crashed"
                )
            reply: Dict[str, Any] = {
                "type": "repair_report",
                "donor": self.node_id,
                "target": target,
                "version": version_to_wire(version),
            }
        except ClusterError as error:
            self._pending.pop(rid, None)
            reply = {"type": "error", "error": str(error)}
        async with lock:
            await write_frame(writer, reply)

    async def _handle_repair_copy(self, frame: Mapping[str, Any]) -> None:
        """Peer plane: install a repair copy shipped by a donor."""
        rid = int(frame.get("rid", 0))
        donor = int(frame.get("from", -1))
        if self.crashed:
            self.metrics.dropped_messages += 1
            await self.transport.send_done(donor, rid, dropped=True)
            return
        version = version_from_wire(frame.get("version"))
        if version is None:
            raise ClusterError("a repair frame needs a 'version'")
        self.output_object(version)
        self.metrics.repairs_received += 1
        await self.transport.send_done(donor, rid)

    # -- state used by the protocol adapters -------------------------------

    def input_object(self) -> ObjectVersion:
        """Read the object from the local database (charged I/O)."""
        version = self.database.input_object()
        self.metrics.io_reads += 1
        return version

    def output_object(self, version: ObjectVersion) -> None:
        """Write the object to the local database (charged I/O).

        The WAL append rides on this already-charged ``c_io`` write —
        uncharged itself, which is what keeps fault-free parity exact
        with durability enabled."""
        self.database.output_object(version)
        self.metrics.io_writes += 1
        if self.durability is not None:
            self.durability.log_object(version)

    def invalidate_object(self) -> None:
        """Invalidate the local copy, journaled.  Protocol adapters call
        this instead of touching the database directly so a re-crash
        replays the invalidation instead of resurrecting a stale copy."""
        self.database.invalidate()
        if self.durability is not None:
            self.durability.log_invalidate()

    def open_pending(self, rid: int, kind: str, units: int) -> PendingRequest:
        if rid in self._pending:
            raise ClusterError(f"request id {rid} is already in flight here")
        pending = PendingRequest(
            rid=rid,
            kind=kind,
            units=units,
            future=asyncio.get_running_loop().create_future(),
        )
        if units <= 0:
            pending.resolve()
        else:
            self._pending[rid] = pending
        return pending

    def finish_unit(self, rid: int, dropped: bool = False) -> None:
        pending = self._pending.get(rid)
        if pending is None:
            return
        pending.units -= 1
        if pending.units <= 0:
            self._pending.pop(rid, None)
            self._inval_targets.pop(rid, None)
            pending.resolve()

    def fail_pending(self, rid: int, reason: str, degraded: bool = False) -> None:
        pending = self._pending.pop(rid, None)
        self._inval_targets.pop(rid, None)
        if degraded:
            self.metrics.degraded_rejections += 1
        if pending is not None and not pending.future.done():
            error_type = ClusterDegradedError if degraded else ClusterError
            pending.future.set_exception(error_type(reason))

    def resolve_read(
        self, rid: int, version: ObjectVersion, save: bool = False
    ) -> bool:
        """Claim an incoming DataTransfer as *this node's* read response.

        Request ids are globally unique (the load generator assigns
        them), so holding a read pending for ``rid`` is proof the
        transfer answers our own request rather than delivering a
        write's store.  Saving readers (DA) charge the output here."""
        pending = self._pending.get(rid)
        if pending is None or pending.kind != "r":
            return False
        if save:
            self.output_object(version)
        pending.version = version
        self.finish_unit(rid)
        return True

    def open_relay(
        self,
        rid: int,
        upstream: int,
        units: int,
        targets: Optional[Iterable[int]] = None,
    ) -> None:
        self._relays[rid] = _Relay(
            upstream=upstream,
            units=units,
            targets=set(targets) if targets is not None else set(),
        )

    async def finish_relay_unit(self, rid: int, failed: bool = False) -> None:
        relay = self._relays.get(rid)
        if relay is None:
            return
        relay.failed = relay.failed or failed
        relay.units -= 1
        if relay.units <= 0:
            self._relays.pop(rid, None)
            await self.transport.send_done(
                relay.upstream, rid, failed=relay.failed
            )

    # -- failures ----------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: volatile state lost, stable copy suspect.

        The WAL is deliberately *not* written to here: it must keep the
        pre-crash state, which is exactly what the fresh-rejoin recovery
        tier restores (a crash loses volatile memory, not the disk)."""
        if self.crashed:
            raise ClusterError(f"node {self.node_id} is already down")
        self.crashed = True
        mute = (
            self.durability.muted()
            if self.durability is not None
            else nullcontext()
        )
        with mute:
            self.join_list.clear()
            self.steward = False
            self.database.crash()
        self._relays.clear()
        self._inval_targets.clear()
        for rid in list(self._pending):
            self.fail_pending(rid, f"node {self.node_id} crashed")
        for future in self._probes.values():
            if not future.done():
                future.set_result(None)
        self._probes.clear()

    def recover(self) -> None:
        """Volatile rejoin; the copy stays invalid until re-read from
        the scheme (it may have missed writes), per the simulator's
        semantics.  Durable nodes recover through :meth:`recover_async`
        (the ``recover`` admin frame), which replays the log first."""
        if not self.crashed:
            raise ClusterError(f"node {self.node_id} is not down")
        self.crashed = False

    async def recover_async(self) -> Dict[str, Any]:
        """Tiered recovery; returns the ``recover`` admin reply.

        Tiers (see ``docs/durability.md``):

        * ``volatile`` — no state dir; PR 4 behavior, copy suspect.
        * ``log-fresh`` — the replayed version is still the latest
          (vouched by a peer over one control round): rejoin with the
          full journaled state and **zero data messages**.
        * ``log-stale`` — a peer holds something newer; stay invalid
          and let the ``SchemeRepairer`` copy path refresh us.
        * ``log-empty`` — nothing durable to rejoin with (same fallback).
        * ``log-unverified`` — no peer could vouch; conservatively
          treated as stale.

        Replay is charged as local I/O (``io_reads``), the probe as one
        control round trip (inquiry here, report at the peer) — never
        as data messages.  Damage (torn/corrupt tail) was already
        truncated by the WAL, so ``damaged``/``truncated_bytes`` in the
        reply report what the crash cost."""
        self.recover()  # the not-down check + volatile rejoin
        reply: Dict[str, Any] = {
            "type": "ok",
            "op": "recover",
            "node": self.node_id,
            "tier": "volatile",
        }
        if self.durability is None:
            return reply
        state = self.durability.recover()
        self.metrics.io_reads += state.replay_cost
        reply.update(
            replayed=state.replayed,
            truncated_bytes=state.truncated_bytes,
            damaged=state.damaged,
            version=version_to_wire(state.version),
        )
        if state.version is None or not state.valid:
            reply["tier"] = "log-empty" if state.version is None else "log-stale"
            self._settle_stale_recovery(state)
            return reply
        peer, peer_number = await self._probe_freshness()
        reply["probe_peer"] = peer
        reply["peer_version"] = peer_number
        if peer is None:
            reply["tier"] = "log-unverified"
            self._settle_stale_recovery(state)
            return reply
        if peer_number > state.version.number:
            reply["tier"] = "log-stale"
            self._settle_stale_recovery(state)
            return reply
        # Fresh: reinstall the journaled state as-is.  Muted — the log
        # already records exactly this state.
        with self.durability.muted():
            self.database.seed(state.version)
            self.join_list.clear()
            self.join_list.update(state.join_list)
            self.steward = state.steward
        self._latest_commit = state.latest_commit
        self.metrics.fresh_rejoins += 1
        self.durability.log_note(
            "recovered", tier="log-fresh", number=state.version.number
        )
        reply["tier"] = "log-fresh"
        return reply

    def _settle_stale_recovery(self, state) -> None:
        """The log could not prove freshness: stay invalid (``crash()``
        already wiped the volatile state) and journal that outcome, so
        a re-crash before the repair round replays reality instead of
        the stale past."""
        assert self.durability is not None
        self._latest_commit = state.latest_commit
        self.durability.log_invalidate()
        self.durability.log_join((), False)

    async def _probe_freshness(self) -> Tuple[Optional[int], Optional[int]]:
        """Ask peers to vouch for the logged version's freshness.

        Walks the protocol's candidate order (the read-failover order),
        one control round trip per attempt: a ``VersionInquiry`` out, a
        ``VersionReport`` back — message types the quorum literature's
        recovery handshake already defines (cf.
        :mod:`repro.distsim.protocols.missing_writes`: an empty log is
        revalidated at the price of a version check).  Returns
        ``(peer, version_number)`` from the first peer that holds a
        valid copy, or ``(None, None)`` when nobody can vouch."""
        loop = asyncio.get_running_loop()
        for peer in self.protocol.probe_candidates():
            self._probe_rid += 1
            rid = self._probe_rid
            future: asyncio.Future = loop.create_future()
            self._probes[rid] = future
            try:
                delivered = await self.transport.send_protocol(
                    VersionInquiry(self.node_id, peer, request_id=rid)
                )
                if not delivered:
                    continue
                report = await asyncio.wait_for(
                    future, timeout=self.config.exec_timeout
                )
            except asyncio.TimeoutError:
                report = None
            finally:
                self._probes.pop(rid, None)
            if report is None:
                continue  # the peer is crashed or the report was lost
            number, holds = report
            if not holds:
                continue  # a copyless peer cannot vouch either way
            return peer, number
        return None, None

    def resolve_probe(self, message: VersionReport) -> bool:
        """Claim an incoming ``VersionReport`` as one of our probes."""
        future = self._probes.get(message.request_id)
        if future is None:
            return False
        if not future.done():
            future.set_result((message.version_number, message.holds_copy))
        return True

    async def _handle_recover(
        self,
        frame: Mapping[str, Any],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        try:
            reply = await self.recover_async()
        except ClusterError as error:
            reply = {"type": "error", "error": str(error)}
        async with lock:
            await write_frame(writer, reply)

    def reset_metrics(self) -> None:
        """Fresh counters (e.g. after warm-up); shared with transport."""
        self.metrics = NodeMetrics(self.node_id)
        self.transport.metrics = self.metrics
        if self.durability is not None:
            self.durability.metrics = self.metrics
