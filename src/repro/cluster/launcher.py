"""Cluster bootstrap: start N nodes, wire them, steer them.

Two launch modes share one :class:`ClusterHandle` admin surface:

* :func:`start_local_cluster` — every :class:`~repro.cluster.node.NodeServer`
  runs in the calling process's event loop.  The sockets are real (Unix
  domain by default, TCP loopback on request), only the processes are
  shared; this is the mode the parity tests and CI smoke job use.
* :func:`start_subprocess_cluster` — each node is a separate
  ``repro cluster serve`` process.  The child announces its resolved
  listen address on stdout (``CLUSTER-LISTENING <id> <address>``) so
  the launcher can bind ephemeral ports first and wire peers after.

Either way, peer wiring, fault-plan installation, crash/recover and
metrics collection all go through admin frames over the same sockets
the protocols use — there is no in-process back channel, so the local
mode exercises exactly the machinery of the distributed one.
"""

from __future__ import annotations

import asyncio
import os
import socket
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.cluster.metrics import NodeMetrics, aggregate
from repro.cluster.node import NodeConfig, NodeServer
from repro.cluster.resilience import RetryPolicy
from repro.cluster.rpc import read_frame, write_frame
from repro.cluster.transport import Address, FaultPlan, open_channel
from repro.distsim.statistics import SimulationStats
from repro.exceptions import ClusterError

#: Handshake line a serving node prints once it is listening.
LISTENING_BANNER = "CLUSTER-LISTENING"

#: How long to wait for a subprocess node to announce itself.
SPAWN_TIMEOUT = 20.0


def _has_unix_sockets() -> bool:
    return hasattr(socket, "AF_UNIX")


def resolve_transport(kind: str) -> str:
    """Normalize a transport choice; ``auto`` prefers Unix sockets."""
    key = kind.strip().lower()
    if key == "auto":
        return "unix" if _has_unix_sockets() else "tcp"
    if key in ("unix", "tcp"):
        if key == "unix" and not _has_unix_sockets():
            raise ClusterError("this platform has no AF_UNIX sockets")
        return key
    raise ClusterError(f"unknown transport {kind!r} (expected auto/unix/tcp)")


@dataclass
class ClusterSpec:
    """What to launch: which processors, protocol and transport."""

    processors: Tuple[int, ...]
    scheme: frozenset
    protocol: str = "DA"
    primary: Optional[int] = None
    transport: str = "auto"
    exec_timeout: float = 15.0
    #: Opt-in fault tolerance: ``None`` (the default) launches nodes
    #: that behave byte-identically to clusters without the resilience
    #: layer — the fault-free parity contract.
    resilience: Optional[RetryPolicy] = None
    #: Opt-in durability: a directory each node journals its state
    #: under (``<state_dir>/node-<id>/``).  ``None`` launches fully
    #: volatile nodes, PR 4 behavior byte for byte; with a state dir,
    #: fault-free traffic is still byte-identical — only recovery
    #: changes (tiered log replay; see ``docs/durability.md``).
    state_dir: Optional[str] = None
    #: WAL records between snapshots on each durable node.
    snapshot_every: int = 64

    def __post_init__(self) -> None:
        self.processors = tuple(sorted(set(int(p) for p in self.processors)))
        self.scheme = frozenset(int(p) for p in self.scheme)
        if not self.processors:
            raise ClusterError("a cluster needs at least one processor")
        missing = self.scheme - set(self.processors)
        if missing:
            raise ClusterError(
                f"scheme members {sorted(missing)} are not launched processors"
            )

    def node_config(self, node_id: int, address: Address) -> NodeConfig:
        return NodeConfig(
            node_id=node_id,
            scheme=self.scheme,
            protocol=self.protocol,
            primary=self.primary,
            address=address,
            exec_timeout=self.exec_timeout,
            resilience=self.resilience,
            state_dir=self.state_dir,
            snapshot_every=self.snapshot_every,
        )


def _listen_addresses(
    spec: ClusterSpec, socket_dir: Optional[str]
) -> Dict[int, Address]:
    transport = resolve_transport(spec.transport)
    if transport == "unix":
        if socket_dir is None:
            raise ClusterError("unix transport needs a socket directory")
        return {
            node_id: Address(
                "unix", path=os.path.join(socket_dir, f"node-{node_id}.sock")
            )
            for node_id in spec.processors
        }
    return {
        node_id: Address("tcp", host="127.0.0.1", port=0)
        for node_id in spec.processors
    }


class ClusterHandle:
    """Admin-plane view of a running cluster (any launch mode)."""

    def __init__(self, spec: ClusterSpec, addresses: Dict[int, Address]) -> None:
        self.spec = spec
        self.addresses = dict(addresses)
        self._admin: Dict[
            int, Tuple[asyncio.StreamReader, asyncio.StreamWriter]
        ] = {}

    # -- raw admin calls ---------------------------------------------------

    async def _channel(
        self, node_id: int
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if node_id not in self._admin:
            if node_id not in self.addresses:
                raise ClusterError(f"no such node {node_id}")
            self._admin[node_id] = await open_channel(self.addresses[node_id])
        return self._admin[node_id]

    def _drop_channel(self, node_id: int) -> None:
        """Evict a broken admin channel so the next call redials."""
        entry = self._admin.pop(node_id, None)
        if entry is not None:
            entry[1].close()

    async def admin(self, node_id: int, payload: Mapping[str, Any]) -> Dict:
        """One admin request/response round trip with a node."""
        reader, writer = await self._channel(node_id)
        try:
            await write_frame(writer, payload)
            reply = await read_frame(reader)
        except (ConnectionError, OSError) as error:
            self._drop_channel(node_id)
            raise ClusterError(
                f"admin channel to node {node_id} failed: {error}"
            ) from error
        if reply is None:
            self._drop_channel(node_id)
            raise ClusterError(f"node {node_id} hung up mid-admin-call")
        if reply.get("type") == "error":
            raise ClusterError(f"node {node_id}: {reply.get('error')}")
        return reply

    # -- cluster-wide operations -------------------------------------------

    async def wire_peers(self) -> None:
        """Tell every node where every other node listens."""
        rendered = {
            str(node_id): address.render()
            for node_id, address in self.addresses.items()
        }
        for node_id in self.spec.processors:
            peers = {
                key: value
                for key, value in rendered.items()
                if key != str(node_id)
            }
            await self.admin(node_id, {"type": "set_peers", "peers": peers})

    async def ping_all(self) -> None:
        for node_id in self.spec.processors:
            reply = await self.admin(node_id, {"type": "ping"})
            if reply.get("node") != node_id:
                raise ClusterError(
                    f"address of node {node_id} answered as "
                    f"node {reply.get('node')}"
                )

    async def metrics(self) -> Dict[int, NodeMetrics]:
        result: Dict[int, NodeMetrics] = {}
        for node_id in self.spec.processors:
            reply = await self.admin(node_id, {"type": "metrics"})
            result[node_id] = NodeMetrics.from_wire(reply["metrics"])
        return result

    async def aggregate_stats(self) -> SimulationStats:
        return aggregate((await self.metrics()).values())

    async def reset_metrics(self) -> None:
        for node_id in self.spec.processors:
            await self.admin(node_id, {"type": "reset_metrics"})

    async def set_fault_plan(
        self,
        plan: Optional[FaultPlan],
        nodes: Optional[Iterable[int]] = None,
    ) -> None:
        """Install (or clear, with ``None``) a sender-side fault plan."""
        wire = plan.to_wire() if plan is not None else None
        for node_id in nodes if nodes is not None else self.spec.processors:
            await self.admin(node_id, {"type": "fault", "plan": wire})

    async def set_resilience(
        self,
        policy: Optional[RetryPolicy],
        nodes: Optional[Iterable[int]] = None,
    ) -> None:
        """Install (or clear, with ``None``) the retry/dedup machinery."""
        wire = policy.to_wire() if policy is not None else None
        for node_id in nodes if nodes is not None else self.spec.processors:
            await self.admin(node_id, {"type": "resilience", "policy": wire})

    async def status(self, node_id: int) -> Dict:
        """One node's self-reported repair-relevant state."""
        return await self.admin(node_id, {"type": "status"})

    async def status_all(
        self, nodes: Optional[Iterable[int]] = None
    ) -> Dict[int, Dict]:
        """Status of every node that still answers its admin socket.

        Nodes whose admin channel is gone (a killed subprocess, not a
        simulated crash — those still answer) are silently omitted; the
        repairer treats absence as unreachable."""
        result: Dict[int, Dict] = {}
        for node_id in nodes if nodes is not None else self.spec.processors:
            try:
                result[node_id] = await self.status(node_id)
            except (ClusterError, ConnectionError, OSError):
                continue
        return result

    async def repair(self, donor: int, target: int, rid: int) -> Dict:
        """Ask ``donor`` to copy its object to ``target`` (one data
        message charged at the donor; see ``NodeServer._handle_repair_send``)."""
        return await self.admin(
            donor, {"type": "repair_send", "target": target, "rid": rid}
        )

    async def adopt(
        self, node_id: int, nodes: Iterable[int], steward: bool = False
    ) -> None:
        """Register ``nodes`` in a core member's join-list (DA repair)."""
        await self.admin(
            node_id,
            {
                "type": "adopt",
                "nodes": sorted(int(n) for n in nodes),
                "steward": bool(steward),
            },
        )

    async def set_scheme(
        self, members: Iterable[int], nodes: Optional[Iterable[int]] = None
    ) -> None:
        """Broadcast a repaired allocation scheme (SA repair)."""
        wire = sorted(int(member) for member in members)
        for node_id in nodes if nodes is not None else self.spec.processors:
            await self.admin(node_id, {"type": "set_scheme", "scheme": wire})

    async def crash(self, node_id: int) -> None:
        await self.admin(node_id, {"type": "crash"})

    async def recover(self, node_id: int) -> Dict:
        """Recover a crashed node; the reply reports the recovery tier
        (``volatile``/``log-fresh``/``log-stale``/``log-empty``/
        ``log-unverified``), replay counts and any log damage."""
        return await self.admin(node_id, {"type": "recover"})

    async def shutdown_nodes(self) -> None:
        for node_id in self.spec.processors:
            try:
                await self.admin(node_id, {"type": "shutdown"})
            except (ClusterError, ConnectionError, OSError):
                pass  # already gone

    async def close_admin(self) -> None:
        channels = list(self._admin.values())
        self._admin.clear()
        for _, writer in channels:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def stop(self) -> None:  # pragma: no cover - overridden
        await self.close_admin()


class LocalCluster(ClusterHandle):
    """All nodes in this process's event loop, real sockets between."""

    def __init__(
        self,
        spec: ClusterSpec,
        addresses: Dict[int, Address],
        nodes: Dict[int, NodeServer],
        socket_dir: Optional[tempfile.TemporaryDirectory],
    ) -> None:
        super().__init__(spec, addresses)
        self.nodes = nodes
        self._socket_dir = socket_dir

    async def stop(self) -> None:
        await self.close_admin()
        for node in self.nodes.values():
            await node.stop()
        if self._socket_dir is not None:
            self._socket_dir.cleanup()
            self._socket_dir = None


async def start_local_cluster(spec: ClusterSpec) -> LocalCluster:
    """Launch every node in-process and wire the peer mesh."""
    socket_dir = None
    if resolve_transport(spec.transport) == "unix":
        socket_dir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
    planned = _listen_addresses(
        spec, socket_dir.name if socket_dir else None
    )
    nodes: Dict[int, NodeServer] = {}
    actual: Dict[int, Address] = {}
    try:
        for node_id in spec.processors:
            node = NodeServer(spec.node_config(node_id, planned[node_id]))
            actual[node_id] = await node.start()
            nodes[node_id] = node
        cluster = LocalCluster(spec, actual, nodes, socket_dir)
        await cluster.wire_peers()
        return cluster
    except BaseException:
        for node in nodes.values():
            await node.stop()
        if socket_dir is not None:
            socket_dir.cleanup()
        raise


class SubprocessCluster(ClusterHandle):
    """Every node is a separate ``repro cluster serve`` process."""

    def __init__(
        self,
        spec: ClusterSpec,
        addresses: Dict[int, Address],
        processes: Dict[int, asyncio.subprocess.Process],
        socket_dir: Optional[tempfile.TemporaryDirectory],
    ) -> None:
        super().__init__(spec, addresses)
        self.processes = processes
        self._socket_dir = socket_dir

    async def stop(self) -> None:
        await self.shutdown_nodes()
        await self.close_admin()
        for process in self.processes.values():
            try:
                await asyncio.wait_for(process.wait(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - hung child
                process.kill()
                await process.wait()
        if self._socket_dir is not None:
            self._socket_dir.cleanup()
            self._socket_dir = None


def _serve_command(spec: ClusterSpec, node_id: int, address: Address) -> List[str]:
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "cluster",
        "serve",
        "--node-id",
        str(node_id),
        "--protocol",
        spec.protocol,
        "--scheme",
        ",".join(str(p) for p in sorted(spec.scheme)),
        "--listen",
        address.render(),
        "--exec-timeout",
        str(spec.exec_timeout),
    ]
    if spec.primary is not None:
        command += ["--primary", str(spec.primary)]
    if spec.state_dir is not None:
        command += [
            "--state-dir",
            spec.state_dir,
            "--snapshot-every",
            str(spec.snapshot_every),
        ]
    return command


async def _await_banner(
    node_id: int, process: asyncio.subprocess.Process
) -> Address:
    assert process.stdout is not None
    while True:
        line = await asyncio.wait_for(
            process.stdout.readline(), timeout=SPAWN_TIMEOUT
        )
        if not line:
            raise ClusterError(
                f"node {node_id} exited before announcing its address"
            )
        text = line.decode("utf-8", "replace").strip()
        if not text.startswith(LISTENING_BANNER):
            continue  # tolerate interpreter chatter before the banner
        parts = text.split()
        if len(parts) != 3 or parts[1] != str(node_id):
            raise ClusterError(f"bad handshake from node {node_id}: {text!r}")
        return Address.parse(parts[2])


async def start_subprocess_cluster(spec: ClusterSpec) -> SubprocessCluster:
    """Launch every node as its own OS process and wire the mesh."""
    socket_dir = None
    if resolve_transport(spec.transport) == "unix":
        socket_dir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
    planned = _listen_addresses(
        spec, socket_dir.name if socket_dir else None
    )
    env = dict(os.environ)
    # Ensure the child resolves the same `repro` package as the parent.
    import repro as _repro_pkg

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(_repro_pkg.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else os.pathsep.join([src_root, existing])
    )
    processes: Dict[int, asyncio.subprocess.Process] = {}
    actual: Dict[int, Address] = {}
    try:
        for node_id in spec.processors:
            process = await asyncio.create_subprocess_exec(
                *_serve_command(spec, node_id, planned[node_id]),
                stdout=asyncio.subprocess.PIPE,
                stderr=asyncio.subprocess.DEVNULL,
                env=env,
            )
            processes[node_id] = process
            actual[node_id] = await _await_banner(node_id, process)
        cluster = SubprocessCluster(spec, actual, processes, socket_dir)
        await cluster.wire_peers()
        await cluster.ping_all()
        if spec.resilience is not None:
            # `serve` has no resilience flag; install over the admin
            # plane so both launch modes honour the spec.
            await cluster.set_resilience(spec.resilience)
        return cluster
    except BaseException:
        for process in processes.values():
            if process.returncode is None:
                process.kill()
                await process.wait()
        if socket_dir is not None:
            socket_dir.cleanup()
        raise


async def start_cluster(
    spec: ClusterSpec, subprocesses: bool = False
) -> ClusterHandle:
    """Launch in the requested mode behind one interface."""
    if subprocesses:
        return await start_subprocess_cluster(spec)
    return await start_local_cluster(spec)
