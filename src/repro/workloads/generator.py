"""Workload generator base class and helpers.

Every generator is deterministic given a seed: benchmark runs are
reproducible, and the hypothesis-based property tests can shrink
failing workloads.  Generators produce
:class:`~repro.model.schedule.Schedule` objects — pure request
sequences — so any DOM algorithm (and the offline optimum) can consume
them unchanged.

Seeding discipline (required for cross-process determinism in the
experiment engine): no generator ever touches the module-level
``random`` state.  ``generate`` accepts an integer seed or a
caller-owned :class:`random.Random` and builds every request from that
private stream, so the same seed yields the identical trace in any
process, any interpreter run, any ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import abc
import random
from typing import Iterable, Optional, Sequence

from repro.engine.seeding import SeedLike, derive_seed, rng_from
from repro.exceptions import ConfigurationError
from repro.model.request import Request, read, write
from repro.model.schedule import Schedule
from repro.types import ProcessorId


class WorkloadGenerator(abc.ABC):
    """Abstract base for schedule generators."""

    def __init__(self, processors: Iterable[ProcessorId], length: int) -> None:
        self.processors: tuple[ProcessorId, ...] = tuple(sorted(set(processors)))
        if not self.processors:
            raise ConfigurationError("a workload needs at least one processor")
        if length < 0:
            raise ConfigurationError(f"length must be non-negative, got {length}")
        self.length = length

    @abc.abstractmethod
    def generate(self, seed: SeedLike = 0) -> Schedule:
        """Produce a schedule of ``self.length`` requests."""

    def batch(self, count: int, seed: int = 0) -> list[Schedule]:
        """Produce ``count`` schedules with consecutive seeds.

        Kept for compatibility with existing suites; note that batches
        rooted at nearby seeds overlap (seed 42's second schedule is
        seed 43's first).  New code wanting disjoint suites should use
        :meth:`batch_independent`.
        """
        return [self.generate(seed + offset) for offset in range(count)]

    def batch_independent(self, count: int, root_seed: int = 0) -> list[Schedule]:
        """``count`` schedules on hash-derived seeds: batches rooted at
        different seeds never share a schedule stream."""
        stream = type(self).__name__
        return [
            self.generate(derive_seed(root_seed, offset, stream))
            for offset in range(count)
        ]


def weighted_choice(
    rng: random.Random,
    items: Sequence[ProcessorId],
    weights: Optional[Sequence[float]] = None,
) -> ProcessorId:
    """Pick one item, optionally with weights."""
    if weights is None:
        return rng.choice(list(items))
    return rng.choices(list(items), weights=list(weights), k=1)[0]


def random_request(
    rng: random.Random,
    processor: ProcessorId,
    write_fraction: float,
) -> Request:
    """A read or write by ``processor`` with the given write probability."""
    if rng.random() < write_fraction:
        return write(processor)
    return read(processor)


def validate_write_fraction(write_fraction: float) -> float:
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError(
            f"write_fraction must be in [0, 1], got {write_fraction}"
        )
    return write_fraction
