"""Schedule statistics: the quantities the cost analysis turns on.

DA's cost on a schedule is governed by a few structural numbers — how
many *distinct* foreign readers appear between consecutive writes (each
costs a saving-read and a later invalidation), how long read runs are
(each repeat read amortizes the save), how local the issuer sequence is.
This module measures them, both to characterize generated workloads in
benchmark output and to predict which algorithm a trace favours before
running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.model.schedule import Schedule
from repro.types import ProcessorId


@dataclass(frozen=True)
class SegmentStats:
    """One write-free segment (the reads between consecutive writes)."""

    length: int
    distinct_readers: int
    repeat_reads: int

    @property
    def repeat_fraction(self) -> float:
        """Fraction of the segment's reads that re-read a processor's
        earlier fetch — the reads DA turns into local hits."""
        if self.length == 0:
            return 0.0
        return self.repeat_reads / self.length


@dataclass(frozen=True)
class ScheduleStats:
    """Aggregate structure of one schedule."""

    length: int
    write_count: int
    read_count: int
    distinct_processors: int
    segments: tuple[SegmentStats, ...]
    locality: float

    @property
    def write_fraction(self) -> float:
        return self.write_count / self.length if self.length else 0.0

    @property
    def mean_segment_length(self) -> float:
        if not self.segments:
            return 0.0
        return sum(s.length for s in self.segments) / len(self.segments)

    @property
    def mean_distinct_readers(self) -> float:
        """Average distinct readers per segment — the per-write join
        churn DA pays for (Proposition 2's knob)."""
        if not self.segments:
            return 0.0
        return sum(s.distinct_readers for s in self.segments) / len(
            self.segments
        )

    @property
    def repeat_read_fraction(self) -> float:
        """Fraction of all reads that are repeats within their segment —
        the reads DA serves locally after the save."""
        total_reads = sum(s.length for s in self.segments)
        if total_reads == 0:
            return 0.0
        return sum(s.repeat_reads for s in self.segments) / total_reads


def analyze(schedule: Schedule) -> ScheduleStats:
    """Compute the structural statistics of a schedule."""
    segments: List[SegmentStats] = []
    readers: set[ProcessorId] = set()
    segment_reads = 0
    repeats = 0
    same_issuer_pairs = 0
    previous: ProcessorId | None = None

    def close_segment() -> None:
        nonlocal readers, segment_reads, repeats
        segments.append(
            SegmentStats(segment_reads, len(readers), repeats)
        )
        readers = set()
        segment_reads = 0
        repeats = 0

    for request in schedule:
        if previous is not None and request.processor == previous:
            same_issuer_pairs += 1
        previous = request.processor
        if request.is_read:
            segment_reads += 1
            if request.processor in readers:
                repeats += 1
            else:
                readers.add(request.processor)
        else:
            close_segment()
    close_segment()

    locality = (
        same_issuer_pairs / (len(schedule) - 1) if len(schedule) > 1 else 0.0
    )
    return ScheduleStats(
        length=len(schedule),
        write_count=schedule.write_count,
        read_count=schedule.read_count,
        distinct_processors=len(schedule.processors),
        segments=tuple(segments),
        locality=locality,
    )


def describe(schedule: Schedule) -> str:
    """A one-paragraph human-readable summary of a schedule's shape."""
    stats = analyze(schedule)
    if stats.length == 0:
        return "empty schedule"
    lines = [
        f"{stats.length} requests over {stats.distinct_processors} "
        f"processors: {stats.read_count} reads, {stats.write_count} writes "
        f"(write fraction {stats.write_fraction:.2f})",
        f"write-free segments: {len(stats.segments)}, mean length "
        f"{stats.mean_segment_length:.1f}, mean distinct readers "
        f"{stats.mean_distinct_readers:.1f}",
        f"repeat-read fraction {stats.repeat_read_fraction:.2f}, "
        f"issuer locality {stats.locality:.2f}",
    ]
    hint = (
        "repeat-heavy segments favour DA (saves amortize)"
        if stats.repeat_read_fraction > 0.5
        else "one-shot readers dominate: saving-reads risk being wasted"
    )
    lines.append(hint)
    return "\n".join(lines)
