"""Adversarial schedule families realizing the paper's lower bounds.

The paper's Propositions 1-3 assert the *non*-competitiveness of SA and
DA below certain factors but omit the constructions.  This module
provides explicit schedule families whose measured cost ratios approach
the claimed bounds, so the benchmark harness can regenerate the
lower-bound side of Figures 1 and 2:

* :func:`sa_killer` — Proposition 1 / Proposition 3.  A processor
  outside SA's fixed scheme issues ``k`` reads.  SA pays the remote
  fetch ``c_c + c_io + c_d`` every time; the optimum saves once and
  reads locally afterwards.  As ``k → ∞`` the ratio tends to
  ``(c_c + c_io + c_d) / c_io = 1 + c_c + c_d`` in the stationary model
  — SA's tight factor — and to infinity in the mobile model (where
  ``c_io = 0``), proving SA non-competitive there.

* :func:`da_killer` — Proposition 2.  Rounds of ``m`` distinct foreign
  readers followed by one core write.  DA pays a saving-read (one extra
  I/O) per foreign reader and the write invalidates all the joiners;
  the optimum serves the one-shot readers with plain on-demand reads.
  With small ``c_c, c_d`` the per-round ratio is
  ``(2m + t) / (m + t)``: already above 1.5 for ``m = 2, t = 2``,
  approaching 2 (the ``c_c → 0`` limit of DA's ``2 + 2 c_c`` upper
  bound) as ``m`` grows.

* :func:`ping_pong` — write-ownership oscillation between two
  processors, a stress pattern for drifting-core baselines.

* :func:`read_mostly_bursts` — alternating read bursts and write
  bursts, the pattern behind the "Unknown" wedge of Figure 1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.model.request import read, write
from repro.model.schedule import Schedule
from repro.types import ProcessorId


def sa_killer(
    reader: ProcessorId,
    repetitions: int,
) -> Schedule:
    """Proposition 1 / 3 family: ``repetitions`` reads by one processor.

    Use a ``reader`` outside the algorithm's initial scheme.
    """
    if repetitions < 1:
        raise ConfigurationError("need at least one repetition")
    return Schedule(tuple(read(reader) for _ in range(repetitions)))


def da_killer(
    readers: Sequence[ProcessorId],
    writer: ProcessorId,
    rounds: int,
) -> Schedule:
    """Proposition 2 family: rounds of distinct foreign reads, then a write.

    ``readers`` should be outside DA's initial scheme and ``writer``
    inside it (a core write keeps DA's scheme minimal while evicting
    every joiner).
    """
    if rounds < 1:
        raise ConfigurationError("need at least one round")
    if not readers:
        raise ConfigurationError("need at least one reader")
    if writer in readers:
        raise ConfigurationError("the writer must not be one of the readers")
    requests = []
    for _ in range(rounds):
        for reader in readers:
            requests.append(read(reader))
        requests.append(write(writer))
    return Schedule(tuple(requests))


def ping_pong(
    first: ProcessorId,
    second: ProcessorId,
    rounds: int,
    reads_per_turn: int = 1,
) -> Schedule:
    """Ownership oscillation: each side writes, then reads a few times."""
    if first == second:
        raise ConfigurationError("ping-pong needs two distinct processors")
    if rounds < 1:
        raise ConfigurationError("need at least one round")
    requests = []
    for _ in range(rounds):
        for processor in (first, second):
            requests.append(write(processor))
            requests.extend(read(processor) for _ in range(reads_per_turn))
    return Schedule(tuple(requests))


def read_mostly_bursts(
    readers: Sequence[ProcessorId],
    writer: ProcessorId,
    burst_length: int,
    rounds: int,
) -> Schedule:
    """Alternate ``burst_length`` reads (round-robin over ``readers``)
    with a single write — the regime where the SA/DA crossover lives."""
    if burst_length < 1 or rounds < 1:
        raise ConfigurationError("burst_length and rounds must be positive")
    if not readers:
        raise ConfigurationError("need at least one reader")
    requests = []
    for _ in range(rounds):
        for position in range(burst_length):
            requests.append(read(readers[position % len(readers)]))
        requests.append(write(writer))
    return Schedule(tuple(requests))


def single_reader_then_writer(
    reader: ProcessorId, writer: ProcessorId, rounds: int
) -> Schedule:
    """The tightest small DA stress: one foreign read, one write, repeated."""
    return da_killer([reader], writer, rounds)


def adversarial_suite(
    scheme: Iterable[ProcessorId],
    outsiders: Sequence[ProcessorId],
    rounds: int = 8,
) -> list[Schedule]:
    """A mixed suite of the families above, parameterized by the
    algorithm's initial scheme and a few processors outside it.

    Used by the region-map benchmarks to estimate worst-case behaviour
    at each ``(c_c, c_d)`` grid point.
    """
    scheme = sorted(scheme)
    if len(outsiders) < 2:
        raise ConfigurationError("need at least two outsiders")
    core_writer = scheme[0]
    suite = [
        sa_killer(outsiders[0], rounds * 4),
        da_killer(list(outsiders[:2]), core_writer, rounds),
        da_killer(list(outsiders), core_writer, rounds),
        single_reader_then_writer(outsiders[0], core_writer, rounds * 2),
        ping_pong(scheme[0], outsiders[0], rounds),
        read_mostly_bursts(list(outsiders), core_writer, 6, rounds),
    ]
    return suite
