"""Schedule (de)serialization: save and replay workload traces.

Traces use the paper's own notation, one request per line or
whitespace-separated (``r1 w2 r4 ...``), with ``#`` comments — so a
trace file is also human-readable documentation of a workload.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.exceptions import ConfigurationError
from repro.model.request import Request
from repro.model.schedule import Schedule


def dumps(schedule: Schedule, per_line: int = 20) -> str:
    """Serialize a schedule to trace text, ``per_line`` tokens per line."""
    if per_line < 1:
        raise ConfigurationError("per_line must be positive")
    tokens = [str(request) for request in schedule]
    lines = [
        " ".join(tokens[start:start + per_line])
        for start in range(0, len(tokens), per_line)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def loads(text: str) -> Schedule:
    """Parse trace text: whitespace-separated tokens, ``#`` comments."""
    requests = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        for token in line.split():
            requests.append(Request.parse(token))
    return Schedule(tuple(requests))


def save(schedule: Schedule, path: Union[str, Path]) -> None:
    """Write a schedule to a trace file."""
    Path(path).write_text(dumps(schedule), encoding="utf-8")


def load(path: Union[str, Path]) -> Schedule:
    """Read a schedule from a trace file."""
    return loads(Path(path).read_text(encoding="utf-8"))
