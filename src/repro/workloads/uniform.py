"""Uniformly random workloads.

The simplest "chaotic" access pattern of the paper's §5.1 discussion:
every request is issued by a uniformly random processor and is a write
with a fixed probability.  Uniform workloads are the backbone of the
empirical region maps (Figures 1 and 2): they exercise both algorithms
without favouring either by construction.
"""

from __future__ import annotations

from typing import Iterable

from repro.model.schedule import Schedule
from repro.types import ProcessorId
from repro.engine.seeding import SeedLike, rng_from
from repro.workloads.generator import (
    WorkloadGenerator,
    random_request,
    validate_write_fraction,
)


class UniformWorkload(WorkloadGenerator):
    """Uniformly random issuer, fixed write fraction."""

    def __init__(
        self,
        processors: Iterable[ProcessorId],
        length: int,
        write_fraction: float = 0.2,
    ) -> None:
        super().__init__(processors, length)
        self.write_fraction = validate_write_fraction(write_fraction)

    def generate(self, seed: SeedLike = 0) -> Schedule:
        rng = rng_from(seed)
        requests = tuple(
            random_request(
                rng, rng.choice(self.processors), self.write_fraction
            )
            for _ in range(self.length)
        )
        return Schedule(requests)
