"""Composite workloads: mixtures and concatenations of generators.

Real traces are rarely one clean distribution; the benchmark suites
want "mostly uniform with adversarial bursts" or "regular, then
chaotic" without hand-rolling the plumbing every time.

* :class:`MixtureWorkload` — each request drawn from one of several
  generators with given weights (the generators contribute *patterns*;
  the mixture interleaves them request-by-request via pre-generated
  pools);
* :class:`ConcatWorkload` — phases of entirely different generators,
  back to back (regular -> chaotic regime switches, §5.1's stress).
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.seeding import SeedLike, derive_seed, rng_from, seed_material
from repro.exceptions import ConfigurationError
from repro.model.schedule import Schedule
from repro.workloads.generator import WorkloadGenerator


class MixtureWorkload(WorkloadGenerator):
    """Request-level mixture of several generators."""

    def __init__(
        self,
        components: Sequence[WorkloadGenerator],
        weights: Sequence[float],
        length: int,
    ) -> None:
        if not components:
            raise ConfigurationError("a mixture needs at least one component")
        if len(weights) != len(components):
            raise ConfigurationError(
                f"{len(components)} components but {len(weights)} weights"
            )
        if any(weight < 0 for weight in weights) or sum(weights) <= 0:
            raise ConfigurationError("weights must be non-negative, sum > 0")
        processors: set = set()
        for component in components:
            processors |= set(component.processors)
        super().__init__(processors, length)
        self.components = tuple(components)
        self.weights = tuple(weights)

    def generate(self, seed: SeedLike = 0) -> Schedule:
        root = seed_material(seed)
        rng = rng_from(seed)
        # Pre-generate one pool per component on hash-derived sub-seeds
        # (the old ``seed * 31 + index`` scheme collided: root 0's
        # component 31 shared root 1's component 0), then draw requests
        # from the pools in mixture proportion — each component's
        # internal structure (bursts, phases) survives within its own
        # subsequence.
        pools = [
            list(component.generate(derive_seed(root, index, "mixture")))
            for index, component in enumerate(self.components)
        ]
        positions = [0] * len(pools)
        requests = []
        indices = list(range(len(pools)))
        for _ in range(self.length):
            live = [
                index for index in indices
                if positions[index] < len(pools[index])
            ]
            if not live:
                break
            weights = [self.weights[index] for index in live]
            chosen = rng.choices(live, weights=weights, k=1)[0]
            requests.append(pools[chosen][positions[chosen]])
            positions[chosen] += 1
        return Schedule(tuple(requests))


class ConcatWorkload(WorkloadGenerator):
    """Generators run back to back (regime switches)."""

    def __init__(self, components: Sequence[WorkloadGenerator]) -> None:
        if not components:
            raise ConfigurationError(
                "a concatenation needs at least one component"
            )
        processors: set = set()
        for component in components:
            processors |= set(component.processors)
        super().__init__(
            processors, sum(component.length for component in components)
        )
        self.components = tuple(components)

    def generate(self, seed: SeedLike = 0) -> Schedule:
        root = seed_material(seed)
        requests = []
        for index, component in enumerate(self.components):
            requests.extend(component.generate(derive_seed(root, index, "concat")))
        return Schedule(tuple(requests))
