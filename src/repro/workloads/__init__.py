"""Workload generators: random, skewed, regular, mobile and adversarial.

The adversarial families (:mod:`repro.workloads.adversarial`) realize
the paper's lower-bound constructions (Propositions 1-3); the random
and regular generators drive the empirical region maps and the
convergent-vs-competitive ablation.
"""

from repro.workloads.adversarial import (
    adversarial_suite,
    da_killer,
    ping_pong,
    read_mostly_bursts,
    sa_killer,
    single_reader_then_writer,
)
from repro.workloads.composite import ConcatWorkload, MixtureWorkload
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.hotspot import ReaderWriterWorkload, ZipfWorkload
from repro.workloads.markov import MarkovWorkload
from repro.workloads.mobility import MobileLocationWorkload, base_station_scheme
from repro.workloads.regular import Phase, PhasedWorkload, two_phase_shift
from repro.workloads.stats import ScheduleStats, SegmentStats, analyze, describe
from repro.workloads.trace import dumps, load, loads, save
from repro.workloads.uniform import UniformWorkload

__all__ = [
    "ConcatWorkload",
    "MarkovWorkload",
    "MixtureWorkload",
    "MobileLocationWorkload",
    "Phase",
    "PhasedWorkload",
    "ReaderWriterWorkload",
    "ScheduleStats",
    "SegmentStats",
    "UniformWorkload",
    "WorkloadGenerator",
    "ZipfWorkload",
    "adversarial_suite",
    "analyze",
    "describe",
    "base_station_scheme",
    "da_killer",
    "dumps",
    "load",
    "loads",
    "ping_pong",
    "read_mostly_bursts",
    "sa_killer",
    "save",
    "single_reader_then_writer",
    "two_phase_shift",
]
