"""Regular (phase-structured) workloads.

Paper §5.1 describes *regular* access patterns: "during the first two
hours processor x executes three reads and one write per second,
processor y executes five reads and two writes per second, etc.; during
the next four hour period [the rates change]".  Convergent algorithms
shine on such patterns; competitive algorithms are built for the
chaotic case.  :class:`PhasedWorkload` reproduces exactly this phase
structure so the convergent-vs-competitive ablation can be run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.model.request import read, write
from repro.model.schedule import Schedule
from repro.types import ProcessorId
from repro.workloads.generator import WorkloadGenerator


@dataclass(frozen=True)
class Phase:
    """One stable period of the access pattern.

    ``read_rates`` / ``write_rates`` map processors to relative rates;
    ``length`` is the number of requests drawn from this phase.
    """

    read_rates: dict[ProcessorId, float]
    write_rates: dict[ProcessorId, float]
    length: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ConfigurationError("phase length must be non-negative")
        total = sum(self.read_rates.values()) + sum(self.write_rates.values())
        if self.length > 0 and total <= 0:
            raise ConfigurationError("a non-empty phase needs positive rates")
        for rates in (self.read_rates, self.write_rates):
            for processor, rate in rates.items():
                if rate < 0:
                    raise ConfigurationError(
                        f"negative rate {rate} for processor {processor}"
                    )

    @property
    def processors(self) -> frozenset:
        return frozenset(self.read_rates) | frozenset(self.write_rates)


class PhasedWorkload(WorkloadGenerator):
    """Concatenation of stable phases (the regular pattern of §5.1)."""

    def __init__(self, phases: Sequence[Phase]) -> None:
        if not phases:
            raise ConfigurationError("at least one phase is required")
        processors: set[ProcessorId] = set()
        for phase in phases:
            processors |= phase.processors
        super().__init__(processors, sum(phase.length for phase in phases))
        self.phases = tuple(phases)

    def generate(self, seed: int = 0) -> Schedule:
        rng = random.Random(seed)
        requests = []
        for phase in self.phases:
            choices = []
            weights = []
            for processor, rate in sorted(phase.read_rates.items()):
                if rate > 0:
                    choices.append(read(processor))
                    weights.append(rate)
            for processor, rate in sorted(phase.write_rates.items()):
                if rate > 0:
                    choices.append(write(processor))
                    weights.append(rate)
            for _ in range(phase.length):
                requests.append(
                    rng.choices(choices, weights=weights, k=1)[0]
                )
        return Schedule(tuple(requests))


def two_phase_shift(
    first_heavy: ProcessorId,
    second_heavy: ProcessorId,
    others: Iterable[ProcessorId],
    phase_length: int = 200,
    write_share: float = 0.2,
) -> PhasedWorkload:
    """A canonical regular pattern: activity concentrated at one
    processor, then shifting to another (paper §5.1's example shape)."""
    others = tuple(others)
    background = {processor: 0.2 for processor in others}

    def phase_for(heavy: ProcessorId) -> Phase:
        reads = dict(background)
        reads[heavy] = 5.0
        writes = {heavy: 5.0 * write_share / max(1e-9, 1 - write_share)}
        return Phase(reads, writes, phase_length)

    return PhasedWorkload([phase_for(first_heavy), phase_for(second_heavy)])
