"""Markov-modulated (bursty) workloads.

Between the i.i.d. uniform workload and the fully regular phased
workload sits the bursty middle ground real systems exhibit: activity
clusters at one processor for a while, then hops.  A two-level Markov
model captures it:

* an *owner* chain: the currently hot processor, which at each step
  stays hot with probability ``stickiness`` or hands off to a uniformly
  random other processor;
* a *request* layer: each request comes from the hot processor with
  probability ``locality`` (else a uniformly random processor) and is a
  write with probability ``write_fraction``.

With ``stickiness → 1`` and ``locality → 1`` this degenerates to the
regular pattern convergent algorithms love; with ``locality → 0`` it is
the uniform chaos competitive algorithms are built for — one knob to
sweep between the two regimes of paper §5.1.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import ConfigurationError
from repro.model.schedule import Schedule
from repro.types import ProcessorId
from repro.engine.seeding import SeedLike, rng_from
from repro.workloads.generator import (
    WorkloadGenerator,
    random_request,
    validate_write_fraction,
)


class MarkovWorkload(WorkloadGenerator):
    """Bursty ownership-hopping workload."""

    def __init__(
        self,
        processors: Iterable[ProcessorId],
        length: int,
        write_fraction: float = 0.2,
        stickiness: float = 0.95,
        locality: float = 0.8,
    ) -> None:
        super().__init__(processors, length)
        self.write_fraction = validate_write_fraction(write_fraction)
        for name, value in (("stickiness", stickiness), ("locality", locality)):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        self.stickiness = stickiness
        self.locality = locality

    def generate(self, seed: SeedLike = 0) -> Schedule:
        rng = rng_from(seed)
        hot = rng.choice(self.processors)
        requests = []
        for _ in range(self.length):
            if len(self.processors) > 1 and rng.random() > self.stickiness:
                hot = rng.choice(
                    [p for p in self.processors if p != hot]
                )
            if rng.random() < self.locality:
                issuer = hot
            else:
                issuer = rng.choice(self.processors)
            requests.append(random_request(rng, issuer, self.write_fraction))
        return Schedule(tuple(requests))

    def burstiness(self, seed: int = 0) -> float:
        """Fraction of consecutive request pairs issued by the same
        processor — a quick empirical locality measure for tests."""
        schedule = self.generate(seed)
        if len(schedule) < 2:
            return 0.0
        same = sum(
            1
            for a, b in zip(schedule, schedule[1:])
            if a.processor == b.processor
        )
        return same / (len(schedule) - 1)
