"""Skewed (hotspot / Zipf) workloads.

Real access patterns are rarely uniform: the paper's motivating
examples (electronic publishing, financial instruments, X-ray
annotation) have a few heavy writers and many light readers.  Two
generators:

* :class:`ZipfWorkload` — request issuers follow a Zipf distribution
  with configurable exponent;
* :class:`ReaderWriterWorkload` — disjoint reader and writer
  populations with independent rates, modelling e.g. a document
  co-authored by a few and read by many (paper §1.1).
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import ConfigurationError
from repro.model.request import read, write
from repro.model.schedule import Schedule
from repro.types import ProcessorId
from repro.engine.seeding import SeedLike, rng_from
from repro.workloads.generator import (
    WorkloadGenerator,
    random_request,
    validate_write_fraction,
    weighted_choice,
)


class ZipfWorkload(WorkloadGenerator):
    """Issuers drawn from a Zipf distribution over the processors."""

    def __init__(
        self,
        processors: Iterable[ProcessorId],
        length: int,
        write_fraction: float = 0.2,
        exponent: float = 1.0,
    ) -> None:
        super().__init__(processors, length)
        self.write_fraction = validate_write_fraction(write_fraction)
        if exponent < 0:
            raise ConfigurationError(
                f"zipf exponent must be non-negative, got {exponent}"
            )
        self.exponent = exponent
        self._weights = [
            1.0 / (rank ** exponent) for rank in range(1, len(self.processors) + 1)
        ]

    def generate(self, seed: SeedLike = 0) -> Schedule:
        rng = rng_from(seed)
        requests = tuple(
            random_request(
                rng,
                weighted_choice(rng, self.processors, self._weights),
                self.write_fraction,
            )
            for _ in range(self.length)
        )
        return Schedule(requests)


class ReaderWriterWorkload(WorkloadGenerator):
    """Disjoint reader and writer populations.

    Each request is a write with probability ``write_fraction``, issued
    by a uniformly random member of ``writers``; otherwise it is a read
    by a uniformly random member of ``readers``.
    """

    def __init__(
        self,
        readers: Iterable[ProcessorId],
        writers: Iterable[ProcessorId],
        length: int,
        write_fraction: float = 0.2,
    ) -> None:
        readers = tuple(sorted(set(readers)))
        writers = tuple(sorted(set(writers)))
        if not readers or not writers:
            raise ConfigurationError(
                "reader and writer populations must both be non-empty"
            )
        super().__init__(readers + writers, length)
        self.readers = readers
        self.writers = writers
        self.write_fraction = validate_write_fraction(write_fraction)

    def generate(self, seed: SeedLike = 0) -> Schedule:
        rng = rng_from(seed)
        requests = []
        for _ in range(self.length):
            if rng.random() < self.write_fraction:
                requests.append(write(rng.choice(self.writers)))
            else:
                requests.append(read(rng.choice(self.readers)))
        return Schedule(tuple(requests))
