"""Mobile-computing workloads: location objects under user mobility.

Paper §1.1: *"in the mobile communication environments of the future an
identification will be associated with a user, rather than with a
physical location ... The location of the user will be updated as a
result of the user's mobility, and it will be read on behalf of the
callers."*

:class:`MobileLocationWorkload` models exactly this: the tracked object
is one user's location record.

* The user performs a random walk over cells; each *move* issues a
  write from the processor of the cell the user moved into (the mobile
  host reports its new location there).
* *Calls* arrive from uniformly random caller processors; each call
  issues a read of the location record.

The base-station deployment of paper §2 ("a natural choice for t is 2,
with F consisting of the base-station processor") is captured by
:func:`base_station_scheme`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.exceptions import ConfigurationError
from repro.model.request import read, write
from repro.model.schedule import Schedule
from repro.types import ProcessorId, ProcessorSet, processor_set
from repro.engine.seeding import SeedLike, rng_from
from repro.workloads.generator import WorkloadGenerator


class MobileLocationWorkload(WorkloadGenerator):
    """Reads by callers, writes by the cell the mobile user occupies."""

    def __init__(
        self,
        cells: Iterable[ProcessorId],
        callers: Iterable[ProcessorId],
        length: int,
        move_probability: float = 0.2,
        start_cell: Optional[ProcessorId] = None,
    ) -> None:
        cells = tuple(sorted(set(cells)))
        callers = tuple(sorted(set(callers)))
        if not cells:
            raise ConfigurationError("need at least one cell")
        if not callers:
            raise ConfigurationError("need at least one caller")
        super().__init__(cells + callers, length)
        if not 0.0 <= move_probability <= 1.0:
            raise ConfigurationError(
                f"move_probability must be in [0, 1], got {move_probability}"
            )
        if start_cell is None:
            start_cell = cells[0]
        if start_cell not in cells:
            raise ConfigurationError(f"start cell {start_cell} is not a cell")
        self.cells = cells
        self.callers = callers
        self.move_probability = move_probability
        self.start_cell = start_cell

    def generate(self, seed: SeedLike = 0) -> Schedule:
        rng = rng_from(seed)
        current = self.start_cell
        requests = []
        for _ in range(self.length):
            if rng.random() < self.move_probability and len(self.cells) > 1:
                # The user moves; the new cell's processor updates the
                # location record.
                candidates = [cell for cell in self.cells if cell != current]
                current = rng.choice(candidates)
                requests.append(write(current))
            else:
                requests.append(read(rng.choice(self.callers)))
        return Schedule(tuple(requests))


def base_station_scheme(
    base_station: ProcessorId, mobile_host: ProcessorId
) -> ProcessorSet:
    """The paper's natural mobile deployment: ``t = 2`` with
    ``F = {base_station}`` and the mobile host as DA's processor ``p``.

    Use with ``DynamicAllocation(scheme, primary=mobile_host)``.
    """
    if base_station == mobile_host:
        raise ConfigurationError(
            "the base station and the mobile host must differ"
        )
    return processor_set([base_station, mobile_host])
