"""Command-line interface: explore the paper from a shell.

Subcommands
-----------

``repro bounds``     the theorem bounds and Figure 1/2 classification
                     at one (c_c, c_d) point.
``repro compare``    run SA/DA/baselines and the exact optimum on a
                     schedule, print costs and ratios.
``repro regions``    print the Figure 1 or Figure 2 region map
                     (theoretical, or measured with ``--empirical``).
``repro simulate``   run a schedule through the discrete-event SA/DA
                     protocol and print the counted traffic.
``repro workload``   generate a workload trace in the paper's notation.
``repro expected``   expected-cost table under the i.i.d. workload and
                     the analytic SA/DA crossover.
``repro availability`` exact ROWA vs quorum availability for fail-stop
                     nodes, plus the best (r, w) pair for the mix.
``repro describe``   structural statistics of a schedule or trace file
                     and the shape-based SA/DA hint.
``repro calibrate``  map hardware numbers (bytes, bandwidth, latency,
                     disk time — or a wireless tariff) onto the model's
                     (c_c, c_d) point and quote Figure 1/2's verdict.
``repro sweep``      measure algorithms across a parameter grid through
                     the parallel experiment engine (``--workers N``,
                     ``--cache-dir`` for resumable grids), with table,
                     CSV and ASCII-plot output.
``repro bench``      time the stepped path vs the vectorized kernel
                     (``--smoke`` for the CI-sized run, ``--check`` to
                     exit non-zero if the kernel is slower or costs
                     diverge, ``--out`` for a JSON report).
``repro cluster``    live asyncio replica cluster: ``serve`` one node,
                     ``run`` a schedule against N nodes over real
                     sockets (``--check-parity`` verifies live counts
                     against the stepped model and the simulator, and
                     ``--resilient`` adds retry/dedup fault tolerance),
                     or ``bench`` it with open-loop Poisson load.
``repro chaos``      seeded fault injection against a live cluster:
                     crashes with repair, message drops, partitions —
                     replayable from a seed, exits non-zero on any
                     invariant violation (see docs/chaos.md).

Every command writes plain text to stdout; ``repro workload --out``
writes a trace file loadable with ``repro compare --trace``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.availability import (
    best_quorums,
    quorum_availability,
    rowa_read_availability,
    rowa_write_availability,
)
from repro.analysis.calibration import (
    MobileTariff,
    StationaryHardware,
    advise_mobile,
    advise_stationary,
)
from repro.analysis.bounds import (
    da_competitive_factor,
    da_lower_bound,
    sa_competitive_factor,
)
from repro.analysis.expected_cost import (
    analytic_crossover_write_fraction,
    expected_cost_table,
)
from repro.analysis.regions import (
    classify_mobile,
    classify_stationary,
    empirical_map,
    theoretical_map,
)
from repro.analysis.report import format_mapping, format_table
from repro.analysis.sweep import sweep
from repro.chaos.commands import add_chaos_parser
from repro.cluster.commands import add_cluster_parser
from repro.core.competitive import CompetitivenessHarness
from repro.core.factory import ALGORITHM_NAMES, algorithm_factory, make_algorithm
from repro.distsim.runner import run_protocol
from repro.engine import ExperimentEngine, ResultCache, derive_seed
from repro.exceptions import ReproError
from repro.model.cost_model import CostModel, mobile, stationary
from repro.model.schedule import Schedule
from repro.viz.ascii_plot import render_region_map, render_series
from repro.viz.csv_export import sweep_to_csv, write_csv
from repro.workloads import trace
from repro.workloads.adversarial import adversarial_suite
from repro.workloads.hotspot import ZipfWorkload
from repro.workloads.markov import MarkovWorkload
from repro.workloads.mobility import MobileLocationWorkload
from repro.workloads.uniform import UniformWorkload


def _model(args) -> CostModel:
    if args.mobile:
        return mobile(args.cc, args.cd)
    return stationary(args.cc, args.cd)


def _scheme(text: str) -> frozenset:
    try:
        return frozenset(int(item) for item in text.split(","))
    except ValueError as error:
        raise argparse.ArgumentTypeError(f"bad scheme {text!r}") from error


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cc", type=float, default=0.2,
                        help="control-message cost c_c (default 0.2)")
    parser.add_argument("--cd", type=float, default=1.5,
                        help="data-message cost c_d (default 1.5)")
    parser.add_argument("--mobile", action="store_true",
                        help="mobile-computing model (c_io = 0)")


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from error
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _comma_floats(text: str) -> tuple[float, ...]:
    try:
        values = tuple(float(item) for item in text.split(",") if item.strip())
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"bad value list {text!r} (expected comma-separated numbers)"
        ) from error
    if not values:
        raise argparse.ArgumentTypeError("the value list is empty")
    return values


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_positive_int, default=1,
        help="worker processes (1 = serial; results are identical)",
    )
    parser.add_argument(
        "--chunksize", type=_positive_int, default=1,
        help="tasks per worker submission (scheduling only)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the on-disk result cache (resumable grids)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print tasks-done/rate/ETA to stderr",
    )


def _engine(args) -> ExperimentEngine:
    """Build the experiment engine from (possibly absent) CLI flags."""
    cache_dir = getattr(args, "cache_dir", None)
    return ExperimentEngine(
        max_workers=getattr(args, "workers", 1),
        cache=ResultCache(cache_dir) if cache_dir else None,
        chunksize=getattr(args, "chunksize", 1),
        progress=getattr(args, "progress", False),
        progress_label=f"repro {args.command}",
    )


def cmd_bounds(args) -> int:
    model = _model(args)
    classify = classify_mobile if args.mobile else classify_stationary
    print(
        format_mapping(
            {
                "model": str(model),
                "SA factor (Thm 1 / Prop 3)": sa_competitive_factor(model),
                "DA upper bound (Thm 2/3/4)": da_competitive_factor(model),
                "DA lower bound (Prop 2)": da_lower_bound(model),
                "region": classify(args.cc, args.cd).value,
            },
            title=f"Bounds at c_c={args.cc}, c_d={args.cd}",
        )
    )
    return 0


def cmd_compare(args) -> int:
    model = _model(args)
    if args.trace:
        schedule = trace.load(args.trace)
    elif args.schedule:
        schedule = Schedule.parse(args.schedule)
    else:
        print("compare: provide --schedule or --trace", file=sys.stderr)
        return 2
    scheme = args.scheme
    harness = CompetitivenessHarness(model, threshold=len(scheme))
    rows = []
    for name in args.algorithms.split(","):
        algorithm = make_algorithm(name.strip(), scheme, cost_model=model)
        observation = harness.observe(algorithm, schedule)
        rows.append(
            (
                algorithm.name,
                observation.algorithm_cost,
                observation.reference_cost,
                observation.ratio,
                "exact" if observation.exact_reference else "lower-bound",
            )
        )
    print(
        format_table(
            ["algorithm", "cost", "OPT", "ratio", "reference"],
            rows,
            title=f"{model}, scheme {sorted(scheme)}, {len(schedule)} requests",
        )
    )
    return 0


def cmd_regions(args) -> int:
    if args.empirical:
        scheme = frozenset({1, 2})
        suite = adversarial_suite(scheme, [5, 6, 7], rounds=4)
        suite += UniformWorkload(range(1, 8), 20, 0.3).batch(2, seed=42)
        region_map = empirical_map(
            suite, scheme, mobile_model=args.mobile, steps=args.steps,
            engine=_engine(args),
        )
        flavor = "measured"
    else:
        region_map = theoretical_map(mobile_model=args.mobile, steps=args.steps)
        flavor = "theory"
    figure = "Figure 2" if args.mobile else "Figure 1"
    print(render_region_map(region_map, title=f"{figure} ({flavor})"))
    return 0


def cmd_simulate(args) -> int:
    model = _model(args)
    if args.trace:
        schedule = trace.load(args.trace)
    elif args.seed is not None:
        # A seeded uniform workload: reproducible without a trace file.
        schedule = UniformWorkload(
            range(1, args.processors + 1), args.length, args.write_fraction
        ).generate(args.seed)
    else:
        schedule = Schedule.parse(args.schedule)
    stats = run_protocol(args.protocol, schedule, args.scheme)
    print(
        format_mapping(
            {
                "protocol": args.protocol.upper(),
                "requests": stats.requests_completed,
                "control messages": stats.control_messages,
                "data messages": stats.data_messages,
                "I/O operations": stats.io_reads + stats.io_writes,
                "priced cost": stats.cost(model),
                "mean latency": stats.mean_latency,
                "max latency": stats.max_latency,
            },
            title=f"Discrete-event simulation under {model}",
        )
    )
    return 0


def cmd_workload(args) -> int:
    processors = range(1, args.processors + 1)
    if args.kind == "uniform":
        generator = UniformWorkload(processors, args.length, args.write_fraction)
    elif args.kind == "zipf":
        generator = ZipfWorkload(
            processors, args.length, args.write_fraction, exponent=args.skew
        )
    elif args.kind == "markov":
        generator = MarkovWorkload(
            processors, args.length, args.write_fraction,
            stickiness=args.stickiness, locality=args.locality,
        )
    else:  # mobile
        cells = list(processors)[: max(1, args.processors // 2)]
        callers = list(processors)[max(1, args.processors // 2):] or cells
        generator = MobileLocationWorkload(
            cells, callers, args.length, move_probability=args.write_fraction
        )
    schedule = generator.generate(args.seed)
    text = trace.dumps(schedule)
    if args.out:
        trace.save(schedule, args.out)
        print(f"wrote {len(schedule)} requests to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_expected(args) -> int:
    model = _model(args)
    engine = _engine(args)
    rows = expected_cost_table(
        model, args.n, args.t, [step / 10 for step in range(0, 11)],
        engine=engine,
    )
    body = format_table(
        ["write fraction", "SA E[cost]", "DA E[cost]"],
        rows,
        title=f"Expected per-request cost, n={args.n}, t={args.t}, {model}",
    )
    print(body)
    crossover = analytic_crossover_write_fraction(
        model, args.n, args.t, engine=engine
    )
    if crossover is None:
        print("\nno SA/DA crossover in [0, 1]")
    else:
        print(f"\nanalytic crossover at write fraction ~ {crossover:.4f}")
    return 0


def cmd_availability(args) -> int:
    votes = [1] * args.n
    majority = args.n // 2 + 1
    rows = []
    for t in range(2, args.n + 1):
        rows.append(
            (
                t,
                rowa_read_availability(args.p, t),
                rowa_write_availability(args.p, t),
            )
        )
    print(
        format_table(
            ["t (copies)", "ROWA read avail", "ROWA write avail"],
            rows,
            title=f"ROWA availability, node up-probability {args.p}",
            float_format="{:.5f}",
        )
    )
    quorum = quorum_availability(args.p, votes, majority)
    print(
        f"\nmajority quorum ({majority} of {args.n}) availability: "
        f"{quorum:.5f} for reads and writes alike"
    )
    choice = best_quorums(args.p, votes, args.write_fraction)
    print(
        f"best quorums for write fraction {args.write_fraction}: "
        f"r={choice.read_quorum}, w={choice.write_quorum} "
        f"(availability {choice.mixed_availability:.5f})"
    )
    return 0


def cmd_describe(args) -> int:
    from repro.workloads.stats import describe as describe_schedule

    if args.trace:
        schedule = trace.load(args.trace)
    elif args.schedule:
        schedule = Schedule.parse(args.schedule)
    else:
        print("describe: provide --schedule or --trace", file=sys.stderr)
        return 2
    print(describe_schedule(schedule))
    return 0


def cmd_calibrate(args) -> int:
    if args.tariff:
        advice = advise_mobile(
            MobileTariff(
                per_message_fee=args.per_message_fee,
                per_kilobyte_fee=args.per_kilobyte_fee,
                control_bytes=args.control_bytes,
                object_bytes=args.object_bytes,
            )
        )
    else:
        advice = advise_stationary(
            StationaryHardware(
                control_bytes=args.control_bytes,
                object_bytes=args.object_bytes,
                bandwidth_bytes_per_ms=args.bandwidth,
                one_way_latency_ms=args.latency,
                io_service_ms=args.io_ms,
            )
        )
    print(
        format_mapping(
            {
                "calibrated model": str(advice.model),
                "c_c": advice.model.c_c,
                "c_d": advice.model.c_d,
                "Figure 1/2 region": advice.region.value,
            },
            title="Calibration",
        )
    )
    print(f"\nrecommendation: {advice.recommendation}")
    return 0


#: Knobs `repro sweep` can scan.  ``c_c``/``c_d`` move the cost model;
#: ``write_fraction`` moves the workload.
SWEEP_PARAMETERS = ("c_c", "c_d", "write_fraction")


def cmd_sweep(args) -> int:
    values = args.values
    scheme = args.scheme
    processors = range(1, args.processors + 1)
    algorithms = [name.strip() for name in args.algorithms.split(",")]

    def model_for(value: float) -> CostModel:
        c_c, c_d = args.cc, args.cd
        if args.parameter == "c_c":
            c_c = value
        elif args.parameter == "c_d":
            c_d = value
        return mobile(c_c, c_d) if args.mobile else stationary(c_c, c_d)

    def schedules_for(value: float):
        write_fraction = (
            value if args.parameter == "write_fraction"
            else args.write_fraction
        )
        generator = UniformWorkload(processors, args.length, write_fraction)
        # Seeds derive from (root seed, value position): deterministic
        # per point, independent across points.
        index = values.index(value)
        return generator.batch_independent(
            args.schedules, root_seed=derive_seed(args.seed, index, "sweep")
        )

    def factories_for(value: float):
        model = model_for(value)
        return {
            name: algorithm_factory(name, scheme, cost_model=model)
            for name in algorithms
        }

    result = sweep(
        args.parameter,
        values,
        factories_for,
        schedules_for,
        model_for,
        threshold_for=lambda value: len(scheme),
        engine=_engine(args),
    )

    names = result.algorithms()
    header = [args.parameter]
    header += [f"{name} max ratio" for name in names]
    header += [f"{name} mean cost" for name in names]
    rows = []
    for row in result.rows:
        record = [row.parameter]
        record += [row.max_ratios[name] for name in names]
        record += [row.mean_costs[name] for name in names]
        rows.append(tuple(record))
    flavor = "MC" if args.mobile else "SC"
    print(
        format_table(
            header,
            rows,
            title=(
                f"Sweep of {args.parameter} over {len(values)} points "
                f"({flavor} model, {args.schedules} x {args.length}-request "
                f"uniform schedules per point, seed {args.seed})"
            ),
        )
    )
    if args.csv:
        write_csv(sweep_to_csv(result), args.csv)
        print(f"\nwrote CSV to {args.csv}")
    if args.plot:
        for name in names:
            print()
            print(
                render_series(
                    result.series(name),
                    x_label=args.parameter,
                    y_label="max ratio",
                    title=f"{name}: worst measured ratio vs {args.parameter}",
                )
            )
    return 0


def cmd_bench(args) -> int:
    from repro.kernel.bench import format_result, run_kernel_bench, write_result

    result = run_kernel_bench(
        smoke=args.smoke,
        seed=args.seed,
        write_fraction=args.write_fraction,
        model=_model(args),
    )
    print(format_result(result))
    if args.out:
        write_result(result, args.out)
        print(f"\nwrote JSON report to {args.out}")
    if args.check and not result["check_passed"]:
        print(
            "bench: kernel slower than stepped or costs diverged",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Huang & Wolfson (ICDE 1994) object allocation toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    bounds = subparsers.add_parser("bounds", help="theorem bounds at a point")
    _add_model_arguments(bounds)
    bounds.set_defaults(handler=cmd_bounds)

    compare = subparsers.add_parser("compare", help="algorithms vs OPT")
    _add_model_arguments(compare)
    compare.add_argument("--schedule", help='e.g. "r5 r5 w1 r5"')
    compare.add_argument("--trace", help="trace file (see `repro workload`)")
    compare.add_argument(
        "--scheme", type=_scheme, default=frozenset({1, 2}),
        help="initial allocation scheme, e.g. 1,2",
    )
    compare.add_argument(
        "--algorithms", default="SA,DA",
        help=f"comma list from {','.join(ALGORITHM_NAMES)}",
    )
    compare.set_defaults(handler=cmd_compare)

    regions = subparsers.add_parser("regions", help="Figure 1/2 region maps")
    regions.add_argument("--mobile", action="store_true")
    regions.add_argument("--steps", type=int, default=9)
    regions.add_argument(
        "--empirical", action="store_true",
        help="measure winners instead of quoting the bounds",
    )
    _add_engine_arguments(regions)
    regions.set_defaults(handler=cmd_regions)

    simulate = subparsers.add_parser(
        "simulate", help="discrete-event protocol run"
    )
    _add_model_arguments(simulate)
    simulate.add_argument("--schedule", default="r5 r5 w1 r5")
    simulate.add_argument("--trace")
    simulate.add_argument("--scheme", type=_scheme, default=frozenset({1, 2}))
    simulate.add_argument(
        "--protocol", choices=["SA", "DA", "sa", "da"], default="DA"
    )
    simulate.add_argument(
        "--seed", type=int, default=None,
        help="generate a seeded uniform workload instead of --schedule",
    )
    simulate.add_argument(
        "--processors", type=_positive_int, default=6,
        help="processor count for the seeded workload",
    )
    simulate.add_argument(
        "--length", type=_positive_int, default=100,
        help="request count for the seeded workload",
    )
    simulate.add_argument(
        "--write-fraction", type=float, default=0.2,
        help="write fraction for the seeded workload",
    )
    simulate.set_defaults(handler=cmd_simulate)

    workload = subparsers.add_parser("workload", help="generate a trace")
    workload.add_argument(
        "--kind", choices=["uniform", "zipf", "markov", "mobile"],
        default="uniform",
    )
    workload.add_argument("--processors", type=int, default=8)
    workload.add_argument("--length", type=int, default=100)
    workload.add_argument("--write-fraction", type=float, default=0.2)
    workload.add_argument("--skew", type=float, default=1.0,
                          help="zipf exponent")
    workload.add_argument("--stickiness", type=float, default=0.95)
    workload.add_argument("--locality", type=float, default=0.8)
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--out", help="write the trace to a file")
    workload.set_defaults(handler=cmd_workload)

    expected = subparsers.add_parser(
        "expected", help="expected costs under the i.i.d. workload"
    )
    _add_model_arguments(expected)
    expected.add_argument("--n", type=int, default=8,
                          help="number of processors")
    expected.add_argument("--t", type=int, default=2,
                          help="availability threshold")
    _add_engine_arguments(expected)
    expected.set_defaults(handler=cmd_expected)

    sweep_parser = subparsers.add_parser(
        "sweep", help="parameter sweep through the experiment engine"
    )
    _add_model_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--parameter", required=True, choices=SWEEP_PARAMETERS,
        help="the knob to sweep",
    )
    sweep_parser.add_argument(
        "--values", required=True, type=_comma_floats,
        help="comma-separated parameter values, e.g. 0.25,0.5,1.0",
    )
    sweep_parser.add_argument(
        "--algorithms", default="SA,DA",
        help=f"comma list from {','.join(ALGORITHM_NAMES)}",
    )
    sweep_parser.add_argument(
        "--scheme", type=_scheme, default=frozenset({1, 2}),
        help="initial allocation scheme, e.g. 1,2 (t = its size)",
    )
    sweep_parser.add_argument("--processors", type=_positive_int, default=6,
                              help="workload processor count")
    sweep_parser.add_argument("--length", type=_positive_int, default=12,
                              help="requests per schedule")
    sweep_parser.add_argument("--schedules", type=_positive_int, default=3,
                              help="schedules per grid point")
    sweep_parser.add_argument("--write-fraction", type=float, default=0.2,
                              help="write fraction when not swept")
    sweep_parser.add_argument("--seed", type=int, default=0,
                              help="root seed for the workload suite")
    sweep_parser.add_argument("--csv", help="also write the sweep as CSV")
    sweep_parser.add_argument("--plot", action="store_true",
                              help="ASCII chart of each algorithm's ratios")
    _add_engine_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=cmd_sweep)

    bench = subparsers.add_parser(
        "bench", help="stepped vs kernel timing harness"
    )
    _add_model_arguments(bench)
    bench.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run (seconds, not minutes)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="exit 1 if the kernel is slower than stepping or costs diverge",
    )
    bench.add_argument("--out", help="write the JSON report here")
    bench.add_argument("--seed", type=int, default=0,
                       help="root seed for the benchmark workload")
    bench.add_argument("--write-fraction", type=float, default=0.2,
                       help="workload write fraction")
    bench.set_defaults(handler=cmd_bench)

    availability = subparsers.add_parser(
        "availability", help="ROWA vs quorum availability"
    )
    availability.add_argument("--p", type=float, default=0.9,
                              help="per-node up probability")
    availability.add_argument("--n", type=int, default=5,
                              help="number of processors")
    availability.add_argument("--write-fraction", type=float, default=0.2)
    availability.set_defaults(handler=cmd_availability)

    describe = subparsers.add_parser(
        "describe", help="structural statistics of a schedule"
    )
    describe.add_argument("--schedule", help='e.g. "r5 r5 w1 r5"')
    describe.add_argument("--trace", help="trace file")
    describe.set_defaults(handler=cmd_describe)

    calibrate = subparsers.add_parser(
        "calibrate", help="hardware numbers -> (c_c, c_d) + a verdict"
    )
    calibrate.add_argument("--tariff", action="store_true",
                           help="wireless billing (mobile model)")
    calibrate.add_argument("--control-bytes", type=float, default=64.0)
    calibrate.add_argument("--object-bytes", type=float, default=8192.0)
    calibrate.add_argument("--bandwidth", type=float, default=12_500.0,
                           help="bytes per millisecond (wired)")
    calibrate.add_argument("--latency", type=float, default=0.5,
                           help="one-way latency in ms (wired)")
    calibrate.add_argument("--io-ms", type=float, default=8.0,
                           help="disk service time in ms (wired)")
    calibrate.add_argument("--per-message-fee", type=float, default=0.05)
    calibrate.add_argument("--per-kilobyte-fee", type=float, default=0.01)
    calibrate.set_defaults(handler=cmd_calibrate)

    add_cluster_parser(subparsers, _scheme)
    add_chaos_parser(subparsers)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
