"""The experiment engine: decompose, fan out, reassemble.

:class:`ExperimentEngine` runs a sequence of independent
:class:`Task` objects and returns their results *in task order* — the
completion order of worker processes never leaks into the output, so a
parallel run is indistinguishable from a serial one (the equivalence
property suite asserts bit-identity).

Execution strategy:

* ``max_workers == 1`` — run in-process, no pool, no pickling.  This
  is the reference path and the default.
* ``max_workers > 1`` — fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Task functions
  must then be module-level (picklable); arguments must be picklable
  values.  If the platform cannot start a pool (no fork, no
  semaphores), the engine degrades to the serial path rather than
  failing the experiment.
* Tasks whose ``key`` is present in the attached
  :class:`~repro.engine.cache.ResultCache` short-circuit without
  executing; fresh results are written back, so resumed grids skip
  completed points.

Chunking (``chunksize``) batches several tasks per worker submission
to amortize pickling overhead on large grids of cheap points; it has
no effect on results, only on scheduling granularity.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.engine.cache import ResultCache
from repro.engine.progress import NullReporter, ProgressReporter
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Task:
    """One independent unit of experiment work.

    ``fn`` must be a module-level callable when the engine runs with
    ``max_workers > 1`` (process pools pickle submitted work).  ``key``
    is an optional stable cache key (see :func:`repro.engine.keys.
    stable_key`); tasks without a key are never cached.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    key: Optional[str] = None
    label: str = ""

    def execute(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


@dataclass(frozen=True)
class EngineStats:
    """Timing/accounting for one :meth:`ExperimentEngine.run` call."""

    tasks_total: int
    cache_hits: int
    executed: int
    workers: int
    elapsed_seconds: float

    @property
    def rate(self) -> float:
        """Tasks per second over the whole run (hits included)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.tasks_total / self.elapsed_seconds


def _run_chunk(tasks: Sequence[Task]) -> list:
    """Execute a chunk of tasks in order (runs inside a worker)."""
    return [task.execute() for task in tasks]


class ExperimentEngine:
    """Runs independent experiment tasks, optionally in parallel."""

    def __init__(
        self,
        max_workers: int = 1,
        cache: Optional[ResultCache] = None,
        chunksize: int = 1,
        progress: bool = False,
        progress_label: str = "engine",
        progress_stream=None,
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be at least 1, got {max_workers}"
            )
        if chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be at least 1, got {chunksize}"
            )
        self.max_workers = max_workers
        self.cache = cache
        self.chunksize = chunksize
        self.progress = progress
        self.progress_label = progress_label
        self.progress_stream = progress_stream
        #: Stats of the most recent :meth:`run` (None before any run).
        self.last_stats: Optional[EngineStats] = None

    # -- public API ------------------------------------------------------

    def run(self, tasks: Sequence[Task]) -> list:
        """Execute every task and return results in task order."""
        tasks = list(tasks)
        started = monotonic()
        reporter = (
            ProgressReporter(
                len(tasks), self.progress_label, self.progress_stream
            )
            if self.progress
            else NullReporter()
        )
        reporter.start()

        results: list = [None] * len(tasks)
        pending: list[int] = []
        hits = 0
        for index, task in enumerate(tasks):
            if self.cache is not None and task.key is not None:
                hit, value = self.cache.get(task.key)
                if hit:
                    results[index] = value
                    hits += 1
                    reporter.update(cached=True)
                    continue
            pending.append(index)

        if pending:
            if self.max_workers > 1 and len(pending) > 1:
                self._run_parallel(tasks, pending, results, reporter)
            else:
                self._run_serial(tasks, pending, results, reporter)

        reporter.finish()
        self.last_stats = EngineStats(
            tasks_total=len(tasks),
            cache_hits=hits,
            executed=len(pending),
            workers=self.max_workers,
            elapsed_seconds=monotonic() - started,
        )
        return results

    def map(
        self,
        fn: Callable[..., Any],
        argument_tuples: Iterable[tuple],
        keys: Optional[Sequence[Optional[str]]] = None,
    ) -> list:
        """Convenience: one task per argument tuple."""
        argument_tuples = list(argument_tuples)
        if keys is None:
            keys = [None] * len(argument_tuples)
        if len(keys) != len(argument_tuples):
            raise ConfigurationError(
                f"{len(argument_tuples)} argument tuples but "
                f"{len(keys)} cache keys"
            )
        tasks = [
            Task(fn, tuple(args), key=key)
            for args, key in zip(argument_tuples, keys)
        ]
        return self.run(tasks)

    # -- execution paths -------------------------------------------------

    def _store(self, task: Task, value: Any) -> None:
        if self.cache is not None and task.key is not None:
            self.cache.put(task.key, value)

    def _run_serial(
        self,
        tasks: Sequence[Task],
        pending: Sequence[int],
        results: list,
        reporter,
    ) -> None:
        for index in pending:
            value = tasks[index].execute()
            self._store(tasks[index], value)
            results[index] = value
            reporter.update()

    def _chunks(self, pending: Sequence[int]) -> list[list[int]]:
        return [
            list(pending[start : start + self.chunksize])
            for start in range(0, len(pending), self.chunksize)
        ]

    def _run_parallel(
        self,
        tasks: Sequence[Task],
        pending: Sequence[int],
        results: list,
        reporter,
    ) -> None:
        try:
            executor = ProcessPoolExecutor(max_workers=self.max_workers)
        except (OSError, NotImplementedError, PermissionError):
            # No fork/semaphores on this platform: degrade gracefully.
            self._run_serial(tasks, pending, results, reporter)
            return
        chunks = self._chunks(pending)
        try:
            futures = {
                executor.submit(
                    _run_chunk, [tasks[index] for index in chunk]
                ): chunk
                for chunk in chunks
            }
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(
                    outstanding, return_when=FIRST_EXCEPTION
                )
                for future in finished:
                    chunk = futures[future]
                    values = future.result()  # re-raises task errors
                    for index, value in zip(chunk, values):
                        self._store(tasks[index], value)
                        results[index] = value
                        reporter.update()
        finally:
            executor.shutdown(wait=True, cancel_futures=True)


def default_worker_count() -> int:
    """A sensible ``--workers`` default: every core, at least one."""
    return max(1, os.cpu_count() or 1)
