"""Stable cache keys for experiment tasks.

A cache key must identify an experiment point by its *content* —
cost-model parameters, workload spec, algorithm set, seed — and be
stable across interpreter runs.  That rules out ``hash()`` (salted),
``id()`` (address-dependent), ``pickle`` bytes (protocol- and
memo-order-dependent) and naive ``repr`` (many reprs embed addresses).

:func:`canonicalize` reduces a configuration object to a nested
structure of primitives with all unordered containers sorted;
:func:`stable_key` hashes its deterministic rendering with SHA-256.
Dataclasses (cost models, schedules, requests) and plain objects
(algorithm prototypes) are encoded as (qualified class name, sorted
field/attribute items), so two configurations collide only if they are
structurally identical.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import math
from typing import Any

from repro.exceptions import ConfigurationError


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic nested-tuple structure.

    Raises :class:`ConfigurationError` for values with no stable
    canonical form (functions, lambdas, open files, ...) — better a
    loud error than a cache key that silently varies between runs.
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return ("atom", obj)
    if isinstance(obj, float):
        # repr() is the shortest round-tripping decimal: bit-exact.
        if math.isnan(obj):
            return ("float", "nan")
        return ("float", repr(obj))
    if isinstance(obj, enum.Enum):
        return ("enum", type(obj).__qualname__, canonicalize(obj.value))
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(canonicalize(item) for item in obj))
    if isinstance(obj, (set, frozenset)):
        encoded = sorted(repr(canonicalize(item)) for item in obj)
        return ("set", tuple(encoded))
    if isinstance(obj, dict):
        items = sorted(
            (repr(canonicalize(key)), canonicalize(value))
            for key, value in obj.items()
        )
        return ("map", tuple(items))
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = tuple(
            (field.name, canonicalize(getattr(obj, field.name)))
            for field in sorted(
                dataclasses.fields(obj), key=lambda field: field.name
            )
        )
        return ("data", type(obj).__qualname__, fields)
    if hasattr(obj, "__dict__") and not callable(obj):
        attrs = tuple(
            (name, canonicalize(value))
            for name, value in sorted(vars(obj).items())
        )
        return ("obj", type(obj).__qualname__, attrs)
    raise ConfigurationError(
        f"cannot build a stable cache key from {type(obj).__qualname__!r} "
        f"({obj!r}); use primitives, dataclasses or plain objects"
    )


def stable_key(payload: Any) -> str:
    """A SHA-256 hex key for a configuration payload.

    Stable across processes and interpreter runs: independent of
    ``PYTHONHASHSEED``, dict insertion order and object identity.
    """
    rendering = repr(canonicalize(payload)).encode("utf-8")
    return hashlib.sha256(rendering).hexdigest()
