"""Deterministic seed derivation for parallel experiments.

Cross-process determinism needs two properties the standard library
does not give out of the box:

* **Stability** — the same (root seed, task index) pair must produce
  the same derived seed in every process and every interpreter run.
  Python's ``hash()`` is salted per process (``PYTHONHASHSEED``), so
  seeds are derived with SHA-256 instead.
* **Independence** — nearby root seeds must not produce overlapping
  streams.  The classic footgun is ``seed + offset``: two batches
  rooted at 42 and 43 share almost all of their schedules.  Hashing
  the (root, index, stream) triple scatters neighbours across the full
  64-bit space.

The ``stream`` label namespaces derivations so that, e.g., the mixture
workload's component sub-seeds can never collide with a concatenation's
phase sub-seeds for the same (root, index) pair.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

_SEED_BITS = 64


def derive_seed(root_seed: int, index: int, stream: str = "") -> int:
    """A 64-bit seed for task ``index`` of the stream rooted at
    ``root_seed`` — stable across processes and interpreter runs.

    >>> derive_seed(0, 0) != derive_seed(0, 1)
    True
    >>> derive_seed(42, 0) == derive_seed(42, 0)
    True
    """
    material = f"repro-seed:{stream}:{root_seed}:{index}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[: _SEED_BITS // 8], "big")


def spawn_rng(root_seed: int, index: int, stream: str = "") -> random.Random:
    """A fresh :class:`random.Random` on the derived seed."""
    return random.Random(derive_seed(root_seed, index, stream))


SeedLike = Union[int, random.Random]


def rng_from(seed: SeedLike) -> random.Random:
    """Normalize an explicit seed into a private ``random.Random``.

    Generators accept either an integer seed (the common, fully
    reproducible case) or a caller-owned ``Random`` instance (for
    composing generators on one stream).  Module-level ``random``
    state is never touched.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def seed_material(seed: SeedLike) -> int:
    """An integer root usable with :func:`derive_seed`.

    Integers pass through; a ``Random`` instance contributes 64 bits
    drawn from its stream (advancing it — the caller owns the stream).
    """
    if isinstance(seed, random.Random):
        return seed.getrandbits(_SEED_BITS)
    return seed
