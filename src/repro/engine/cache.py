"""On-disk result cache for experiment tasks.

One file per key under a spool directory (fanned out by key prefix so
huge grids don't pile thousands of entries into one directory).  The
contract the unit tests pin down:

* identical configurations hit, perturbed configurations miss;
* a corrupted/truncated/unreadable entry is **discarded, not raised** —
  the point is recomputed and the entry rewritten;
* writes are atomic (temp file + ``os.replace``), so a reader never
  observes a half-written entry even with concurrent workers;
* each entry records its key, so a hash-prefix collision or a renamed
  file can never serve the wrong result.

Entries are serialized with :mod:`pickle` because task results are
arbitrary analysis objects (:class:`~repro.analysis.sweep.SweepRow`,
:class:`~repro.analysis.regions.GridPoint`, ...).  Only load caches
you trust — the same caveat as any pickle file.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Tuple, Union

#: Bump when the entry layout changes; old entries then read as misses.
CACHE_FORMAT = 1


class ResultCache:
    """A directory of pickled task results keyed by stable hashes."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        Anything wrong with the entry — unreadable, truncated, wrong
        format version, wrong key, unpicklable — counts as a miss and
        the offending file is removed best-effort.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
            if (
                isinstance(entry, dict)
                and entry.get("format") == CACHE_FORMAT
                and entry.get("key") == key
            ):
                return True, entry["value"]
        except FileNotFoundError:
            return False, None
        except Exception:
            pass  # corrupted entry: fall through and discard it
        try:
            path.unlink()
        except OSError:
            pass
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Store a result atomically (concurrent writers both win)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"format": CACHE_FORMAT, "key": key, "value": value}
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.get(key)[0]

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.pkl"))

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
