"""Progress and timing reporting for engine runs.

In the spirit of :mod:`repro.distsim.statistics`, the reporter is a
plain counter object that observers read — it never influences the
computation.  It prints ``done/total``, cache hits, the measured task
rate and an ETA, rate-limited so a million-point grid does not drown
stderr, with a final summary line on :meth:`finish`.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional


class ProgressReporter:
    """Prints task throughput to a stream (stderr by default)."""

    def __init__(
        self,
        total: int,
        label: str = "engine",
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.5,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.done = 0
        self.cached = 0
        self.started_at: Optional[float] = None
        self._last_emit = -float("inf")
        self._emitted_final = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self.started_at = time.monotonic()

    def update(self, cached: bool = False) -> None:
        """Record one completed task (``cached`` marks a cache hit)."""
        if self.started_at is None:
            self.start()
        self.done += 1
        if cached:
            self.cached += 1
        now = time.monotonic()
        if (
            self.done < self.total
            and now - self._last_emit < self.min_interval
        ):
            return
        self._last_emit = now
        self._emit(final=self.done >= self.total)

    def finish(self) -> None:
        if self.started_at is None:
            self.start()
        if not self._emitted_final:
            self._emit(final=True)

    # -- derived numbers -------------------------------------------------

    @property
    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        return time.monotonic() - self.started_at

    @property
    def rate(self) -> float:
        """Completed tasks per second (0 before any time has passed)."""
        elapsed = self.elapsed
        return self.done / elapsed if elapsed > 0 else 0.0

    @property
    def eta_seconds(self) -> Optional[float]:
        rate = self.rate
        if rate <= 0:
            return None
        return max(0, self.total - self.done) / rate

    # -- rendering -------------------------------------------------------

    def _emit(self, final: bool = False) -> None:
        eta = self.eta_seconds
        eta_text = "eta --" if eta is None else f"eta {eta:.0f}s"
        if final:
            eta_text = f"elapsed {self.elapsed:.1f}s"
            self._emitted_final = True
        line = (
            f"{self.label}: {self.done}/{self.total} tasks"
            f" ({self.cached} cached) | {self.rate:.1f}/s | {eta_text}"
        )
        print(line, file=self.stream)


class NullReporter:
    """Same interface, no output — the default when progress is off."""

    def start(self) -> None:  # pragma: no cover - trivial
        pass

    def update(self, cached: bool = False) -> None:
        pass

    def finish(self) -> None:
        pass
